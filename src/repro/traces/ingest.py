"""Counter-log ingestion: foreign interval logs -> :class:`CounterTrace`.

Two log shapes are understood, both per-interval counter captures:

* **perf-stat style** -- ``perf stat -I <ms>`` output, either the
  ``-x,`` CSV form (``time,count,unit,event,...``) or the default
  whitespace-aligned text form (``time  count  event``).  Rows sharing
  one timestamp form one interval; interval lengths come from the
  timestamp deltas, so variable-length intervals are handled naturally.
* **WattWatcher style** -- a marshalled counter CSV with one row per
  interval and one column per event (the shape WattWatcher's
  ``marshal_perf`` emits), with a ``timestamp``/``time`` column or a
  per-row ``interval``/``interval_s`` column.

Counters may be per-interval deltas (perf's native output) or
cumulative counts (some marshallers); cumulative streams are detected
and differenced automatically, or forced with ``cumulative=True/False``.

Event/column names map onto four roles -- ``instructions``, ``cycles``,
``decoded``, ``dcu`` -- through :data:`DEFAULT_EVENT_ROLES`, extensible
per call with ``event_roles={...}``.  Whatever could not be parsed,
had to be skipped, or had to be assumed lands in the returned
:class:`IngestReport`, never in silence.
"""

from __future__ import annotations

import os
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import WorkloadError
from repro.workloads.traces import CounterTrace, TraceInterval

#: Built-in event/column-name -> role mapping.  Keys are normalized
#: (lowercased, ``-`` -> ``_``); values are the four counter roles plus
#: the time/frequency helper columns.
DEFAULT_EVENT_ROLES: Mapping[str, str] = {
    # retired instructions
    "instructions": "instructions",
    "inst_retired": "instructions",
    "inst_retired.any": "instructions",
    "instructions_retired": "instructions",
    # unhalted core cycles
    "cycles": "cycles",
    "cpu_cycles": "cycles",
    "cpu_clk_unhalted": "cycles",
    "cpu_clk_unhalted.core": "cycles",
    "cpu_clk_unhalted.thread": "cycles",
    # decoded instructions (the paper's DPC input)
    "inst_decoded": "decoded",
    "inst_decoded.dec0": "decoded",
    "uops_issued.any": "decoded",
    "instructions_decoded": "decoded",
    # outstanding-L1-miss occupancy (the paper's DCU input)
    "dcu_miss_outstanding": "dcu",
    "l1d_pend_miss.pending": "dcu",
    "cycle_activity.stalls_l1d_miss": "dcu",
    # helper columns (WattWatcher-style CSVs)
    "time": "time",
    "timestamp": "time",
    "time_s": "time",
    "interval": "interval",
    "interval_s": "interval",
    "frequency_mhz": "frequency_mhz",
    "freq_mhz": "frequency_mhz",
}

#: Counter roles that carry event counts (as opposed to time/frequency).
_COUNT_ROLES = ("instructions", "cycles", "decoded", "dcu")

#: perf prints these placeholders when a counter could not be read.
_UNCOUNTED = ("<not counted>", "<not supported>")


@dataclass
class IngestReport:
    """Diagnostics from one ingestion: what was read, skipped, assumed."""

    source: str
    format: str
    rows_read: int = 0
    intervals: int = 0
    cumulative: bool = False
    skipped: Counter = field(default_factory=Counter)
    assumptions: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def assume(self, note: str) -> None:
        if note not in self.assumptions:
            self.assumptions.append(note)

    def warn(self, note: str) -> None:
        if note not in self.warnings:
            self.warnings.append(note)

    @property
    def clean(self) -> bool:
        """True when nothing was skipped, assumed, or warned about."""
        return not self.skipped and not self.assumptions and not self.warnings

    def render(self) -> str:
        lines = [
            f"ingested {self.source}: format={self.format} "
            f"rows={self.rows_read} intervals={self.intervals}"
            + (" (cumulative counters, auto-differenced)"
               if self.cumulative else "")
        ]
        for reason, count in sorted(self.skipped.items()):
            lines.append(f"  skipped {count}: {reason}")
        for note in self.assumptions:
            lines.append(f"  assumed: {note}")
        for note in self.warnings:
            lines.append(f"  warning: {note}")
        return "\n".join(lines)


def _normalize(name: str) -> str:
    return name.strip().strip('"').lower().replace("-", "_")


def _roles(event_roles: Mapping[str, str] | None) -> dict[str, str]:
    roles = dict(DEFAULT_EVENT_ROLES)
    for key, value in (event_roles or {}).items():
        if value not in (*_COUNT_ROLES, "time", "interval", "frequency_mhz"):
            raise WorkloadError(
                f"unknown counter role {value!r} for event {key!r}; "
                f"expected one of {_COUNT_ROLES + ('time', 'interval', 'frequency_mhz')}"
            )
        roles[_normalize(key)] = value
    return roles


def _parse_count(text: str) -> float | None:
    """A perf count field as float, or None for '<not counted>' forms."""
    cleaned = text.strip().strip('"')
    if not cleaned or cleaned in _UNCOUNTED or cleaned.startswith("<"):
        return None
    return float(cleaned.replace(",", ""))


# -- format detection ---------------------------------------------------------


def detect_format(text: str) -> str:
    """Guess the log format: ``perf-csv``, ``perf``, or ``wattwatcher``.

    WattWatcher-style files lead with a header row of column names; perf
    logs lead with a numeric timestamp.  The perf CSV form (``-x,``) has
    the timestamp as a clean comma-separated field; in the whitespace
    form, splitting on commas leaves spaces inside the first fragment
    (the thousands separators live in the *count* column).
    """
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        first = re.split(r"[,\s]+", stripped, maxsplit=1)[0]
        try:
            float(first)
        except ValueError:
            return "wattwatcher"
        fields = stripped.split(",")
        if len(fields) >= 4 and not re.search(r"\s", fields[0].strip()):
            try:
                float(fields[0])
                return "perf-csv"
            except ValueError:
                pass
        return "perf"
    raise WorkloadError("log has no data lines; cannot detect format")


# -- perf-stat parsing --------------------------------------------------------


def _perf_rows(
    text: str, csv_form: bool, report: IngestReport
) -> list[tuple[float, str, float | None]]:
    """(time, event, count) tuples from a perf-stat interval log."""
    rows: list[tuple[float, str, float | None]] = []
    lines = text.splitlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        is_last = index == len(lines) - 1
        try:
            if csv_form:
                fields = stripped.split(",")
                time_s = float(fields[0])
                count = _parse_count(fields[1])
                named = [
                    f.strip() for f in fields[2:]
                    if re.search(r"[a-zA-Z]", f)
                ]
                if not named:
                    raise ValueError("no event name field")
                event = named[0]
            else:
                fields = stripped.split()
                time_s = float(fields[0])
                if fields[1].startswith("<"):
                    count, event = None, fields[-1]
                else:
                    count = _parse_count(fields[1])
                    event = fields[2]
        except (ValueError, IndexError):
            reason = (
                "torn final line" if is_last else "unparsable line"
            )
            report.skipped[reason] += 1
            continue
        report.rows_read += 1
        if count is None:
            report.skipped["counter not counted"] += 1
            continue
        rows.append((time_s, _normalize(event), count))
    return rows


def _perf_intervals(
    rows: Sequence[tuple[float, str, float]],
    roles: Mapping[str, str],
    report: IngestReport,
) -> list[tuple[float, dict[str, float]]]:
    """Group perf rows by timestamp into (interval_s, role counts)."""
    by_time: dict[float, dict[str, float]] = {}
    order: list[float] = []
    unmapped: set[str] = set()
    for time_s, event, count in rows:
        role = roles.get(event)
        if role is None:
            unmapped.add(event)
            continue
        if time_s not in by_time:
            by_time[time_s] = {}
            order.append(time_s)
        by_time[time_s][role] = by_time[time_s].get(role, 0.0) + count
    for event in sorted(unmapped):
        report.warn(f"event {event!r} has no role mapping; ignored")
    intervals = []
    previous = 0.0
    for time_s in order:
        length = time_s - previous
        previous = time_s
        if length <= 0:
            report.skipped["non-positive interval"] += 1
            continue
        intervals.append((length, by_time[time_s]))
    return intervals


# -- wattwatcher parsing ------------------------------------------------------


def _wattwatcher_intervals(
    text: str,
    roles: Mapping[str, str],
    report: IngestReport,
    interval_s: float | None,
) -> list[tuple[float, dict[str, float]]]:
    """(interval_s, role counts) rows from a counter-per-column CSV."""
    lines = [
        line for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if not lines:
        raise WorkloadError("log has no data lines")
    header = [_normalize(cell) for cell in lines[0].split(",")]
    mapped = {
        index: roles[name] for index, name in enumerate(header)
        if name in roles
    }
    for name in header:
        if name not in roles:
            report.warn(f"column {name!r} has no role mapping; ignored")
    if not any(role in _COUNT_ROLES for role in mapped.values()):
        raise WorkloadError(
            f"no counter column recognized in header {header}; "
            "map columns with event_roles={'column': 'role'}"
        )
    rows: list[dict[str, float]] = []
    for index, line in enumerate(lines[1:], start=1):
        cells = line.split(",")
        is_last = index == len(lines) - 1
        try:
            row = {
                role: _parse_count(cells[col])
                for col, role in mapped.items()
            }
        except (ValueError, IndexError):
            report.skipped[
                "torn final line" if is_last else "unparsable line"
            ] += 1
            continue
        if any(value is None for value in row.values()):
            report.rows_read += 1
            report.skipped["counter not counted"] += 1
            continue
        report.rows_read += 1
        rows.append(row)  # type: ignore[arg-type]
    # Interval lengths: an explicit interval column wins; otherwise the
    # time column's deltas.  Timestamps may be elapsed-since-start
    # (perf-style: the first stamp is the first interval's length) or
    # absolute (epoch-style); the first row's length falls back to the
    # gap to the second row when the first stamp is clearly not a
    # plausible interval.
    times = [row.get("time") for row in rows]
    first_delta = (
        times[1] - times[0]
        if len(times) >= 2 and times[0] is not None and times[1] is not None
        else None
    )
    intervals = []
    previous_time: float | None = None
    for row in rows:
        if "interval" in row:
            length = row["interval"]
        elif "time" in row:
            if previous_time is None:
                stamp = row["time"]
                if first_delta is not None and first_delta > 0 and not (
                    0 < stamp <= 2.0 * first_delta
                ):
                    length = first_delta
                elif stamp > 0:
                    length = stamp
                else:
                    length = interval_s or 0.0
            else:
                length = row["time"] - previous_time
            previous_time = row["time"]
        elif interval_s is not None:
            length = interval_s
        else:
            raise WorkloadError(
                "log has no time/interval column; pass interval_s "
                "(the sampling period in seconds)"
            )
        counts = {
            role: value for role, value in row.items()
            if role in _COUNT_ROLES or role == "frequency_mhz"
        }
        if length <= 0:
            report.skipped["non-positive interval"] += 1
            continue
        intervals.append((length, counts))
    return intervals


# -- cumulative detection -----------------------------------------------------


def _maybe_difference(
    intervals: list[tuple[float, dict[str, float]]],
    cumulative: bool | None,
    report: IngestReport,
) -> list[tuple[float, dict[str, float]]]:
    """Difference cumulative counter streams into per-interval deltas.

    Auto-detection (``cumulative=None``): every counter role must be
    non-decreasing across the whole log *and* grow severalfold from the
    first interval -- a steady per-interval stream is flat, a cumulative
    one grows linearly, so the ratio test separates them reliably for
    logs of more than a few intervals.
    """
    count_rows = [counts for _, counts in intervals]
    if len(count_rows) < 2:
        return intervals
    if cumulative is None:
        detected = True
        for role in _COUNT_ROLES:
            series = [c[role] for c in count_rows if role in c]
            if len(series) < 4:
                detected = detected and not series
                continue
            nondecreasing = all(b >= a for a, b in zip(series, series[1:]))
            first = next((v for v in series if v > 0), 0.0)
            grows = first > 0 and series[-1] >= 3.0 * first
            detected = detected and nondecreasing and grows
        cumulative = detected and any(
            role in count_rows[0] for role in _COUNT_ROLES
        )
    if not cumulative:
        return intervals
    report.cumulative = True
    out = []
    previous: dict[str, float] = {}
    for length, counts in intervals:
        delta = dict(counts)
        for role in _COUNT_ROLES:
            if role in counts:
                delta[role] = counts[role] - previous.get(role, 0.0)
                previous[role] = counts[role]
        out.append((length, delta))
    return out


# -- rate conversion ----------------------------------------------------------


def _to_trace(
    name: str,
    intervals: list[tuple[float, dict[str, float]]],
    report: IngestReport,
    nominal_mhz: float | None,
    decode_ratio: float | None,
) -> CounterTrace:
    if not intervals:
        raise WorkloadError(
            f"{report.source}: no usable intervals "
            f"({dict(report.skipped) or 'empty log'})"
        )
    if nominal_mhz is None:
        from repro.platform.calibration import counter_envelope

        nominal_mhz = max(counter_envelope().frequencies_mhz)
    if decode_ratio is None:
        from repro.platform.calibration import reference_decode_ratio

        decode_ratio = reference_decode_ratio()
    out = []
    dcu_missing = 0
    for length, counts in intervals:
        cycles = counts.get("cycles")
        if cycles is not None and cycles > 0:
            frequency_mhz = cycles / length / 1e6
        else:
            frequency_mhz = counts.get("frequency_mhz", nominal_mhz)
            if "frequency_mhz" not in counts:
                report.assume(
                    f"no cycles counter or frequency column; assuming "
                    f"{frequency_mhz:.0f} MHz"
                )
            cycles = frequency_mhz * 1e6 * length
        if cycles <= 0:
            report.skipped["zero-cycle interval"] += 1
            continue
        instructions = counts.get("instructions")
        decoded = counts.get("decoded")
        if instructions is None and decoded is None:
            report.skipped["interval without instruction counts"] += 1
            continue
        if instructions is None:
            instructions = decoded / decode_ratio
            report.assume(
                f"no retired-instruction counter; deriving IPC from the "
                f"decode stream at ratio {decode_ratio:.3f}"
            )
        if decoded is None:
            decoded = instructions * decode_ratio
            report.assume(
                f"no decode counter; deriving DPC at the platform "
                f"reference ratio {decode_ratio:.3f}"
            )
        dcu_counts = counts.get("dcu")
        if dcu_counts is None:
            dcu_counts = 0.0
            dcu_missing += 1
        out.append(
            TraceInterval(
                interval_s=length,
                frequency_mhz=frequency_mhz,
                ipc=max(0.0, instructions / cycles),
                dpc=max(0.0, decoded / cycles),
                dcu=max(0.0, dcu_counts / cycles),
            )
        )
    if not out:
        raise WorkloadError(
            f"{report.source}: no usable intervals ({dict(report.skipped)})"
        )
    if dcu_missing == len(out):
        report.warn(
            "no DCU/outstanding-miss event mapped; the Eq. 3 "
            "classifier will see this trace as core-bound"
        )
    elif dcu_missing:
        report.warn(
            f"DCU counter missing in {dcu_missing} of {len(out)} "
            f"intervals; those intervals read as core-bound"
        )
    report.intervals = len(out)
    meta = {
        "source": report.source,
        "source_format": report.format,
    }
    if report.cumulative:
        meta["cumulative_counters"] = "true"
    for index, note in enumerate(report.assumptions):
        meta[f"assumption_{index}"] = note
    return CounterTrace(name, out, meta)


# -- public entry points ------------------------------------------------------


def ingest_text(
    text: str,
    name: str,
    fmt: str = "auto",
    event_roles: Mapping[str, str] | None = None,
    interval_s: float | None = None,
    nominal_mhz: float | None = None,
    decode_ratio: float | None = None,
    cumulative: bool | None = None,
    source: str = "<text>",
) -> tuple[CounterTrace, IngestReport]:
    """Parse an interval counter log into a trace plus diagnostics.

    Parameters mirror the knobs the formats need: ``fmt`` selects or
    auto-detects the log shape; ``event_roles`` extends the built-in
    event/column mapping; ``interval_s`` supplies the sampling period
    for logs without a time column; ``nominal_mhz`` the frequency for
    logs without a cycles counter; ``decode_ratio`` overrides the
    derived platform ratio used when only one of the retired/decoded
    streams is present; ``cumulative`` forces or suppresses
    cumulative-counter differencing (default: auto-detect).
    """
    if fmt not in ("auto", "perf", "perf-csv", "wattwatcher"):
        raise WorkloadError(
            f"unknown log format {fmt!r}; expected auto, perf, perf-csv "
            "or wattwatcher"
        )
    if fmt == "auto":
        fmt = detect_format(text)
    report = IngestReport(source=source, format=fmt)
    roles = _roles(event_roles)
    if fmt in ("perf", "perf-csv"):
        rows = _perf_rows(text, fmt == "perf-csv", report)
        intervals = _perf_intervals(rows, roles, report)
    else:
        intervals = _wattwatcher_intervals(text, roles, report, interval_s)
    intervals = _maybe_difference(intervals, cumulative, report)
    trace = _to_trace(name, intervals, report, nominal_mhz, decode_ratio)
    return trace, report


def ingest_file(
    path: str,
    name: str | None = None,
    **kwargs,
) -> tuple[CounterTrace, IngestReport]:
    """Ingest a counter log file (see :func:`ingest_text` for knobs)."""
    if not os.path.exists(path):
        raise WorkloadError(f"counter log not found: {path}")
    if os.path.isdir(path):
        raise WorkloadError(f"counter log is a directory: {path}")
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        text = handle.read()
    if not text.strip():
        raise WorkloadError(f"counter log is empty: {path}")
    if name is None:
        name = os.path.basename(path).split(".")[0]
    return ingest_text(text, name, source=path, **kwargs)
