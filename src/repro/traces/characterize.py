"""Characterize traces on the paper's memory-/core-bound map.

Every trace -- ingested, generated, or recorded -- gets the same
treatment the SPEC suite gets in ``experiments/characterization.py``:
its reconstructed workload is pushed through the analytic pipeline
model for Eq. 3 classification (DCU/IPC against the 1.21 threshold)
and frequency-sensitivity figures, and the raw counter stream is
summarized directly (time-weighted means, memory-bound time fraction).
Output is a text table and a deterministic JSON document, so the
characterization doubles as a regression artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.analysis.report import TextTable
from repro.platform.calibration import (
    DCU_IPC_THRESHOLD,
    WorkloadSignature,
    ps_choice_for_signature,
    workload_signature,
)
from repro.workloads.traces import CounterTrace, workload_from_trace


@dataclass(frozen=True)
class TraceCharacterization:
    """One trace's position on the paper's workload map.

    ``signature`` carries the analytic figures (Eq. 3 class, frequency
    scaling, mean power) of the trace's reconstructed workload; the
    remaining fields summarize the raw counter stream itself.
    """

    name: str
    family: str
    intervals: int
    phases: int
    duration_s: float
    mean_ipc: float
    mean_dpc: float
    dcu_per_ipc: float
    #: Time fraction spent above the Eq. 3 threshold interval-by-interval
    #: (phase-level view; the signature's class is the average view).
    memory_time_fraction: float
    signature: WorkloadSignature

    @property
    def memory_bound(self) -> bool:
        """Eq. 3's verdict on the trace as a whole."""
        return self.signature.classified_memory_bound

    def as_dict(self) -> dict:
        """JSON-serializable form (deterministic key order via dumps)."""
        return {
            "name": self.name,
            "family": self.family,
            "intervals": self.intervals,
            "phases": self.phases,
            "duration_s": round(self.duration_s, 6),
            "mean_ipc": round(self.mean_ipc, 6),
            "mean_dpc": round(self.mean_dpc, 6),
            "dcu_per_ipc": round(self.dcu_per_ipc, 6),
            "memory_bound": self.memory_bound,
            "memory_time_fraction": round(self.memory_time_fraction, 6),
            "mean_power_w": round(self.signature.mean_power_w, 6),
            "scaling": {
                f"{freq:.0f}": round(value, 6)
                for freq, value in sorted(self.signature.scaling.items())
            },
            "ps_choice_mhz_at_80pct": ps_choice_for_signature(
                self.signature, 0.8
            ),
        }


def characterize_trace(trace: CounterTrace) -> TraceCharacterization:
    """Run one trace through the Eq. 3 classifier and sensitivity model."""
    workload = workload_from_trace(trace)
    signature = workload_signature(workload)
    total_time = trace.duration_s
    mean_ipc = sum(i.ipc * i.interval_s for i in trace) / total_time
    mean_dpc = sum(i.dpc * i.interval_s for i in trace) / total_time
    mean_dcu = sum(i.dcu * i.interval_s for i in trace) / total_time
    memory_time = sum(
        i.interval_s
        for i in trace
        if i.dcu / max(i.ipc, 1e-6) >= DCU_IPC_THRESHOLD
    )
    return TraceCharacterization(
        name=trace.name,
        family=trace.meta.get("family", "-"),
        intervals=len(trace),
        phases=len(workload.phases),
        duration_s=total_time,
        mean_ipc=mean_ipc,
        mean_dpc=mean_dpc,
        dcu_per_ipc=mean_dcu / max(mean_ipc, 1e-6),
        memory_time_fraction=memory_time / total_time,
        signature=signature,
    )


def characterize_traces(
    traces: Iterable[CounterTrace],
) -> tuple[TraceCharacterization, ...]:
    """Characterize a batch, ordered by frequency sensitivity (the
    Fig. 7 ordering: most sensitive first)."""
    rows = [characterize_trace(trace) for trace in traces]
    rows.sort(key=lambda c: (-c.signature.scaling[1800.0], c.name))
    return tuple(rows)


def render_characterization(
    rows: Iterable[TraceCharacterization],
) -> str:
    """The characterization table, one trace per row."""
    table = TextTable(
        ["trace", "family", "ivals", "phases", "dur s", "IPC",
         "DCU/IPC", "class", "mem t%", "perf@1800", "perf@800",
         "PS@80%"]
    )
    rows = list(rows)
    for c in rows:
        table.add_row(
            c.name, c.family, c.intervals, c.phases,
            f"{c.duration_s:.1f}", c.mean_ipc, c.dcu_per_ipc,
            "mem" if c.memory_bound else "core",
            f"{100.0 * c.memory_time_fraction:.0f}",
            c.signature.scaling[1800.0], c.signature.scaling[800.0],
            f"{ps_choice_for_signature(c.signature, 0.8):.0f}",
        )
    memory = ", ".join(sorted(c.name for c in rows if c.memory_bound))
    return (
        "Trace characterization on the simulated Pentium M 755 "
        "(Eq. 3 classifier, analytic frequency sensitivity)\n"
        + table.render()
        + f"\nEq. 3 memory class: {memory or '(none)'}"
    )


def characterization_json(
    rows: Iterable[TraceCharacterization],
    extra: Mapping[str, object] | None = None,
) -> str:
    """Deterministic JSON document for a characterization batch."""
    document: dict[str, object] = {
        "threshold_dcu_per_ipc": DCU_IPC_THRESHOLD,
        "traces": [c.as_dict() for c in rows],
    }
    if extra:
        document.update(extra)
    return json.dumps(document, indent=2, sort_keys=True)
