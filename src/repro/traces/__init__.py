"""Trace-driven workloads: external counter logs as first-class inputs.

The paper's governors only ever see performance-counter streams, so any
interval counter log -- a ``perf stat -I`` capture, a WattWatcher-style
marshalled CSV, a recorded simulator run -- is a complete workload
description.  This subsystem turns such logs into governed workloads:

* :mod:`repro.traces.ingest` parses foreign interval logs (perf-stat
  CSV/text, WattWatcher-style counter CSVs; flexible event/column
  mapping, cumulative or per-interval counts, variable interval
  lengths) into :class:`~repro.workloads.traces.CounterTrace`, with a
  diagnostics report of everything it skipped or assumed;
* :mod:`repro.traces.calibrate` rescales a foreign trace into the
  platform's valid counter envelope (p-state frequency table,
  decode-ratio and DCU-occupancy ranges derived from the pipeline
  model), reporting exactly what was clipped;
* :mod:`repro.traces.corpus` generates a seeded, deterministic scenario
  corpus -- bursty web serving, batch ETL, inference serving,
  idle-heavy desktop -- so governors are evaluated on realistic
  scenarios beyond the 26 synthetic SPEC models;
* :mod:`repro.traces.characterize` places every trace on the paper's
  memory-bound/core-bound map (Eq. 3) with frequency-sensitivity
  analysis, as a text table and JSON.

Traces resolve as workloads through ``trace:PATH`` and ``corpus:NAME``
specs (:func:`repro.workloads.registry.resolve_workload_spec`), run in
:class:`~repro.exec.RunPlan` cells, and are driven from the CLI via
``repro-power trace ingest|generate|characterize`` and
``repro-power run trace:FILE``.
"""

from repro.traces.calibrate import CalibrationReport, calibrate_trace
from repro.traces.characterize import (
    TraceCharacterization,
    characterization_json,
    characterize_trace,
    characterize_traces,
    render_characterization,
)
from repro.traces.corpus import (
    CORPUS_FAMILIES,
    corpus_names,
    corpus_trace,
    generate_corpus,
    write_corpus,
)
from repro.traces.ingest import IngestReport, ingest_file, ingest_text

__all__ = [
    "CORPUS_FAMILIES",
    "CalibrationReport",
    "IngestReport",
    "TraceCharacterization",
    "calibrate_trace",
    "characterization_json",
    "characterize_trace",
    "characterize_traces",
    "corpus_names",
    "corpus_trace",
    "generate_corpus",
    "ingest_file",
    "ingest_text",
    "render_characterization",
    "write_corpus",
]
