"""Seeded scenario corpus: realistic counter traces beyond SPEC models.

The paper evaluates its governors on SPEC-derived synthetic workloads;
real deployments look different -- servers burst, ETL jobs alternate
scan and transform passes, inference tiers see batched request waves,
desktops sit idle between keystrokes.  This module generates a small,
fully deterministic corpus of :class:`~repro.workloads.traces.CounterTrace`
scenarios in four families so governor experiments can cover those
shapes without shipping proprietary logs:

* ``web`` -- bursty web serving: request bursts (core-bound template
  rendering) over a memory-bound cache-churn floor, with diurnal and
  flash-crowd variants;
* ``etl`` -- batch ETL: long memory-bound scan passes alternating with
  core-bound transform/compress passes;
* ``inference`` -- inference serving: periodic batch arrivals, each a
  memory-bound weight-streaming ramp followed by a compute-dense
  matmul plateau;
* ``desktop`` -- idle-heavy desktop: near-idle floors punctuated by
  short interactive bursts (editing, browsing, media playback).

Every scenario documents its phase structure in its description and is
generated from ``random.Random(f"{name}:{seed}")``, so the same
name/seed pair yields the same trace on every machine and every run --
which is what lets corpus traces participate in bit-identical
``run_result_digest`` checks.  All rates are generated inside the
platform's counter envelope (IPC below the decode width, DCU below the
fill-buffer cap), so corpus traces calibrate cleanly.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import WorkloadError
from repro.workloads.traces import CounterTrace, TraceInterval

#: All corpus scenarios record at the platform's top frequency; replay
#: under a governor re-scales them through the phase inversion.
_RECORD_MHZ = 2000.0
_INTERVAL_S = 0.1


def _segment(
    rng: random.Random,
    count: int,
    ipc: float,
    decode_ratio: float,
    dcu: float,
    jitter: float = 0.04,
) -> Iterable[TraceInterval]:
    """``count`` intervals around a working point, with bounded jitter.

    Jitter is multiplicative and clamped so a segment never wanders out
    of the platform envelope (IPC*ratio stays under the decode width).
    """
    for _ in range(count):
        wiggle = 1.0 + rng.uniform(-jitter, jitter)
        point_ipc = max(0.01, min(ipc * wiggle, 2.0))
        ratio = max(1.0, min(decode_ratio * (1.0 + rng.uniform(-jitter, jitter) / 2), 1.5))
        point_dcu = max(0.0, min(dcu * (1.0 + rng.uniform(-jitter, jitter)), 3.9))
        yield TraceInterval(
            interval_s=_INTERVAL_S,
            frequency_mhz=_RECORD_MHZ,
            ipc=point_ipc,
            dpc=point_ipc * ratio,
            dcu=point_dcu,
        )


# -- web serving ---------------------------------------------------------------


def _web_diurnal(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Three diurnal steps: quiet -> busy -> quiet, each a burst train.
    for load in (0.3, 1.0, 0.45):
        for _ in range(3):
            burst = max(2, round(6 * load))
            intervals.extend(_segment(rng, burst, ipc=1.6, decode_ratio=1.25, dcu=0.4))
            intervals.extend(_segment(rng, 4, ipc=0.5, decode_ratio=1.15, dcu=1.6))
    return intervals


def _web_flash_crowd(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    intervals.extend(_segment(rng, 8, ipc=0.6, decode_ratio=1.2, dcu=1.2))
    # The crowd arrives: sustained saturation with cache churn.
    intervals.extend(_segment(rng, 14, ipc=1.8, decode_ratio=1.3, dcu=0.7, jitter=0.08))
    intervals.extend(_segment(rng, 6, ipc=1.1, decode_ratio=1.25, dcu=1.9))
    # Decay back to the steady floor.
    intervals.extend(_segment(rng, 10, ipc=0.7, decode_ratio=1.2, dcu=1.1))
    return intervals


def _web_api_mixed(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Alternating cheap cache-hit responses and heavy DB-backed calls.
    for _ in range(6):
        intervals.extend(_segment(rng, 3, ipc=1.7, decode_ratio=1.2, dcu=0.3))
        intervals.extend(_segment(rng, 4, ipc=0.45, decode_ratio=1.1, dcu=2.4))
    return intervals


# -- batch ETL -----------------------------------------------------------------


def _etl_scan_heavy(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Dominated by table scans; short transform windows between passes.
    for _ in range(3):
        intervals.extend(_segment(rng, 12, ipc=0.35, decode_ratio=1.1, dcu=3.0))
        intervals.extend(_segment(rng, 4, ipc=1.5, decode_ratio=1.3, dcu=0.5))
    return intervals


def _etl_transform(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Compute-dominated: parse/compress passes with periodic spill I/O.
    for _ in range(4):
        intervals.extend(_segment(rng, 9, ipc=1.7, decode_ratio=1.35, dcu=0.4))
        intervals.extend(_segment(rng, 3, ipc=0.5, decode_ratio=1.1, dcu=2.2))
    return intervals


def _etl_shuffle(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Map/shuffle/reduce: compute, then all-to-all exchange, then merge.
    intervals.extend(_segment(rng, 10, ipc=1.6, decode_ratio=1.3, dcu=0.6))
    intervals.extend(_segment(rng, 12, ipc=0.4, decode_ratio=1.1, dcu=2.8))
    intervals.extend(_segment(rng, 8, ipc=1.1, decode_ratio=1.2, dcu=1.3))
    return intervals


# -- inference serving ---------------------------------------------------------


def _infer_batch(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Each request batch: weight-streaming ramp then matmul plateau.
    for _ in range(5):
        intervals.extend(_segment(rng, 3, ipc=0.5, decode_ratio=1.1, dcu=2.6))
        intervals.extend(_segment(rng, 5, ipc=1.8, decode_ratio=1.3, dcu=0.8))
        intervals.extend(_segment(rng, 2, ipc=0.2, decode_ratio=1.05, dcu=0.3))
    return intervals


def _infer_streaming(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Token-at-a-time decode: steadily memory-bound with small compute
    # blips at sequence boundaries.
    for _ in range(5):
        intervals.extend(_segment(rng, 8, ipc=0.55, decode_ratio=1.12, dcu=2.9))
        intervals.extend(_segment(rng, 2, ipc=1.4, decode_ratio=1.3, dcu=0.9))
    return intervals


def _infer_mixed(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Co-located small and large models sharing the tier.
    for _ in range(4):
        intervals.extend(_segment(rng, 4, ipc=1.7, decode_ratio=1.35, dcu=0.5))
        intervals.extend(_segment(rng, 6, ipc=0.45, decode_ratio=1.1, dcu=3.2))
        intervals.extend(_segment(rng, 2, ipc=1.0, decode_ratio=1.2, dcu=1.5))
    return intervals


# -- idle-heavy desktop --------------------------------------------------------


def _desktop_editing(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Long idle floors; keystroke bursts are short and core-bound.
    for _ in range(6):
        intervals.extend(_segment(rng, 7, ipc=0.06, decode_ratio=1.05, dcu=0.05))
        intervals.extend(_segment(rng, 2, ipc=1.5, decode_ratio=1.3, dcu=0.4))
    return intervals


def _desktop_browsing(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Page loads (parse+layout burst, then image decode) between reads.
    for _ in range(4):
        intervals.extend(_segment(rng, 3, ipc=1.6, decode_ratio=1.3, dcu=0.6))
        intervals.extend(_segment(rng, 2, ipc=0.8, decode_ratio=1.15, dcu=1.8))
        intervals.extend(_segment(rng, 8, ipc=0.08, decode_ratio=1.05, dcu=0.1))
    return intervals


def _desktop_media(rng: random.Random) -> list[TraceInterval]:
    intervals: list[TraceInterval] = []
    # Periodic decode ticks over an idle floor -- soft-real-time shape.
    for _ in range(12):
        intervals.extend(_segment(rng, 1, ipc=1.2, decode_ratio=1.25, dcu=0.7))
        intervals.extend(_segment(rng, 2, ipc=0.15, decode_ratio=1.05, dcu=0.2))
    return intervals


@dataclass(frozen=True)
class CorpusScenario:
    """One named corpus scenario and its documented phase structure."""

    name: str
    family: str
    description: str
    build: Callable[[random.Random], list[TraceInterval]]


_SCENARIOS: tuple[CorpusScenario, ...] = (
    CorpusScenario(
        "web-diurnal", "web",
        "Diurnal web serving: three load steps (30%/100%/45%), each a "
        "train of core-bound render bursts over a memory-bound "
        "cache-churn floor.",
        _web_diurnal,
    ),
    CorpusScenario(
        "web-flash-crowd", "web",
        "Flash crowd: steady floor, sustained core-bound saturation "
        "spike with cache churn, slow decay back to the floor.",
        _web_flash_crowd,
    ),
    CorpusScenario(
        "web-api-mixed", "web",
        "Mixed API tier: alternating cheap cache-hit responses "
        "(core-bound) and heavy DB-backed calls (memory-bound).",
        _web_api_mixed,
    ),
    CorpusScenario(
        "etl-scan-heavy", "etl",
        "Scan-heavy ETL: long memory-bound table-scan passes with short "
        "core-bound transform windows between passes.",
        _etl_scan_heavy,
    ),
    CorpusScenario(
        "etl-transform", "etl",
        "Transform-heavy ETL: core-bound parse/compress passes with "
        "periodic memory-bound spill windows.",
        _etl_transform,
    ),
    CorpusScenario(
        "etl-shuffle", "etl",
        "Map/shuffle/reduce: core-bound map, memory-bound all-to-all "
        "shuffle, mixed merge.",
        _etl_shuffle,
    ),
    CorpusScenario(
        "infer-batch", "inference",
        "Batched inference: each arrival is a memory-bound "
        "weight-streaming ramp, a compute-dense matmul plateau, then a "
        "near-idle gap.",
        _infer_batch,
    ),
    CorpusScenario(
        "infer-streaming", "inference",
        "Streaming token decode: steadily memory-bound with short "
        "compute blips at sequence boundaries.",
        _infer_streaming,
    ),
    CorpusScenario(
        "infer-mixed", "inference",
        "Co-located models: compute-dense small-model windows, "
        "memory-bound large-model windows, mixed handoffs.",
        _infer_mixed,
    ),
    CorpusScenario(
        "desktop-editing", "desktop",
        "Text editing: long idle floors punctuated by short core-bound "
        "keystroke bursts.",
        _desktop_editing,
    ),
    CorpusScenario(
        "desktop-browsing", "desktop",
        "Web browsing: page loads (core-bound parse/layout, then "
        "memory-leaning image decode) between long idle reading gaps.",
        _desktop_browsing,
    ),
    CorpusScenario(
        "desktop-media", "desktop",
        "Media playback: periodic decode ticks over an idle floor -- a "
        "soft-real-time shape.",
        _desktop_media,
    ),
)

_BY_NAME = {scenario.name: scenario for scenario in _SCENARIOS}

#: Family name -> tuple of scenario names, in corpus order.
CORPUS_FAMILIES: dict[str, tuple[str, ...]] = {}
for _scenario in _SCENARIOS:
    CORPUS_FAMILIES.setdefault(_scenario.family, ())
    CORPUS_FAMILIES[_scenario.family] += (_scenario.name,)


def corpus_names() -> tuple[str, ...]:
    """All scenario names, in corpus order."""
    return tuple(scenario.name for scenario in _SCENARIOS)


def corpus_trace(name: str, seed: int = 0) -> CounterTrace:
    """Generate one corpus scenario deterministically.

    The same ``(name, seed)`` pair always yields the same trace; the
    trace's metadata records family, seed, and the documented phase
    structure.
    """
    scenario = _BY_NAME.get(name)
    if scenario is None:
        raise WorkloadError(
            f"unknown corpus scenario {name!r}; "
            f"available: {', '.join(corpus_names())}"
        )
    rng = random.Random(f"{name}:{seed}")
    intervals = scenario.build(rng)
    # Non-default seeds show up in the trace name so sweep labels and
    # result digests distinguish corpus variants.
    return CounterTrace(
        name if seed == 0 else f"{name}@{seed}",
        intervals,
        meta={
            "source": f"corpus:{name}",
            "family": scenario.family,
            "seed": str(seed),
            "scenario": scenario.description,
        },
    )


def generate_corpus(seed: int = 0) -> dict[str, CounterTrace]:
    """All corpus scenarios for ``seed``, keyed by name."""
    return {name: corpus_trace(name, seed) for name in corpus_names()}


def write_corpus(out_dir: str, seed: int = 0) -> dict[str, str]:
    """Write every scenario to ``out_dir`` as ``<name>.trace.csv``.

    Returns a name -> path mapping.  Files are written atomically, so a
    crashed generation never leaves a torn trace behind.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths: dict[str, str] = {}
    for name, trace in generate_corpus(seed).items():
        path = os.path.join(out_dir, f"{name}.trace.csv")
        trace.to_path(path)
        paths[name] = path
    return paths
