"""Trace calibration: rescale foreign counter streams into the platform.

A log captured on another machine carries frequencies not in the
Pentium M p-state table and rates the simulated pipeline cannot
produce (IPC above the decode width, DCU occupancies above the
fill-buffer bound, decode ratios below one).  Replaying such a trace
verbatim would push the phase inversion outside the simulator's valid
envelope and silently distort the workload.

:func:`calibrate_trace` therefore snaps every interval into the
platform's :class:`~repro.platform.calibration.CounterEnvelope`
(frequency table plus rate bounds, all derived from the pipeline
model) and returns, alongside the calibrated trace, a
:class:`CalibrationReport` that itemizes every frequency remap and
every clipped rate -- nothing is adjusted silently.  Traces recorded
on the platform itself pass through untouched (``report.clean``),
which is what keeps record -> replay fidelity exact.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.platform.calibration import CounterEnvelope, counter_envelope
from repro.workloads.traces import CounterTrace, TraceInterval


@dataclass
class CalibrationReport:
    """What calibration changed, per field, with magnitudes."""

    trace_name: str
    intervals: int
    frequency_remaps: Counter = field(default_factory=Counter)
    clipped: Counter = field(default_factory=Counter)
    #: Largest relative adjustment per field, e.g. ``{"ipc": 0.4}``
    #: meaning some interval's IPC was cut by 40%.
    max_clip: dict[str, float] = field(default_factory=dict)
    touched: int = 0

    @property
    def clean(self) -> bool:
        """True when the trace was already inside the envelope."""
        return not self.frequency_remaps and not self.clipped

    def _note_clip(self, which: str, original: float, clamped: float) -> None:
        if clamped == original:
            return
        self.clipped[which] += 1
        scale = max(abs(original), abs(clamped), 1e-12)
        relative = abs(original - clamped) / scale
        self.max_clip[which] = max(self.max_clip.get(which, 0.0), relative)

    def render(self) -> str:
        lines = [
            f"calibration of {self.trace_name!r}: "
            f"{self.touched}/{self.intervals} intervals adjusted"
            + ("" if self.touched else " (already in envelope)")
        ]
        # Jittery foreign clocks produce one remap key per distinct
        # source frequency; collapse each target's sources to a range
        # once they stop fitting on a few lines.
        by_target: dict[str, list[tuple[float, int]]] = {}
        for remap, count in sorted(self.frequency_remaps.items()):
            source, target = remap.split("->", 1)
            by_target.setdefault(target, []).append((float(source), count))
        for target, sources in sorted(by_target.items()):
            if len(sources) <= 3:
                for source, count in sorted(sources):
                    lines.append(
                        f"  frequency {source:.0f}->{target}: "
                        f"{count} intervals"
                    )
            else:
                total = sum(count for _source, count in sources)
                low = min(source for source, _count in sources)
                high = max(source for source, _count in sources)
                lines.append(
                    f"  frequency {low:.0f}-{high:.0f}->{target}: "
                    f"{total} intervals"
                )
        for which, count in sorted(self.clipped.items()):
            lines.append(
                f"  {which} clipped on {count} intervals "
                f"(max {self.max_clip[which]:.1%} change)"
            )
        return "\n".join(lines)


def calibrate_trace(
    trace: CounterTrace,
    envelope: CounterEnvelope | None = None,
) -> tuple[CounterTrace, CalibrationReport]:
    """Snap ``trace`` into the platform envelope, reporting every change.

    Per interval: the frequency moves to the nearest p-state; IPC is
    capped at the decode width; the decode ratio DPC/IPC is clamped to
    the platform's [1, width] band (with DPC itself never exceeding the
    decode width); DCU occupancy is clamped to the fill-buffer bound.
    Interval lengths are never changed -- time is the one thing a
    foreign log owns outright.
    """
    envelope = envelope or counter_envelope()
    report = CalibrationReport(trace_name=trace.name, intervals=len(trace))
    calibrated: list[TraceInterval] = []
    for interval in trace:
        frequency = envelope.nearest_frequency(interval.frequency_mhz)
        if frequency != interval.frequency_mhz:
            report.frequency_remaps[
                f"{interval.frequency_mhz:.0f}->{frequency:.0f} MHz"
            ] += 1
        ipc = min(interval.ipc, envelope.ipc_max)
        report._note_clip("ipc", interval.ipc, ipc)
        dpc_low = ipc * envelope.decode_ratio_min
        dpc_high = min(ipc * envelope.decode_ratio_max, envelope.ipc_max)
        dpc = min(max(interval.dpc, dpc_low), max(dpc_low, dpc_high))
        report._note_clip("decode_ratio", interval.dpc, dpc)
        dcu = min(interval.dcu, envelope.dcu_max)
        report._note_clip("dcu", interval.dcu, dcu)
        touched = (
            frequency != interval.frequency_mhz
            or ipc != interval.ipc
            or dpc != interval.dpc
            or dcu != interval.dcu
        )
        if touched:
            report.touched += 1
            calibrated.append(
                TraceInterval(
                    interval_s=interval.interval_s,
                    frequency_mhz=frequency,
                    ipc=ipc,
                    dpc=dpc,
                    dcu=dcu,
                )
            )
        else:
            calibrated.append(interval)
    meta = trace.meta
    if report.touched:
        meta["calibrated"] = (
            f"{report.touched}/{report.intervals} intervals adjusted"
        )
    return CounterTrace(trace.name, calibrated, meta), report
