"""The AdaptationManager: shadow-scoring, recalibration, rollback.

Closes the loop the paper leaves open (§IV-A2's future-work sketch):
the controller feeds the manager one ``(counter sample, p-state,
measured power)`` triple per 10 ms tick, and the manager

1. **shadow-scores** the active model: estimates power for the interval
   that just executed and tracks the residual stream;
2. **refines** a per-p-state recursive-least-squares fit from the same
   samples (no history stored);
3. **detects drift** with a Page-Hinkley test over the residuals (plus
   a performance-model misclassification monitor when the sampler
   carries IPC/DCU counters), distinguishing persistent bias from the
   transient noise the guardband already absorbs;
4. **recalibrates** when drift is confirmed: fits a fresh model from
   the RLS state, registers it in the :class:`~repro.adaptation.
   registry.ModelRegistry` with provenance, and hot-swaps the
   governor's model between control decisions;
5. **rolls back** a recalibration that fails probation (residuals did
   not improve), re-activating the registry version it replaced; and
6. optionally **widens the PM guardband** in proportion to the observed
   residual spread, so a noisier model is trusted less.

The manager is engaged per run via :meth:`engage`; a governor that does
not expose ``swap_model`` (anything outside the PM family) leaves the
manager inert and the run bit-for-bit identical to an unmanaged one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.adaptation.drift import (
    MisclassificationMonitor,
    PageHinkleyDetector,
    ResidualTracker,
)
from repro.adaptation.registry import ModelRegistry, ModelVersion
from repro.adaptation.rls import PowerModelRLS
from repro.core.models.performance import PerformanceModel
from repro.core.models.power import LinearPowerModel
from repro.errors import AdaptationError
from repro.platform.events import Event
from repro.telemetry.bus import (
    ModelDriftDetected,
    ModelRecalibrated,
    ModelRolledBack,
)
from repro.telemetry.metrics import PROJECTION_ERROR_BUCKETS_W

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acpi.pstates import PState
    from repro.core.sampling import CounterSample
    from repro.telemetry.recorder import TelemetryRecorder


@dataclass(frozen=True)
class AdaptationConfig:
    """Knobs of the online-adaptation loop (validated on construction)."""

    #: RLS exponential forgetting factor (effective window ~1/(1-lambda)).
    forgetting_factor: float = 0.98
    #: Samples a p-state's RLS fit needs before it replaces the active
    #: coefficients in a recalibration.
    min_samples_per_state: int = 20
    #: Page-Hinkley per-sample tolerance (watts of residual ignored).
    ph_delta_w: float = 0.05
    #: Page-Hinkley confirmation threshold (cumulative excess watts).
    ph_threshold_w: float = 8.0
    #: Samples before the Page-Hinkley test may fire.
    ph_min_samples: int = 50
    #: Ticks between recalibrations (confirmation during cooldown is
    #: held, not dropped).
    cooldown_ticks: int = 150
    #: Ticks a freshly swapped model is on probation before it is
    #: judged against the model it replaced.
    probation_ticks: int = 100
    #: A probation model is rolled back when its mean |residual| exceeds
    #: this multiple of the pre-swap mean |residual|.
    rollback_tolerance: float = 1.25
    #: Widen the governor guardband with the observed residual spread.
    widen_guardband: bool = True
    #: Watts of extra guardband per watt of residual std.
    guardband_gain: float = 1.5
    #: Upper clamp on the widened guardband.
    max_guardband_w: float = 2.0
    #: EWMA weight of the residual tracker.
    residual_alpha: float = 0.02
    #: Sliding window of the performance-model misclassification monitor.
    misclass_window: int = 200
    #: Misclassification rate that counts as performance-model drift.
    misclass_rate: float = 0.5
    #: Transitions observed before the misclassification rate is trusted.
    misclass_min_observations: int = 25

    def __post_init__(self) -> None:
        if not 0.0 < self.forgetting_factor <= 1.0:
            raise AdaptationError(
                "forgetting_factor must be in (0, 1], got "
                f"{self.forgetting_factor}"
            )
        if self.min_samples_per_state < 1:
            raise AdaptationError("min_samples_per_state must be >= 1")
        if self.cooldown_ticks < 0 or self.probation_ticks < 0:
            raise AdaptationError(
                "cooldown_ticks and probation_ticks must be non-negative"
            )
        if self.rollback_tolerance < 1.0:
            raise AdaptationError(
                f"rollback_tolerance must be >= 1, got "
                f"{self.rollback_tolerance}"
            )
        if self.guardband_gain < 0 or self.max_guardband_w < 0:
            raise AdaptationError(
                "guardband_gain and max_guardband_w must be non-negative"
            )


class AdaptationManager:
    """Per-run online adaptation driver (see module docstring)."""

    def __init__(
        self,
        config: AdaptationConfig | None = None,
        registry: ModelRegistry | None = None,
        performance_model: PerformanceModel | None = None,
    ):
        self.config = config if config is not None else AdaptationConfig()
        self.registry = registry if registry is not None else ModelRegistry()
        self._perf_model = (
            performance_model
            if performance_model is not None
            else PerformanceModel.paper_primary()
        )
        self._governor = None
        self._tel: "TelemetryRecorder | None" = None
        self._engaged = False
        self.drift_detections = 0
        self.recalibrations = 0
        self.rollbacks = 0
        self.perf_drift_detections = 0

    # -- lifecycle -------------------------------------------------------------

    @property
    def engaged(self) -> bool:
        """True when bound to a compatible governor for the current run."""
        return self._engaged

    def bind_telemetry(
        self, telemetry: "TelemetryRecorder | None"
    ) -> None:
        """Reattach a recorder mid-run (used after checkpoint restore)."""
        self._tel = (
            telemetry
            if telemetry is not None and telemetry.enabled
            else None
        )

    def __getstate__(self):
        # The recorder is process state (open exporter handles); the
        # governor binding, RLS/detector/tracker/probation state and the
        # registry all round-trip exactly.
        state = self.__dict__.copy()
        state["_tel"] = None
        return state

    def engage(
        self,
        governor,
        telemetry: "TelemetryRecorder | None" = None,
        now_s: float = 0.0,
    ) -> bool:
        """Bind to ``governor`` for one run; False leaves the manager inert.

        A compatible governor exposes ``model`` (a
        :class:`LinearPowerModel`) and ``swap_model``.  The baseline
        model is registered as the first version so every later
        recalibration has a rollback target.
        """
        model = getattr(governor, "model", None)
        if not hasattr(governor, "swap_model") or not isinstance(
            model, LinearPowerModel
        ):
            self._engaged = False
            return False
        cfg = self.config
        self._governor = governor
        self._tel = (
            telemetry
            if telemetry is not None and telemetry.enabled
            else None
        )
        self._active_model = model
        self._rls = PowerModelRLS(
            forgetting=cfg.forgetting_factor, initial_model=model
        )
        self._detector = PageHinkleyDetector(
            delta=cfg.ph_delta_w,
            threshold=cfg.ph_threshold_w,
            min_samples=cfg.ph_min_samples,
        )
        self._tracker = ResidualTracker(alpha=cfg.residual_alpha)
        self._misclass = MisclassificationMonitor(
            self._perf_model,
            window=cfg.misclass_window,
            rate_threshold=cfg.misclass_rate,
            min_observations=cfg.misclass_min_observations,
        )
        self._base_guardband = getattr(governor, "guardband_w", None)
        self._ticks = 0
        self._last_recalibration_tick: int | None = None
        self._drift_pending = False
        self._probation_left = 0
        self._probation_tracker = ResidualTracker(alpha=cfg.residual_alpha)
        self._preswap_abs_mean = 0.0
        self._previous_model: LinearPowerModel | None = None
        self._last_ipc: float | None = None
        self._last_freq: float | None = None
        if self.registry.active_version is None:
            self.registry.register(
                model,
                provenance={
                    "source": "offline_baseline",
                    "note": "model the governor started the run with",
                },
                created_at_s=now_s,
            )
        self._engaged = True
        return True

    # -- per-tick observation --------------------------------------------------

    def observe(
        self,
        sample: "CounterSample",
        pstate: "PState",
        measured_w: float,
        now_s: float,
    ) -> None:
        """Fold one executed interval into the adaptation state.

        ``sample`` and ``measured_w`` describe the interval that just
        ran at ``pstate``; any model swap decided here takes effect at
        the *next* control decision.
        """
        if not self._engaged:
            return
        if Event.INST_DECODED not in sample.rates:
            return  # multiplexed group without the model's regressor
        cfg = self.config
        self._ticks += 1
        freq = pstate.frequency_mhz
        dpc = sample.dpc
        estimate = self._active_model.estimate(freq, dpc)
        residual = measured_w - estimate

        self._rls.update(freq, dpc, measured_w)
        self._tracker.update(residual)
        confirmed = self._detector.update(residual)

        tel = self._tel
        if tel is not None:
            tel.metrics.histogram(
                "adaptation.residual_w", PROJECTION_ERROR_BUCKETS_W
            ).observe(residual)

        self._observe_classification(sample, freq, now_s)

        if self._probation_left > 0:
            self._probation_tracker.update(residual)
            self._probation_left -= 1
            if self._probation_left == 0:
                self._judge_probation(now_s)

        if confirmed and not self._drift_pending:
            self._drift_pending = True
            self.drift_detections += 1
            # Page-Hinkley confirms within a few ticks of a step change,
            # when the RLS state is still dominated by pre-drift
            # samples; restart the fit so the recalibration is built
            # from post-drift evidence only (min_samples_per_state
            # gates how much must accumulate first).
            self._rls.reset()
            if tel is not None:
                tel.metrics.counter("adaptation.drift_detected").inc()
                tel.emit(
                    ModelDriftDetected(
                        time_s=now_s,
                        detector="page_hinkley",
                        statistic=self._detector.statistic,
                        threshold=self._detector.threshold,
                    )
                )

        if self._drift_pending and self._cooldown_elapsed():
            refit = self._rls.refit_frequencies(cfg.min_samples_per_state)
            if refit:
                self._recalibrate(refit, now_s)

        self._widen_guardband(tel)

    # -- internals -------------------------------------------------------------

    def _cooldown_elapsed(self) -> bool:
        if self._last_recalibration_tick is None:
            return True
        return (
            self._ticks - self._last_recalibration_tick
            >= self.config.cooldown_ticks
        )

    def _observe_classification(
        self, sample: "CounterSample", freq: float, now_s: float
    ) -> None:
        """Feed the misclassification monitor across p-state changes."""
        rates = sample.rates
        if (
            Event.INST_RETIRED not in rates
            or Event.DCU_MISS_OUTSTANDING not in rates
        ):
            return
        ipc = sample.ipc
        last_ipc, last_freq = self._last_ipc, self._last_freq
        self._last_ipc, self._last_freq = ipc, freq
        if (
            last_ipc is None
            or last_freq is None
            or last_freq == freq
            or last_ipc <= 0
            or ipc <= 0
        ):
            return
        fired = self._misclass.observe(
            dcu_per_ipc=sample.dcu_per_ipc,
            from_mhz=last_freq,
            to_mhz=freq,
            observed_ipc_ratio=ipc / last_ipc,
        )
        if fired:
            self.perf_drift_detections += 1
            tel = self._tel
            if tel is not None:
                tel.metrics.counter(
                    "adaptation.perf_drift_detected"
                ).inc()
                tel.emit(
                    ModelDriftDetected(
                        time_s=now_s,
                        detector="misclassification",
                        statistic=self._misclass.misclassification_rate,
                        threshold=self._misclass.rate_threshold,
                    )
                )
            self._misclass.reset()

    def _recalibrate(self, refit: tuple[float, ...], now_s: float) -> None:
        cfg = self.config
        new_model = self._rls.fitted_model(
            self._active_model, min_samples=cfg.min_samples_per_state
        )
        provenance: dict[str, Any] = {
            "source": "rls_recalibration",
            "trigger": "page_hinkley",
            "tick": self._ticks,
            "time_s": now_s,
            "residual_mean_w": self._tracker.mean,
            "residual_std_w": self._tracker.std,
            "refit_mhz": list(refit),
            "rls": {
                str(freq): stats
                for freq, stats in self._rls.snapshot().items()
            },
        }
        version = self.registry.register(
            new_model, provenance=provenance, created_at_s=now_s
        )
        self._previous_model = self._active_model
        self._preswap_abs_mean = self._tracker.abs_mean
        self._active_model = new_model
        self._governor.swap_model(new_model)
        self.recalibrations += 1
        self._drift_pending = False
        self._last_recalibration_tick = self._ticks
        self._detector.reset()
        self._tracker.reset()
        self._probation_tracker.reset()
        self._probation_left = cfg.probation_ticks
        tel = self._tel
        if tel is not None:
            tel.metrics.counter("adaptation.recalibrations").inc()
            tel.metrics.gauge("adaptation.active_version").set(
                version.version
            )
            tel.emit(
                ModelRecalibrated(
                    time_s=now_s,
                    version=version.version,
                    refit_mhz=tuple(refit),
                    residual_mean_w=float(
                        provenance["residual_mean_w"]
                    ),
                    residual_std_w=float(provenance["residual_std_w"]),
                )
            )

    def _judge_probation(self, now_s: float) -> None:
        """End-of-probation verdict: keep the new model or roll back."""
        if self._previous_model is None:
            return
        threshold = self.config.rollback_tolerance * max(
            self._preswap_abs_mean, 1e-9
        )
        if self._probation_tracker.abs_mean <= threshold:
            self._previous_model = None  # model confirmed; keep it
            return
        from_version = self.registry.active_version
        restored = self.registry.rollback()
        self._active_model = restored.load()
        self._governor.swap_model(self._active_model)
        self._previous_model = None
        self.rollbacks += 1
        self._detector.reset()
        self._tracker.reset()
        # The rollback says the *refit* was bad, not that the drift went
        # away: leave the confirmation pending so the next cooldown
        # expiry retries with the extra evidence gathered since.
        self._drift_pending = True
        tel = self._tel
        if tel is not None:
            tel.metrics.counter("adaptation.rollbacks").inc()
            tel.metrics.gauge("adaptation.active_version").set(
                restored.version
            )
            tel.emit(
                ModelRolledBack(
                    time_s=now_s,
                    from_version=from_version,
                    to_version=restored.version,
                    reason=(
                        "probation residuals worse than pre-swap "
                        f"({self._probation_tracker.abs_mean:.3f} W vs "
                        f"{self._preswap_abs_mean:.3f} W)"
                    ),
                )
            )

    def _widen_guardband(self, tel) -> None:
        cfg = self.config
        if (
            not cfg.widen_guardband
            or self._base_guardband is None
            or not hasattr(self._governor, "set_guardband")
        ):
            return
        target = min(
            self._base_guardband + cfg.guardband_gain * self._tracker.std,
            cfg.max_guardband_w,
        )
        target = max(target, self._base_guardband)
        if abs(target - self._governor.guardband_w) > 1e-3:
            self._governor.set_guardband(target)
            if tel is not None:
                tel.metrics.gauge("adaptation.guardband_w").set(target)

    # -- reporting -------------------------------------------------------------

    @property
    def active_version(self) -> ModelVersion | None:
        """The registry's active model version."""
        return self.registry.active

    def summary(self) -> Mapping[str, Any]:
        """JSON-safe digest for CLI output and tests."""
        return {
            "engaged": self._engaged,
            "drift_detections": self.drift_detections,
            "perf_drift_detections": self.perf_drift_detections,
            "recalibrations": self.recalibrations,
            "rollbacks": self.rollbacks,
            "registered_versions": len(self.registry),
            "active_version": self.registry.active_version,
            "residual_mean_w": (
                self._tracker.mean if self._engaged else 0.0
            ),
            "residual_std_w": (
                self._tracker.std if self._engaged else 0.0
            ),
        }
