"""Process-local ambient adaptation config (mirrors ``faults.injecting``).

The CLI's ``experiment --adapt`` must enable online adaptation for runs
made deep inside experiment modules without threading a manager through
every driver signature.  :func:`adapting` installs an
:class:`~repro.adaptation.manager.AdaptationConfig` process-locally;
:func:`repro.experiments.runner.run_governed` picks it up and builds a
fresh :class:`~repro.adaptation.manager.AdaptationManager` per run, so
repetitions adapt independently and reproducibly.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.adaptation.manager import AdaptationConfig

_current: AdaptationConfig | None = None


def current_adaptation_config() -> AdaptationConfig | None:
    """The ambient config installed by :func:`adapting` (None = off)."""
    return _current


def set_adaptation_config(config: AdaptationConfig | None) -> None:
    """Install (or clear, with ``None``) the ambient adaptation config."""
    global _current
    _current = config


@contextlib.contextmanager
def adapting(config: AdaptationConfig | None) -> Iterator[
    AdaptationConfig | None
]:
    """Temporarily install ``config`` as the ambient adaptation config."""
    previous = current_adaptation_config()
    set_adaptation_config(config)
    try:
        yield config
    finally:
        set_adaptation_config(previous)
