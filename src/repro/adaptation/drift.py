"""Drift detection over model residuals.

Estimation errors are inevitable (the paper budgets a 0.5 W guardband
for them); *drift* is different -- a persistent, one-directional bias
meaning the fitted coefficients no longer describe the platform (sensor
gain drift, thermal shift, an unmodeled workload regime).  This module
separates the two:

* :class:`PageHinkleyDetector` -- the Page-Hinkley test (a two-sided
  CUSUM variant) over the power-model residual stream.  Transient noise
  cancels in the cumulative statistic; a sustained mean shift grows it
  linearly until it crosses the confirmation threshold.
* :class:`ResidualTracker` -- exponentially weighted mean/std of the
  residual stream, used to widen the PM guardband proportionally to the
  observed residual spread and to judge a recalibrated model during its
  probation window.
* :class:`MisclassificationMonitor` -- the performance-model
  counterpart: watches p-state transitions and checks whether the
  DCU/IPC threshold classified the workload into the class that best
  explains the *observed* IPC scaling.  A high misclassification rate
  over the window means the Eq. 3 threshold/exponent have drifted.
"""

from __future__ import annotations

import math
from collections import deque

from repro.core.models.performance import PerformanceModel, WorkloadClass
from repro.errors import AdaptationError


class PageHinkleyDetector:
    """Two-sided Page-Hinkley test for a mean shift in a sample stream.

    Parameters
    ----------
    delta:
        Tolerated drift magnitude per sample (the test's insensitivity
        band; residual noise smaller than this never accumulates).
    threshold:
        Confirmation threshold ``lambda`` on the cumulative statistic.
        Larger = fewer false positives, slower confirmation.
    min_samples:
        Samples required before the detector may fire (the running mean
        needs to settle first).
    """

    def __init__(
        self,
        delta: float = 0.05,
        threshold: float = 5.0,
        min_samples: int = 30,
    ):
        if delta < 0:
            raise AdaptationError(f"delta must be non-negative, got {delta}")
        if threshold <= 0:
            raise AdaptationError(
                f"threshold must be positive, got {threshold}"
            )
        if min_samples < 1:
            raise AdaptationError("min_samples must be at least 1")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.reset()

    def reset(self) -> None:
        """Forget all accumulated evidence (fresh stream)."""
        self._count = 0
        self._mean = 0.0
        self._cum_up = 0.0
        self._min_up = 0.0
        self._cum_down = 0.0
        self._max_down = 0.0

    @property
    def samples_seen(self) -> int:
        """Samples absorbed since the last reset."""
        return self._count

    @property
    def statistic(self) -> float:
        """The larger of the upward/downward test statistics."""
        return max(
            self._cum_up - self._min_up, self._max_down - self._cum_down
        )

    def update(self, value: float) -> bool:
        """Absorb one sample; True when a drift is confirmed.

        The caller is expected to :meth:`reset` after acting on a
        confirmation (recalibration starts a fresh evidence stream).
        """
        self._count += 1
        self._mean += (value - self._mean) / self._count
        deviation = value - self._mean
        self._cum_up += deviation - self.delta
        self._min_up = min(self._min_up, self._cum_up)
        self._cum_down += deviation + self.delta
        self._max_down = max(self._max_down, self._cum_down)
        if self._count < self.min_samples:
            return False
        return self.statistic > self.threshold


class ResidualTracker:
    """Exponentially weighted mean and spread of a residual stream."""

    def __init__(self, alpha: float = 0.02):
        if not 0.0 < alpha <= 1.0:
            raise AdaptationError(
                f"EWMA alpha must be in (0, 1], got {alpha}"
            )
        self.alpha = alpha
        self.reset()

    def reset(self) -> None:
        """Forget the stream (fresh model / fresh probation window)."""
        self._count = 0
        self._mean = 0.0
        self._var = 0.0
        self._abs_mean = 0.0

    def update(self, value: float) -> None:
        """Absorb one residual."""
        self._count += 1
        if self._count == 1:
            self._mean = value
            self._abs_mean = abs(value)
            return
        alpha = self.alpha
        diff = value - self._mean
        incr = alpha * diff
        self._mean += incr
        self._var = (1.0 - alpha) * (self._var + diff * incr)
        self._abs_mean += alpha * (abs(value) - self._abs_mean)

    @property
    def count(self) -> int:
        """Residuals absorbed since the last reset."""
        return self._count

    @property
    def mean(self) -> float:
        """Exponentially weighted residual mean (signed bias)."""
        return self._mean

    @property
    def std(self) -> float:
        """Exponentially weighted residual standard deviation."""
        return math.sqrt(max(self._var, 0.0))

    @property
    def abs_mean(self) -> float:
        """Exponentially weighted mean |residual| (probation score)."""
        return self._abs_mean


class MisclassificationMonitor:
    """Performance-model class monitor over observed p-state transitions.

    On a frequency change from ``f`` to ``f'``, Eq. 3 predicts the IPC
    ratio ``IPC'/IPC`` to be ``1`` (core-bound) or ``(f/f')^e``
    (memory-bound), chosen by the DCU/IPC threshold.  Each observation
    asks: *which class better explains the ratio we actually measured?*
    A sample whose observed scaling is closer (in log space) to the
    other class's prediction counts as a misclassification; the rate
    over a sliding window is the drift signal.
    """

    def __init__(
        self,
        model: PerformanceModel,
        window: int = 200,
        rate_threshold: float = 0.5,
        min_observations: int = 20,
    ):
        if window < 1:
            raise AdaptationError("window must be at least 1")
        if not 0.0 < rate_threshold <= 1.0:
            raise AdaptationError(
                f"rate threshold must be in (0, 1], got {rate_threshold}"
            )
        if min_observations < 1:
            raise AdaptationError("min_observations must be at least 1")
        self._model = model
        self._window: deque[bool] = deque(maxlen=window)
        self.rate_threshold = rate_threshold
        self.min_observations = min_observations

    def reset(self) -> None:
        """Forget the window (fresh model)."""
        self._window.clear()

    @property
    def observations(self) -> int:
        """Transitions observed within the current window."""
        return len(self._window)

    @property
    def misclassification_rate(self) -> float:
        """Fraction of windowed observations the model misclassified."""
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    def observe(
        self,
        dcu_per_ipc: float,
        from_mhz: float,
        to_mhz: float,
        observed_ipc_ratio: float,
    ) -> bool:
        """Score one transition; True when the drift rate is exceeded.

        ``observed_ipc_ratio`` is ``IPC_after / IPC_before`` across the
        transition.  Equal-frequency ticks carry no class information
        and must not be fed in.
        """
        if from_mhz <= 0 or to_mhz <= 0:
            raise AdaptationError("frequencies must be positive")
        if from_mhz == to_mhz:
            raise AdaptationError(
                "equal-frequency observations carry no class signal"
            )
        if observed_ipc_ratio <= 0:
            raise AdaptationError("observed IPC ratio must be positive")
        predicted = self._model.classify(dcu_per_ipc)
        core_ratio = 1.0
        memory_ratio = (from_mhz / to_mhz) ** self._model.memory_exponent
        log_obs = math.log(observed_ipc_ratio)
        core_error = abs(log_obs - math.log(core_ratio))
        memory_error = abs(log_obs - math.log(memory_ratio))
        best = (
            WorkloadClass.CORE_BOUND
            if core_error <= memory_error
            else WorkloadClass.MEMORY_BOUND
        )
        self._window.append(best is not predicted)
        return (
            len(self._window) >= self.min_observations
            and self.misclassification_rate > self.rate_threshold
        )
