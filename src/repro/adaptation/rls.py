"""Recursive least squares for the per-p-state linear power model.

The paper fits ``P = alpha * DPC + beta`` per p-state once, offline, on
the MS-Loops characterization sweep (Table II).  Online adaptation
needs the same fit to be *refinable from the control loop itself*: every
10 ms tick yields one ``(DPC, measured power)`` pair at the p-state that
just executed.  :class:`PowerModelRLS` maintains one two-parameter
recursive-least-squares estimate per p-state -- O(1) state and O(1)
update per sample, no history stored -- with an exponential forgetting
factor so stale pre-drift samples age out of the fit.

Standard RLS with regressor ``phi = [dpc, 1]`` and parameters
``theta = [alpha, beta]``::

    K     = P phi / (lambda + phi' P phi)
    theta = theta + K (y - phi' theta)
    P     = (P - K phi' P) / lambda

``lambda`` (the forgetting factor) in (0, 1]: 1.0 is the ordinary
infinite-memory fit; smaller values weight recent samples more, with an
effective window of roughly ``1 / (1 - lambda)`` samples.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.acpi.pstates import PState
from repro.core.models.power import LinearPowerModel, PStateCoefficients
from repro.errors import AdaptationError

#: Initial parameter-covariance scale for a cold-started p-state (large:
#: the first few samples dominate the estimate).
COLD_P0 = 1e4

#: Initial covariance scale when warm-starting from an existing model's
#: coefficients (small: trust the prior until evidence accumulates).
WARM_P0 = 1.0

#: Floor applied to a refitted beta so the resulting
#: :class:`PStateCoefficients` keeps its idle-power-is-positive invariant.
MIN_BETA_W = 0.05


class _RlsState:
    """One p-state's running estimate."""

    __slots__ = ("theta", "P", "count")

    def __init__(self, theta: np.ndarray, p0: float):
        self.theta = theta
        self.P = np.eye(2) * p0
        self.count = 0


class PowerModelRLS:
    """Per-p-state recursive (alpha, beta) refinement from live samples.

    Parameters
    ----------
    forgetting:
        Exponential forgetting factor ``lambda`` in (0, 1].
    initial_model:
        Optional model whose coefficients warm-start each p-state's
        estimate (cold p-states start from zero with a large covariance).
    """

    def __init__(
        self,
        forgetting: float = 0.98,
        initial_model: LinearPowerModel | None = None,
    ):
        if not 0.0 < forgetting <= 1.0:
            raise AdaptationError(
                f"forgetting factor must be in (0, 1], got {forgetting}"
            )
        self._forgetting = forgetting
        self._initial = initial_model
        self._states: dict[float, _RlsState] = {}

    @property
    def forgetting(self) -> float:
        """The forgetting factor ``lambda``."""
        return self._forgetting

    @property
    def frequencies_mhz(self) -> tuple[float, ...]:
        """P-states that have received at least one sample, ascending."""
        return tuple(sorted(self._states))

    def _state(self, frequency_mhz: float) -> _RlsState:
        state = self._states.get(frequency_mhz)
        if state is None:
            theta = np.zeros(2)
            p0 = COLD_P0
            if self._initial is not None:
                try:
                    prior = self._initial.coefficients(frequency_mhz)
                except Exception:  # noqa: BLE001 - any miss cold-starts
                    prior = None
                if prior is not None:
                    theta = np.array([prior.alpha, prior.beta])
                    p0 = WARM_P0
            state = self._states[frequency_mhz] = _RlsState(theta, p0)
        return state

    def update(
        self, pstate: PState | float, dpc: float, measured_w: float
    ) -> tuple[float, float]:
        """Fold one ``(DPC, measured power)`` sample into a p-state's fit.

        Returns the updated ``(alpha, beta)`` estimate.
        """
        if dpc < 0:
            raise AdaptationError(f"DPC cannot be negative, got {dpc}")
        if measured_w < 0:
            raise AdaptationError(
                f"measured power cannot be negative, got {measured_w}"
            )
        freq = pstate.frequency_mhz if isinstance(pstate, PState) else pstate
        state = self._state(freq)
        lam = self._forgetting
        phi = np.array([dpc, 1.0])
        P_phi = state.P @ phi
        gain = P_phi / (lam + phi @ P_phi)
        state.theta = state.theta + gain * (measured_w - phi @ state.theta)
        state.P = (state.P - np.outer(gain, P_phi)) / lam
        state.count += 1
        return float(state.theta[0]), float(state.theta[1])

    def samples_seen(self, frequency_mhz: float) -> int:
        """Samples folded into one p-state's estimate so far."""
        state = self._states.get(frequency_mhz)
        return state.count if state is not None else 0

    @property
    def total_samples(self) -> int:
        """Samples folded in across all p-states."""
        return sum(state.count for state in self._states.values())

    def coefficients(
        self, frequency_mhz: float
    ) -> PStateCoefficients | None:
        """The current estimate for one p-state (None before any sample).

        Estimates are clamped to the model invariants (``alpha >= 0``,
        ``beta > 0``) -- a briefly ill-conditioned fit must never
        produce an unconstructible model.
        """
        state = self._states.get(frequency_mhz)
        if state is None or state.count == 0:
            return None
        return PStateCoefficients(
            alpha=max(float(state.theta[0]), 0.0),
            beta=max(float(state.theta[1]), MIN_BETA_W),
        )

    def fitted_model(
        self,
        fallback: LinearPowerModel,
        min_samples: int = 1,
    ) -> LinearPowerModel:
        """A full model: refined where trusted, ``fallback`` elsewhere.

        A p-state's online estimate replaces the fallback coefficients
        only once it has absorbed ``min_samples`` samples; p-states the
        run never visited keep the fallback fit, so the swapped-in model
        always covers the whole table.
        """
        if min_samples < 1:
            raise AdaptationError("min_samples must be at least 1")
        coefficients: dict[float, PStateCoefficients] = {
            freq: fallback.coefficients(freq)
            for freq in fallback.frequencies_mhz
        }
        for freq in self.frequencies_mhz:
            if self.samples_seen(freq) >= min_samples:
                refined = self.coefficients(freq)
                if refined is not None:
                    coefficients[freq] = refined
        return LinearPowerModel(coefficients)

    def refit_frequencies(self, min_samples: int = 1) -> tuple[float, ...]:
        """P-states whose estimates would be trusted by :meth:`fitted_model`."""
        return tuple(
            freq
            for freq in self.frequencies_mhz
            if self.samples_seen(freq) >= min_samples
        )

    def reset(self) -> None:
        """Forget all per-p-state state (fresh run)."""
        self._states.clear()

    def snapshot(self) -> Mapping[float, dict]:
        """JSON-safe per-p-state estimate summary (for provenance)."""
        out: dict[float, dict] = {}
        for freq in self.frequencies_mhz:
            state = self._states[freq]
            out[freq] = {
                "alpha": float(state.theta[0]),
                "beta": float(state.theta[1]),
                "samples": state.count,
            }
        return out
