"""Online model adaptation: the measurement -> estimation feedback loop.

The paper trains its power model (``P = alpha * DPC + beta``, Table II)
and two-class performance model once, offline, and freezes the
coefficients; sensor drift, thermal shift or an unmodeled workload then
silently degrades every governor decision.  This subsystem closes the
loop so the models adapt *in place*:

* :mod:`repro.adaptation.rls` -- per-p-state recursive least squares
  with a forgetting factor, refining ``(alpha, beta)`` from each 10 ms
  ``(DPC, measured power)`` sample without storing history;
* :mod:`repro.adaptation.drift` -- residual tracking and drift
  confirmation (a two-sided Page-Hinkley test over power-model
  residuals, plus a performance-model misclassification monitor on the
  DCU/IPC threshold), distinguishing transient noise from genuine
  model drift;
* :mod:`repro.adaptation.registry` -- the versioned
  :class:`ModelRegistry`: provenance-stamped model snapshots
  (persistence format v2) with activate/rollback and disk persistence;
* :mod:`repro.adaptation.manager` -- the :class:`AdaptationManager`
  the :class:`~repro.core.controller.PowerManagementController` drives
  every tick: shadow-scores the active model, triggers recalibration
  when drift is confirmed, hot-swaps the governor's model between
  control decisions, widens the PM guardband with the observed residual
  spread, and rolls back a recalibration that fails probation;
* :mod:`repro.adaptation.report` -- the ``repro-power
  adaptation-report`` lifecycle digest.

Meter-drift fault plans (:class:`repro.faults.MeterFaults` with
``drift_rate_per_s``) are the drill for the detector: the
``drift`` experiment compares a frozen-model governor against an
adapting one under injected sensor drift.
"""

from repro.adaptation.context import (
    adapting,
    current_adaptation_config,
    set_adaptation_config,
)
from repro.adaptation.drift import (
    MisclassificationMonitor,
    PageHinkleyDetector,
    ResidualTracker,
)
from repro.adaptation.manager import AdaptationConfig, AdaptationManager
from repro.adaptation.registry import ModelRegistry, ModelVersion
from repro.adaptation.report import (
    AdaptationReport,
    load_adaptation_report,
    render_adaptation_report,
)
from repro.adaptation.rls import PowerModelRLS

__all__ = [
    "AdaptationConfig",
    "AdaptationManager",
    "PowerModelRLS",
    "PageHinkleyDetector",
    "ResidualTracker",
    "MisclassificationMonitor",
    "ModelRegistry",
    "ModelVersion",
    "AdaptationReport",
    "load_adaptation_report",
    "render_adaptation_report",
    "adapting",
    "current_adaptation_config",
    "set_adaptation_config",
]
