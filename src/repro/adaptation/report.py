"""Aggregation of adaptation activity from an exported telemetry directory.

``repro-power adaptation-report <dir>`` digests the model-lifecycle
events a ``--telemetry`` run recorded -- drift confirmations,
recalibrations, rollbacks -- together with the residual metrics, so a
fleet operator can audit *why* the governor's model changed and whether
the changes helped.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List

from repro.errors import TelemetryError
from repro.telemetry.exporters import EVENTS_FILENAME, METRICS_FILENAME
from repro.telemetry.report import load_events


@dataclass
class AdaptationReport:
    """Parsed model-adaptation activity of one telemetry directory."""

    directory: str
    drift_detections: List[dict] = field(default_factory=list)
    recalibrations: List[dict] = field(default_factory=list)
    rollbacks: List[dict] = field(default_factory=list)
    residual_histogram: dict = field(default_factory=dict)
    skipped_lines: int = 0
    #: True when the final event line was torn mid-write (killed run).
    truncated_tail: bool = False

    @property
    def final_version(self) -> int | None:
        """The last activated model version, if any lifecycle event fired.

        Recalibrations and rollbacks interleave, so the two streams are
        merged in time order before taking the last activation.
        """
        activations = [
            (event.get("time_s", 0.0), event.get("version"))
            for event in self.recalibrations
        ] + [
            (event.get("time_s", 0.0), event.get("to_version"))
            for event in self.rollbacks
        ]
        activations = [(t, v) for t, v in activations if v is not None]
        if not activations:
            return None
        return max(activations, key=lambda tv: tv[0])[1]


def load_adaptation_report(
    directory: str | os.PathLike,
) -> AdaptationReport:
    """Aggregate the adaptation events of a ``--telemetry`` directory."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        raise TelemetryError(f"no such telemetry directory: {directory}")
    events_path = os.path.join(directory, EVENTS_FILENAME)
    if not os.path.exists(events_path):
        raise TelemetryError(
            f"{directory} has no {EVENTS_FILENAME}; was it written with "
            "--telemetry?"
        )
    events, skipped, truncated = load_events(events_path)
    report = AdaptationReport(
        directory=directory, skipped_lines=skipped, truncated_tail=truncated
    )
    for event in events:
        kind = event.get("kind")
        if kind == "model_drift_detected":
            report.drift_detections.append(event)
        elif kind == "model_recalibrated":
            report.recalibrations.append(event)
        elif kind == "model_rolled_back":
            report.rollbacks.append(event)
    metrics_path = os.path.join(directory, METRICS_FILENAME)
    if os.path.exists(metrics_path):
        try:
            with open(metrics_path) as handle:
                metrics = json.load(handle)
        except (OSError, json.JSONDecodeError):
            metrics = {}
        if isinstance(metrics, dict):
            # metrics.json is the recorder snapshot: {"metrics": ..., "spans": ...}
            histograms = metrics.get("metrics", {}).get("histograms", {})
            if isinstance(histograms, dict):
                residual = histograms.get("adaptation.residual_w", {})
                if isinstance(residual, dict):
                    report.residual_histogram = residual
    return report


def render_adaptation_report(directory: str | os.PathLike) -> str:
    """Human-readable model-lifecycle digest of ``directory``."""
    report = load_adaptation_report(directory)
    lines = [f"adaptation report: {report.directory}", ""]

    if not (
        report.drift_detections
        or report.recalibrations
        or report.rollbacks
    ):
        lines.append(
            "no model-adaptation activity recorded (run with --adapt)"
        )
        return "\n".join(lines)

    lines.append(f"drift detections ({len(report.drift_detections)}):")
    for event in report.drift_detections:
        lines.append(
            f"  t={event.get('time_s', 0.0):8.3f}s  "
            f"{event.get('detector', '?'):18} "
            f"statistic {event.get('statistic', 0.0):.3f} "
            f"(threshold {event.get('threshold', 0.0):.3f})"
        )
    lines.append("")

    lines.append(f"recalibrations ({len(report.recalibrations)}):")
    for event in report.recalibrations:
        refit = event.get("refit_mhz", [])
        refit_text = ", ".join(f"{float(f):.0f}" for f in refit)
        lines.append(
            f"  t={event.get('time_s', 0.0):8.3f}s  "
            f"-> version {event.get('version', '?')} "
            f"(refit {refit_text} MHz; residual mean "
            f"{event.get('residual_mean_w', 0.0):+.2f} W, "
            f"std {event.get('residual_std_w', 0.0):.2f} W)"
        )
    if not report.recalibrations:
        lines.append("  (none)")
    lines.append("")

    if report.rollbacks:
        lines.append(f"rollbacks ({len(report.rollbacks)}):")
        for event in report.rollbacks:
            lines.append(
                f"  t={event.get('time_s', 0.0):8.3f}s  "
                f"version {event.get('from_version', '?')} -> "
                f"{event.get('to_version', '?')} "
                f"({event.get('reason', '?')})"
            )
        lines.append("")

    if report.final_version is not None:
        lines.append(f"final active model version: {report.final_version}")
    if report.residual_histogram:
        count = report.residual_histogram.get("count", 0)
        lines.append(f"residual samples observed: {count}")
    if report.skipped_lines:
        lines.append(f"skipped {report.skipped_lines} malformed event lines")
    if report.truncated_tail:
        lines.append("final event line torn mid-write (killed run); ignored")
    return "\n".join(lines)
