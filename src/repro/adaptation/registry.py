"""The versioned model registry: snapshots, provenance, rollback.

Every model the control loop ever trusts -- the offline baseline fit
and each online recalibration -- is registered as an immutable
:class:`ModelVersion`: a monotonically numbered snapshot of the
serialized coefficients (persistence format v2) plus provenance
metadata (what triggered the fit, residual statistics, per-p-state
sample counts).  Exactly one version is *active* at a time; activation
history is retained so a recalibration that fails probation can be
rolled back to precisely the model it replaced.

Registries persist to disk as a single JSON document and reload with
validation, so a fleet can ship a registry file the way the paper
shipped Table II -- but with the full adaptation lineage attached.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.models.persistence import (
    FORMAT_VERSION,
    SUPPORTED_FORMATS,
    model_from_json,
    power_model_to_json,
)
from repro.core.models.power import LinearPowerModel
from repro.errors import AdaptationError

#: ``kind`` tag of a serialized registry document.
REGISTRY_KIND = "model_registry"


@dataclass(frozen=True)
class ModelVersion:
    """One immutable registered snapshot.

    ``document`` is the model's own serialized JSON (persistence v2,
    provenance embedded); ``provenance`` is the same metadata as a
    dict for direct inspection.
    """

    version: int
    kind: str
    created_at_s: float
    provenance: Mapping[str, Any]
    document: str

    def load(self):
        """Deserialize this version's model object."""
        return model_from_json(self.document)


class ModelRegistry:
    """Append-only model version store with activate/rollback."""

    def __init__(self):
        self._versions: dict[int, ModelVersion] = {}
        self._next_version = 1
        self._activation_history: list[int] = []

    # -- registration ----------------------------------------------------------

    def register(
        self,
        model: LinearPowerModel | object,
        provenance: Mapping[str, Any] | None = None,
        created_at_s: float = 0.0,
        activate: bool = True,
    ) -> ModelVersion:
        """Snapshot ``model`` as the next version (optionally activating).

        Currently the registry serializes :class:`LinearPowerModel`
        snapshots (the model the adaptation loop refits); any object
        already carrying a ``to_json``-style document can be registered
        by passing its serialized form through ``provenance``-free
        custom code.
        """
        provenance = dict(provenance or {})
        if isinstance(model, LinearPowerModel):
            document = power_model_to_json(model, provenance=provenance)
            kind = "linear_power_model"
        else:
            raise AdaptationError(
                f"cannot register a {type(model).__name__}; the registry "
                "stores linear power models"
            )
        version = ModelVersion(
            version=self._next_version,
            kind=kind,
            created_at_s=created_at_s,
            provenance=provenance,
            document=document,
        )
        self._versions[version.version] = version
        self._next_version += 1
        if activate:
            self.activate(version.version)
        return version

    # -- lookup ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._versions)

    @property
    def versions(self) -> tuple[ModelVersion, ...]:
        """All registered versions, ascending."""
        return tuple(
            self._versions[v] for v in sorted(self._versions)
        )

    def get(self, version: int) -> ModelVersion:
        """One version by number; unknown numbers raise."""
        try:
            return self._versions[version]
        except KeyError:
            raise AdaptationError(
                f"no registered model version {version}; "
                f"registry holds {sorted(self._versions)}"
            ) from None

    @property
    def active_version(self) -> int | None:
        """The active version number (None for an empty registry)."""
        return (
            self._activation_history[-1]
            if self._activation_history
            else None
        )

    @property
    def active(self) -> ModelVersion | None:
        """The active :class:`ModelVersion` (None for an empty registry)."""
        number = self.active_version
        return self._versions[number] if number is not None else None

    def active_model(self):
        """Deserialize and return the active model object."""
        active = self.active
        if active is None:
            raise AdaptationError("registry has no active model")
        return active.load()

    # -- activation ------------------------------------------------------------

    def activate(self, version: int) -> ModelVersion:
        """Make ``version`` the active model (appends to history)."""
        target = self.get(version)
        if self.active_version != version:
            self._activation_history.append(version)
        return target

    def rollback(self) -> ModelVersion:
        """Re-activate the version the current one replaced.

        Pops the activation history; raises when there is no prior
        activation to return to.
        """
        if len(self._activation_history) < 2:
            raise AdaptationError(
                "nothing to roll back to: fewer than two activations"
            )
        self._activation_history.pop()
        return self._versions[self._activation_history[-1]]

    # -- persistence -----------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the whole registry (format v2)."""
        doc = {
            "format": FORMAT_VERSION,
            "kind": REGISTRY_KIND,
            "activation_history": list(self._activation_history),
            "versions": [
                {
                    "version": v.version,
                    "kind": v.kind,
                    "created_at_s": v.created_at_s,
                    "provenance": dict(v.provenance),
                    "model": json.loads(v.document),
                }
                for v in self.versions
            ],
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ModelRegistry":
        """Reload a registry document with validation."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as error:
            raise AdaptationError(
                f"not valid registry JSON: {error}"
            ) from None
        if not isinstance(doc, dict):
            raise AdaptationError("registry document must be a JSON object")
        if doc.get("format") not in SUPPORTED_FORMATS:
            raise AdaptationError(
                f"unsupported registry format {doc.get('format')!r}"
            )
        if doc.get("kind") != REGISTRY_KIND:
            raise AdaptationError(
                f"expected a {REGISTRY_KIND}, found {doc.get('kind')!r}"
            )
        registry = cls()
        entries = doc.get("versions", [])
        if not isinstance(entries, list):
            raise AdaptationError("registry versions must be a list")
        for entry in entries:
            if not isinstance(entry, dict):
                raise AdaptationError("registry version must be an object")
            try:
                number = int(entry["version"])
                document = json.dumps(entry["model"])
                version = ModelVersion(
                    version=number,
                    kind=str(entry["kind"]),
                    created_at_s=float(entry.get("created_at_s", 0.0)),
                    provenance=dict(entry.get("provenance", {})),
                    document=document,
                )
            except (KeyError, TypeError, ValueError) as error:
                raise AdaptationError(
                    f"malformed registry version entry: {error}"
                ) from None
            model_from_json(document)  # validate the payload eagerly
            registry._versions[number] = version
            registry._next_version = max(registry._next_version, number + 1)
        history = doc.get("activation_history", [])
        if not isinstance(history, list):
            raise AdaptationError("activation_history must be a list")
        for number in history:
            if number not in registry._versions:
                raise AdaptationError(
                    f"activation history references unknown version {number}"
                )
        registry._activation_history = [int(n) for n in history]
        return registry

    def save(self, path: str | os.PathLike) -> None:
        """Write the registry document to ``path`` atomically.

        A crash mid-save must never leave a half-written document: the
        registry is the audit trail a resumed run reloads.
        """
        from repro.ioutils import atomic_write_text

        atomic_write_text(os.fspath(path), self.to_json())

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ModelRegistry":
        """Reload a registry document from ``path``."""
        path = os.fspath(path)
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as error:
            raise AdaptationError(
                f"cannot read registry {path}: {error}"
            ) from None
        return cls.from_json(text)
