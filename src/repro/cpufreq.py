"""A Linux-cpufreq-style facade over the simulated platform.

The paper's methodology is the intellectual ancestor of what Linux later
shipped as cpufreq governors; this facade maps the reproduction onto
that familiar sysfs vocabulary so downstream users can drive it the way
they would drive ``/sys/devices/system/cpu/cpu0/cpufreq``:

* attributes: ``scaling_available_frequencies``, ``scaling_governor``,
  ``scaling_available_governors``, ``scaling_cur_freq``,
  ``scaling_setspeed`` (userspace governor), ``scaling_max_freq``;
* ``stats/time_in_state`` accounting;
* governors: ``performance``, ``powersave``, ``userspace``, plus the
  paper's ``repro_pm`` and ``repro_ps``.

Reads and writes go through :meth:`read` / :meth:`write` with
sysfs-style string values, and a governor step runs per machine tick via
:meth:`tick` -- the shape a real userspace daemon would see.
"""

from __future__ import annotations

from typing import Mapping

from repro.acpi.pstates import PState
from repro.core.governors.base import Governor
from repro.core.governors.performance_maximizer import PerformanceMaximizer
from repro.core.governors.powersave import PowerSave
from repro.core.governors.unconstrained import FixedFrequency
from repro.core.models.performance import PerformanceModel
from repro.core.models.power import LinearPowerModel
from repro.core.sampling import CounterSampler
from repro.errors import GovernorError, ReproError
from repro.platform.machine import Machine


class CpufreqPolicy:
    """sysfs-flavoured frequency-scaling policy for one machine."""

    GOVERNORS = (
        "performance", "powersave", "userspace", "repro_pm", "repro_ps",
    )

    def __init__(
        self,
        machine: Machine,
        power_model: LinearPowerModel | None = None,
        performance_model: PerformanceModel | None = None,
        default_power_limit_w: float = 17.5,
        default_floor: float = 0.8,
        domain: int = 0,
    ):
        self._machine = machine
        # The p-state domain this policy actuates, like the cpuN in
        # /sys/devices/system/cpu/cpuN/cpufreq.  Single-core machines
        # only have domain 0; the driver rejects anything else rather
        # than silently retuning the whole package.
        self._domain = domain
        self._power_model = power_model or LinearPowerModel.paper_model()
        self._perf_model = performance_model or PerformanceModel.paper_primary()
        self._power_limit = default_power_limit_w
        self._floor = default_floor
        self._time_in_state: dict[float, float] = {}
        self._governor_name = "performance"
        self._governor: Governor = FixedFrequency.fastest(
            machine.config.table
        )
        self._sampler: CounterSampler | None = None
        self._userspace_speed = machine.config.table.fastest.frequency_mhz

    # -- sysfs-style attribute access ----------------------------------------

    def read(self, attribute: str) -> str:
        """Read a sysfs-style attribute as its string representation."""
        table = self._machine.config.table
        if attribute == "scaling_available_frequencies":
            return " ".join(
                f"{int(s.frequency_mhz * 1000)}" for s in table
            )
        if attribute == "scaling_available_governors":
            return " ".join(self.GOVERNORS)
        if attribute == "scaling_governor":
            return self._governor_name
        if attribute == "scaling_cur_freq":
            return f"{int(self._machine.current_pstate.frequency_mhz * 1000)}"
        if attribute == "scaling_max_freq":
            return f"{int(table.fastest.frequency_mhz * 1000)}"
        if attribute == "scaling_min_freq":
            return f"{int(table.slowest.frequency_mhz * 1000)}"
        if attribute == "scaling_setspeed":
            return f"{int(self._userspace_speed * 1000)}"
        if attribute == "affected_cpus":
            return str(self._domain)
        if attribute == "stats/time_in_state":
            lines = [
                f"{int(freq * 1000)} {int(seconds * 100)}"
                for freq, seconds in sorted(self._time_in_state.items())
            ]
            return "\n".join(lines)
        raise ReproError(f"unknown cpufreq attribute {attribute!r}")

    def write(self, attribute: str, value: str) -> None:
        """Write a sysfs-style attribute (strings, as a shell would)."""
        if attribute == "scaling_governor":
            self.set_governor(value)
            return
        if attribute == "scaling_setspeed":
            if self._governor_name != "userspace":
                raise GovernorError(
                    "scaling_setspeed requires the userspace governor"
                )
            khz = float(value)
            self._userspace_speed = khz / 1000.0
            self._governor = FixedFrequency(
                self._machine.config.table, self._userspace_speed
            )
            self._arm_sampler()
            return
        if attribute == "repro_pm/power_limit_w":
            self._power_limit = float(value)
            if isinstance(self._governor, PerformanceMaximizer):
                self._governor.set_power_limit(self._power_limit)
            return
        if attribute == "repro_ps/floor":
            self._floor = float(value)
            if isinstance(self._governor, PowerSave):
                self._governor.set_floor(self._floor)
            return
        raise ReproError(f"unknown or read-only attribute {attribute!r}")

    # -- governor management ---------------------------------------------------

    def set_governor(self, name: str) -> None:
        """Switch the active governor, like writing scaling_governor."""
        table = self._machine.config.table
        if name == "performance":
            governor: Governor = FixedFrequency.fastest(table)
        elif name == "powersave":
            governor = FixedFrequency.slowest(table)
        elif name == "userspace":
            governor = FixedFrequency(table, self._userspace_speed)
        elif name == "repro_pm":
            governor = PerformanceMaximizer(
                table, self._power_model, self._power_limit
            )
        elif name == "repro_ps":
            governor = PowerSave(table, self._perf_model, self._floor)
        else:
            raise GovernorError(
                f"unknown governor {name!r}; "
                f"available: {' '.join(self.GOVERNORS)}"
            )
        self._governor_name = name
        self._governor = governor
        self._arm_sampler()

    def _arm_sampler(self) -> None:
        self._sampler = CounterSampler(
            self._machine.pmu, self._governor.events
        )
        self._sampler.start()

    # -- execution ---------------------------------------------------------------

    def tick(self) -> PState:
        """Advance one machine tick and apply the governor's decision.

        Returns the p-state in effect for the elapsed tick.
        """
        if self._sampler is None:
            self._arm_sampler()
        record = self._machine.step()
        sample = self._sampler.sample(record.duration_s)
        target = self._governor.decide(sample, self._machine.current_pstate)
        if target != self._machine.current_pstate:
            self._machine.speedstep.set_pstate(target, domain=self._domain)
        freq = record.pstate.frequency_mhz
        self._time_in_state[freq] = (
            self._time_in_state.get(freq, 0.0) + record.duration_s
        )
        return record.pstate

    def run_to_completion(self, max_seconds: float = 600.0) -> None:
        """Tick until the loaded workload finishes."""
        while not self._machine.finished:
            if self._machine.now_s > max_seconds:
                raise ReproError("workload exceeded the time budget")
            self.tick()

    @property
    def time_in_state(self) -> Mapping[float, float]:
        """Seconds spent at each frequency (MHz) since construction."""
        return dict(self._time_in_state)
