"""Declarative run plans: experiment cells as data, not ambient state.

Historically one run was described by a pile of ``run_governed`` kwargs
plus up to three ambient contexts (``injecting()``, ``adapting()``,
``checkpointing()``).  That sprawl is impossible to fan out over a
process pool -- a lambda governor factory does not pickle, and ambient
state does not cross process boundaries.  This module replaces it with
three plain-data types:

* :class:`GovernorSpec` -- a picklable, JSON-able description of a
  governor (kind + parameters + model source) that builds a fresh
  governor instance on demand;
* :class:`RunCell` -- one experiment cell: workload x governor x seed
  offset (plus schedule / initial frequency / per-cell overrides);
* :class:`RunPlan` -- a configured batch of cells with plan-wide fault /
  adaptation / resilience options carried **as data**.

A plan is the unit the execution engine schedules: serial execution
walks the cells in order, the parallel runner fans them out over
workers, and both produce bit-identical
:func:`~repro.checkpoint.run_result_digest` values per cell because
every source of randomness is derived from cell data alone.

:class:`ExperimentConfig` lives here too (re-exported from its historic
home :mod:`repro.experiments.runner`) so the experiments layer depends
on the execution engine rather than the other way around.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Sequence

from repro.acpi.pstates import PStateTable
from repro.adaptation.manager import AdaptationConfig
from repro.core.governors.base import Governor
from repro.core.limits import ConstraintSchedule
from repro.core.models.performance import PerformanceModel
from repro.core.models.power import LinearPowerModel
from repro.core.resilience import ResilienceConfig
from repro.errors import ExperimentError, PlanError
from repro.faults.plan import FaultPlan
from repro.platform.machine import MachineConfig
from repro.workloads.base import Workload

#: A governor factory: given the p-state table, build a fresh governor.
#: (Legacy entry-point type; new code should pass a :class:`GovernorSpec`.)
GovernorFactory = Callable[[PStateTable], Governor]

#: Plan serialization format version.
PLAN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ExperimentConfig:
    """Common experiment knobs.

    ``scale`` multiplies workload instruction budgets (1.0 = the full
    synthetic budgets; smaller = faster runs with identical rates and
    phase structure).  ``runs`` is the paper's repetition count (3 with
    median selection; 1 for quick sweeps).
    """

    scale: float = 0.5
    runs: int = 1
    seed: int = 0
    keep_trace: bool = False
    max_seconds: float = 600.0
    machine: MachineConfig = field(default_factory=MachineConfig)

    def machine_config(self, seed_offset: int = 0) -> MachineConfig:
        """Machine config with the experiment seed applied."""
        return replace(self.machine, seed=self.seed + seed_offset)

    @property
    def table(self) -> PStateTable:
        """The platform p-state table."""
        return self.machine.table


#: Governor kinds a :class:`GovernorSpec` can describe declaratively.
GOVERNOR_KINDS = (
    "pm", "adaptive-pm", "ps", "dbs", "fixed", "edp",
    "energy-optimal", "threads-freq", "factory",
)

#: Axis names :meth:`RunPlan.sweep_axes` accepts.
VALID_SWEEP_AXES = ("workloads", "governors", "seeds", "threads")

#: Power-model sources resolvable from data alone.
_MODEL_SOURCES = ("trained", "paper")


@dataclass(frozen=True)
class GovernorSpec:
    """A governor described by data, buildable in any process.

    ``power_model`` is either the string ``"trained"`` (fit on MS-Loops
    for the cell's experiment seed, via the per-process model cache),
    ``"paper"`` (the published Table II coefficients) or an explicit
    :class:`~repro.core.models.power.LinearPowerModel` instance.

    ``kind="factory"`` is the escape hatch for callers with a bespoke
    governor: the callable is carried verbatim.  Such specs execute
    serially everywhere and in parallel only when the callable pickles
    (module-level functions do; lambdas and closures do not), and they
    refuse JSON serialization.
    """

    kind: str
    power_limit_w: float | None = None
    floor: float | None = None
    frequency_mhz: float | None = None
    power_model: str | LinearPowerModel = "trained"
    performance_model: PerformanceModel | None = None
    raise_window: int | None = None
    guardband_w: float | None = None
    factory: GovernorFactory | None = None

    def __post_init__(self) -> None:
        if self.kind not in GOVERNOR_KINDS:
            raise ExperimentError(
                f"unknown governor kind {self.kind!r}; "
                f"expected one of {GOVERNOR_KINDS}"
            )
        if self.kind == "factory" and self.factory is None:
            raise ExperimentError("factory specs need a factory callable")
        if isinstance(self.power_model, str) and (
            self.power_model not in _MODEL_SOURCES
        ):
            raise ExperimentError(
                f"power_model must be a LinearPowerModel or one of "
                f"{_MODEL_SOURCES}, got {self.power_model!r}"
            )

    # -- convenience constructors ------------------------------------------

    @classmethod
    def pm(
        cls,
        power_limit_w: float,
        power_model: str | LinearPowerModel = "trained",
        raise_window: int | None = None,
        guardband_w: float | None = None,
    ) -> "GovernorSpec":
        """PerformanceMaximizer under ``power_limit_w``."""
        return cls(
            kind="pm",
            power_limit_w=power_limit_w,
            power_model=power_model,
            raise_window=raise_window,
            guardband_w=guardband_w,
        )

    @classmethod
    def adaptive_pm(
        cls,
        power_limit_w: float,
        power_model: str | LinearPowerModel = "trained",
    ) -> "GovernorSpec":
        """AdaptivePerformanceMaximizer (measured-power feedback)."""
        return cls(
            kind="adaptive-pm",
            power_limit_w=power_limit_w,
            power_model=power_model,
        )

    @classmethod
    def ps(
        cls,
        floor: float,
        performance_model: PerformanceModel | None = None,
    ) -> "GovernorSpec":
        """PowerSave above ``floor`` (default Eq. 3 primary exponent)."""
        return cls(kind="ps", floor=floor, performance_model=performance_model)

    @classmethod
    def fixed(cls, frequency_mhz: float) -> "GovernorSpec":
        """FixedFrequency pinned at ``frequency_mhz``."""
        return cls(kind="fixed", frequency_mhz=frequency_mhz)

    @classmethod
    def dbs(cls) -> "GovernorSpec":
        """Demand-Based Switching (the paper's §IV-B comparison)."""
        return cls(kind="dbs")

    @classmethod
    def edp(
        cls,
        power_model: str | LinearPowerModel = "trained",
        performance_model: PerformanceModel | None = None,
    ) -> "GovernorSpec":
        """EnergyDelayOptimizer."""
        return cls(
            kind="edp",
            power_model=power_model,
            performance_model=performance_model,
        )

    @classmethod
    def energy_optimal(
        cls,
        power_model: str | LinearPowerModel = "trained",
        performance_model: PerformanceModel | None = None,
    ) -> "GovernorSpec":
        """EnergyOptimalSearch (energy/instruction argmin over the table)."""
        return cls(
            kind="energy-optimal",
            power_model=power_model,
            performance_model=performance_model,
        )

    @classmethod
    def threads_freq(
        cls,
        power_model: str | LinearPowerModel = "trained",
        performance_model: PerformanceModel | None = None,
    ) -> "GovernorSpec":
        """ThreadsFreqGovernor (one-step (threads, p-state) walker)."""
        return cls(
            kind="threads-freq",
            power_model=power_model,
            performance_model=performance_model,
        )

    @classmethod
    def from_factory(cls, factory: GovernorFactory) -> "GovernorSpec":
        """Wrap a legacy governor factory callable."""
        return cls(kind="factory", factory=factory)

    # -- building ----------------------------------------------------------

    def resolve_power_model(self, seed: int) -> LinearPowerModel:
        """The spec's power model, training (cached) when requested."""
        if isinstance(self.power_model, LinearPowerModel):
            return self.power_model
        if self.power_model == "paper":
            return LinearPowerModel.paper_model()
        from repro.exec.cache import trained_power_model

        return trained_power_model(seed=seed)

    def build(self, table: PStateTable, seed: int = 0) -> Governor:
        """Instantiate a fresh governor for one run.

        ``seed`` is the *experiment* seed (it selects the trained power
        model, matching the historical ``trained_power_model(seed=
        config.seed)`` calls), not the per-cell machine seed.
        """
        if self.kind == "factory":
            return self.factory(table)
        if self.kind == "fixed":
            if self.frequency_mhz is None:
                raise ExperimentError("fixed specs need frequency_mhz")
            from repro.core.governors.unconstrained import FixedFrequency

            return FixedFrequency(table, self.frequency_mhz)
        if self.kind == "dbs":
            from repro.core.governors.demand_based import DemandBasedSwitching

            return DemandBasedSwitching(table)
        if self.kind == "ps":
            if self.floor is None:
                raise ExperimentError("ps specs need a floor")
            from repro.core.governors.powersave import PowerSave

            model = self.performance_model or PerformanceModel.paper_primary()
            return PowerSave(table, model, self.floor)
        if self.kind == "edp":
            from repro.core.governors.energy_efficiency import (
                EnergyDelayOptimizer,
            )

            perf = self.performance_model or PerformanceModel.paper_primary()
            return EnergyDelayOptimizer(
                table, self.resolve_power_model(seed), perf
            )
        if self.kind == "energy-optimal":
            from repro.core.governors.energy_optimal import EnergyOptimalSearch

            perf = self.performance_model or PerformanceModel.paper_primary()
            return EnergyOptimalSearch(
                table, self.resolve_power_model(seed), perf
            )
        if self.kind == "threads-freq":
            from repro.core.governors.threads_freq import ThreadsFreqGovernor

            perf = self.performance_model or PerformanceModel.paper_primary()
            return ThreadsFreqGovernor(
                table, self.resolve_power_model(seed), perf
            )
        if self.power_limit_w is None:
            raise ExperimentError(f"{self.kind} specs need power_limit_w")
        power_model = self.resolve_power_model(seed)
        if self.kind == "adaptive-pm":
            from repro.core.governors.adaptive_pm import (
                AdaptivePerformanceMaximizer,
            )

            return AdaptivePerformanceMaximizer(
                table, power_model, self.power_limit_w
            )
        from repro.core.governors.performance_maximizer import (
            PerformanceMaximizer,
        )

        kwargs = {}
        if self.raise_window is not None:
            kwargs["raise_window"] = self.raise_window
        if self.guardband_w is not None:
            kwargs["guardband_w"] = self.guardband_w
        return PerformanceMaximizer(
            table, power_model, self.power_limit_w, **kwargs
        )

    @property
    def label(self) -> str:
        """A short human-readable tag (used in summaries and telemetry)."""
        if self.kind == "pm" or self.kind == "adaptive-pm":
            return f"{self.kind}@{self.power_limit_w}W"
        if self.kind == "ps":
            return f"ps@{self.floor}"
        if self.kind == "fixed":
            return f"fixed@{self.frequency_mhz:.0f}MHz"
        if self.kind == "factory":
            return getattr(self.factory, "__name__", "factory")
        return self.kind

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form (refuses ``factory`` specs)."""
        if self.kind == "factory":
            raise ExperimentError(
                "factory governor specs cannot be serialized; describe the "
                "governor declaratively (GovernorSpec.pm/ps/fixed/...)"
            )
        out: dict = {"kind": self.kind}
        for key in ("power_limit_w", "floor", "frequency_mhz",
                    "raise_window", "guardband_w"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if isinstance(self.power_model, LinearPowerModel):
            from repro.core.models.persistence import power_model_to_json

            out["power_model"] = {
                "inline": json.loads(power_model_to_json(self.power_model))
            }
        elif self.power_model != "trained":
            out["power_model"] = self.power_model
        if self.performance_model is not None:
            out["performance_model"] = dataclasses.asdict(
                self.performance_model
            )
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "GovernorSpec":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(data, Mapping):
            raise ExperimentError("governor spec must be a mapping")
        power_model: str | LinearPowerModel = data.get(
            "power_model", "trained"
        )
        if isinstance(power_model, Mapping):
            from repro.core.models.persistence import power_model_from_json

            power_model = power_model_from_json(
                json.dumps(power_model["inline"])
            )
        performance_model = data.get("performance_model")
        if performance_model is not None:
            performance_model = PerformanceModel(**performance_model)
        return cls(
            kind=data["kind"],
            power_limit_w=data.get("power_limit_w"),
            floor=data.get("floor"),
            frequency_mhz=data.get("frequency_mhz"),
            power_model=power_model,
            performance_model=performance_model,
            raise_window=data.get("raise_window"),
            guardband_w=data.get("guardband_w"),
        )


@dataclass(frozen=True)
class RunCell:
    """One experiment cell: everything one run needs, as data.

    ``group``/``rep`` tag cells that belong to one logical measurement
    (the paper's median-of-N protocol expands one measurement into
    ``runs`` cells with seed offsets 100*i); the suite drivers use them
    to regroup parallel results.  Per-cell ``fault_plan`` / ``adaptation``
    / ``resilience`` override the plan-wide options when set.

    ``threads`` > 1 routes the cell through the multicore execution
    path: a :class:`~repro.multicore.machine.MulticoreMachine` with
    ``threads`` cores runs the workload split ``threads`` ways behind
    the shared-bus contention model.
    """

    workload: str | Workload
    governor: GovernorSpec
    seed_offset: int = 0
    schedule: ConstraintSchedule | None = None
    initial_frequency_mhz: float | None = None
    group: str | None = None
    rep: int = 0
    threads: int = 1
    fault_plan: FaultPlan | None = None
    adaptation: AdaptationConfig | None = None
    resilience: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.threads, int) or self.threads < 1:
            raise PlanError(
                f"cell threads must be a positive int, got {self.threads!r}"
            )

    @classmethod
    def fixed(
        cls, workload: str | Workload, frequency_mhz: float, **kwargs
    ) -> "RunCell":
        """A cell pinned at one frequency (the paper's reference runs).

        The run *starts* at the pinned frequency too -- otherwise the
        first tick would execute at P0 and bias short characterization
        runs.  Replaces the retired ``experiments.runner.run_fixed``.
        """
        return cls(
            workload=workload,
            governor=GovernorSpec.fixed(frequency_mhz),
            initial_frequency_mhz=frequency_mhz,
            **kwargs,
        )

    @property
    def workload_name(self) -> str:
        """The cell's workload name (resolving Workload objects)."""
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name

    @property
    def label(self) -> str:
        """``workload/governor[/tN][/repN]`` tag for logs and telemetry."""
        tag = f"{self.workload_name}/{self.governor.label}"
        if self.threads != 1:
            tag = f"{tag}/t{self.threads}"
        return f"{tag}/rep{self.rep}" if self.rep else tag

    def resolve_workload(self) -> Workload:
        """The cell's workload object.

        Strings resolve either as registry names or as ``trace:PATH`` /
        ``corpus:NAME[@SEED]`` specs; spec resolution goes through the
        per-process cache (:func:`repro.exec.cache.spec_workload`) so a
        sweep loads and inverts each trace once, and the spec itself --
        being a plain string -- rides through plan JSON untouched.
        """
        if isinstance(self.workload, Workload):
            return self.workload
        from repro.workloads.registry import get_workload, is_workload_spec

        if is_workload_spec(self.workload):
            from repro.exec.cache import spec_workload

            return spec_workload(self.workload)
        return get_workload(self.workload)

    def to_dict(self) -> dict:
        """JSON-safe form (refuses embedded Workload objects/schedules)."""
        if not isinstance(self.workload, str):
            raise ExperimentError(
                f"cell {self.label}: only registry workloads (by name) "
                "serialize; got an inline Workload object"
            )
        if self.schedule is not None:
            raise ExperimentError(
                f"cell {self.label}: constraint schedules do not serialize"
            )
        out: dict = {
            "workload": self.workload,
            "governor": self.governor.to_dict(),
        }
        if self.seed_offset:
            out["seed_offset"] = self.seed_offset
        if self.initial_frequency_mhz is not None:
            out["initial_frequency_mhz"] = self.initial_frequency_mhz
        if self.group is not None:
            out["group"] = self.group
        if self.rep:
            out["rep"] = self.rep
        if self.threads != 1:
            out["threads"] = self.threads
        if self.fault_plan is not None:
            out["fault_plan"] = self.fault_plan.to_dict()
        if self.adaptation is not None:
            out["adaptation"] = dataclasses.asdict(self.adaptation)
        if self.resilience is not None:
            out["resilience"] = dataclasses.asdict(self.resilience)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunCell":
        """Inverse of :meth:`to_dict`."""
        return cls(
            workload=data["workload"],
            governor=GovernorSpec.from_dict(data["governor"]),
            seed_offset=int(data.get("seed_offset", 0)),
            initial_frequency_mhz=data.get("initial_frequency_mhz"),
            group=data.get("group"),
            rep=int(data.get("rep", 0)),
            threads=int(data.get("threads", 1)),
            fault_plan=(
                FaultPlan.from_dict(data["fault_plan"])
                if data.get("fault_plan") is not None
                else None
            ),
            adaptation=(
                AdaptationConfig(**data["adaptation"])
                if data.get("adaptation") is not None
                else None
            ),
            resilience=(
                ResilienceConfig(**data["resilience"])
                if data.get("resilience") is not None
                else None
            ),
        )


#: ExperimentConfig fields that serialize (the machine config must be
#: default-constructed; bespoke platform models stay in-process).
_CONFIG_FIELDS = ("scale", "runs", "seed", "keep_trace", "max_seconds")


@dataclass(frozen=True)
class RunPlan:
    """A configured batch of cells plus plan-wide options as data.

    This is the single declarative description the execution engine
    consumes: serial and parallel execution of the same plan produce
    bit-identical per-cell results.  Build one directly, via the
    :meth:`single`/:meth:`sweep` constructors, or load one from JSON.
    """

    config: ExperimentConfig
    cells: tuple[RunCell, ...]
    fault_plan: FaultPlan | None = None
    adaptation: AdaptationConfig | None = None
    resilience: ResilienceConfig | None = None

    def __len__(self) -> int:
        return len(self.cells)

    @classmethod
    def single(
        cls,
        workload: str | Workload,
        governor: GovernorSpec,
        config: ExperimentConfig | None = None,
        **cell_kwargs,
    ) -> "RunPlan":
        """A one-cell plan (the ``run_governed`` shape)."""
        config = config or ExperimentConfig()
        return cls(
            config=config,
            cells=(RunCell(workload=workload, governor=governor,
                           **cell_kwargs),),
        )

    @classmethod
    def sweep(
        cls,
        workloads: Iterable[str | Workload],
        governors: Iterable[GovernorSpec],
        config: ExperimentConfig | None = None,
        seeds: Sequence[int] = (0,),
        threads: Sequence[int] = (1,),
        **plan_kwargs,
    ) -> "RunPlan":
        """The full cross product workloads x governors x seeds x threads.

        ``seeds`` become per-cell ``seed_offset`` values; the paper's
        median protocol instead uses ``config.runs`` via
        :meth:`with_median_cells`.  ``threads`` values other than 1 run
        the cell on a multicore machine with that many cores.
        """
        config = config or ExperimentConfig()
        cells = tuple(
            RunCell(
                workload=w,
                governor=g,
                seed_offset=s,
                threads=t,
                group=(w if isinstance(w, str) else w.name),
            )
            for w in workloads
            for g in governors
            for s in seeds
            for t in threads
        )
        return cls(config=config, cells=cells, **plan_kwargs)

    @classmethod
    def sweep_axes(
        cls,
        axes: Mapping[str, Iterable],
        config: ExperimentConfig | None = None,
        **plan_kwargs,
    ) -> "RunPlan":
        """:meth:`sweep` from a mapping of named axes, validated up front.

        Unknown axis names fail immediately with a :class:`PlanError`
        naming the valid axes, instead of silently vanishing into
        ``**kwargs`` or exploding deep inside cell construction.
        """
        if not isinstance(axes, Mapping):
            raise PlanError("sweep axes must be a mapping of axis -> values")
        unknown = sorted(set(axes) - set(VALID_SWEEP_AXES))
        if unknown:
            raise PlanError(
                f"unknown sweep axis(es) {unknown}; "
                f"valid axes are {list(VALID_SWEEP_AXES)}"
            )
        missing = sorted({"workloads", "governors"} - set(axes))
        if missing:
            raise PlanError(
                f"sweep axes missing required axis(es) {missing}; "
                f"valid axes are {list(VALID_SWEEP_AXES)}"
            )
        return cls.sweep(
            workloads=tuple(axes["workloads"]),
            governors=tuple(axes["governors"]),
            config=config,
            seeds=tuple(axes.get("seeds", (0,))),
            threads=tuple(axes.get("threads", (1,))),
            **plan_kwargs,
        )

    def cell_seed(self, cell: RunCell) -> int:
        """The derived machine seed a cell runs with (for debugging)."""
        return self.config.seed + cell.seed_offset

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form of the whole plan."""
        if self.config.machine != MachineConfig():
            raise ExperimentError(
                "plans with a non-default machine config do not serialize; "
                "construct them in-process"
            )
        out: dict = {
            "format": PLAN_FORMAT_VERSION,
            "config": {
                key: getattr(self.config, key) for key in _CONFIG_FIELDS
            },
            "cells": [cell.to_dict() for cell in self.cells],
        }
        if self.fault_plan is not None:
            out["fault_plan"] = self.fault_plan.to_dict()
        if self.adaptation is not None:
            out["adaptation"] = dataclasses.asdict(self.adaptation)
        if self.resilience is not None:
            out["resilience"] = dataclasses.asdict(self.resilience)
        return out

    def to_json(self) -> str:
        """Serialize the plan for ``repro-power run --plan``."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunPlan":
        """Inverse of :meth:`to_dict` (validates the format version)."""
        if not isinstance(data, Mapping) or "cells" not in data:
            raise ExperimentError("run plan must be a mapping with 'cells'")
        version = data.get("format", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise ExperimentError(
                f"unsupported plan format {version!r} "
                f"(this build reads {PLAN_FORMAT_VERSION})"
            )
        raw_config = dict(data.get("config", {}))
        unknown = set(raw_config) - set(_CONFIG_FIELDS)
        if unknown:
            raise ExperimentError(
                f"unknown plan config fields: {sorted(unknown)}"
            )
        return cls(
            config=ExperimentConfig(**raw_config),
            cells=tuple(RunCell.from_dict(c) for c in data["cells"]),
            fault_plan=(
                FaultPlan.from_dict(data["fault_plan"])
                if data.get("fault_plan") is not None
                else None
            ),
            adaptation=(
                AdaptationConfig(**data["adaptation"])
                if data.get("adaptation") is not None
                else None
            ),
            resilience=(
                ResilienceConfig(**data["resilience"])
                if data.get("resilience") is not None
                else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunPlan":
        """Parse a plan serialized with :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ExperimentError(f"malformed run plan JSON: {error}") from None
        return cls.from_dict(data)


def as_governor_spec(
    governor: GovernorSpec | GovernorFactory,
) -> GovernorSpec:
    """Coerce a legacy factory callable into a spec (specs pass through)."""
    if isinstance(governor, GovernorSpec):
        return governor
    return GovernorSpec.from_factory(governor)
