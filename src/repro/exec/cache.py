"""Shared model/measurement caches for the execution engine.

Training the MS-Loops power model and measuring the FMA-256KB
worst-case table are the two expensive derived artifacts every sweep
needs; historically they were ``functools.lru_cache``'d inside
``repro.experiments.runner``.  They live here now as explicit,
exportable per-process caches so the parallel runner can make every
worker *inherit* them instead of re-deriving them per cell:

* with a forked pool the parent primes the caches once and the workers
  inherit the filled dicts for free;
* with a spawned pool the parent ships :func:`export_caches`'s payload
  to each worker's initializer, which calls :func:`install_caches`.

Either way each (seed, scale) combination is trained/measured exactly
once per campaign rather than once per cell.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Mapping

from repro.core.models.power import LinearPowerModel
from repro.platform.machine import MachineConfig
from repro.workloads.base import Workload

#: Trained power model per experiment seed.
_MODELS: Dict[int, LinearPowerModel] = {}

#: Measured worst-case power table per (scale, seed).
_WORST_CASE: Dict[tuple[float, int], Mapping[float, float]] = {}

#: Resolved trace/corpus spec workloads.  File-backed specs key on the
#: file's identity (mtime + size) too, so editing a trace CSV between
#: runs invalidates the cached inversion.
_TRACE_WORKLOADS: Dict[tuple, Workload] = {}

#: Content-hash fallback for file-backed specs: ``(spec, sha256)`` ->
#: workload.  A trace file whose mtime changed but whose bytes did not
#: (``touch``, a re-download, a checkout) aliases back to the already
#: inverted workload instead of invalidating it.
_TRACE_CONTENT: Dict[tuple, Workload] = {}


def file_sha256(path: str | os.PathLike) -> str:
    """SHA-256 of a file's bytes (streamed; raises ``OSError``)."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _spec_key(spec: str) -> tuple:
    kind, _, rest = spec.partition(":")
    if kind == "trace":
        try:
            stat = os.stat(rest)
        except OSError:
            # Let resolution raise the pointed WorkloadError.
            return (spec,)
        return (spec, stat.st_mtime_ns, stat.st_size)
    return (spec,)


def spec_workload(spec: str) -> Workload:
    """Resolve a ``trace:``/``corpus:`` spec, cached per process.

    Loading a trace CSV and inverting it into phases is pure but not
    free; sweeps reference the same spec in many cells, so the resolved
    :class:`Workload` is cached exactly like trained power models --
    per process, inherited by forked workers, shipped to spawned ones
    via :func:`export_caches`.

    The fast key is the file's stat identity (mtime + size).  On a
    stat-key miss the file's content hash is consulted before falling
    back to a full re-inversion, so a touched-but-identical trace file
    costs one hash pass, not a reload.
    """
    key = _spec_key(spec)
    workload = _TRACE_WORKLOADS.get(key)
    if workload is not None:
        return workload
    content_key = None
    if len(key) == 3:  # a trace file that stat'ed successfully
        path = spec.partition(":")[2]
        try:
            content_key = (spec, file_sha256(path))
        except OSError:
            content_key = None
        if content_key is not None:
            workload = _TRACE_CONTENT.get(content_key)
            if workload is not None:
                _TRACE_WORKLOADS[key] = workload
                return workload
    from repro.workloads.registry import resolve_workload_spec

    workload = _TRACE_WORKLOADS[key] = resolve_workload_spec(spec)
    if content_key is not None:
        _TRACE_CONTENT[content_key] = workload
    return workload


def trained_power_model(seed: int = 0) -> LinearPowerModel:
    """The power model trained on MS-Loops (cached per process).

    Experiments use the *trained* model by default -- the paper trains
    on the microbenchmarks, then manages SPEC with the result.  The
    published Table II coefficients remain available via
    :meth:`LinearPowerModel.paper_model` for comparisons.
    """
    model = _MODELS.get(seed)
    if model is None:
        from repro.core.models.training import (
            collect_training_data,
            fit_power_model,
        )

        points = collect_training_data(config=MachineConfig(seed=seed))
        model = _MODELS[seed] = fit_power_model(points)
    return model


def worst_case_power_table(
    scale: float = 3.0, seed: int = 0
) -> Mapping[float, float]:
    """Measured FMA-256KB power per p-state (regenerates Table III).

    This is the worst-case characterization static clocking provisions
    against; it is *measured* (run on the simulated rig), not computed
    from model constants.
    """
    key = (scale, seed)
    table = _WORST_CASE.get(key)
    if table is None:
        from repro.exec.core import execute_cell
        from repro.exec.plan import ExperimentConfig, GovernorSpec, RunCell
        from repro.workloads.microbenchmarks import worst_case_workload

        workload = worst_case_workload()
        config = ExperimentConfig(scale=scale, seed=seed)
        out: dict[float, float] = {}
        for pstate in config.table:
            result = execute_cell(
                RunCell(
                    workload=workload,
                    governor=GovernorSpec.fixed(pstate.frequency_mhz),
                    initial_frequency_mhz=pstate.frequency_mhz,
                ),
                config,
            )
            out[pstate.frequency_mhz] = result.mean_power_w
        table = _WORST_CASE[key] = out
    return table


#: Projection tables (Eq. 2 power / Eq. 3 throughput), keyed by VALUE
#: of (model coefficients, p-state table) rather than object identity:
#: every cell of a campaign builds its governor from an equal-but-
#: distinct model object, and value keys let them all share one table.
_PM_PROJECTIONS: Dict[tuple, object] = {}
_PS_PROJECTIONS: Dict[tuple, object] = {}


def _pm_key(model, table) -> tuple:
    return (
        tuple(
            (f, model.alpha(f), model.beta(f))
            for f in model.frequencies_mhz
        ),
        tuple((p.frequency_mhz, p.voltage) for p in table),
    )


def _ps_key(model, table) -> tuple:
    return (
        (model.memory_exponent, model.dcu_threshold),
        tuple((p.frequency_mhz, p.voltage) for p in table),
    )


def pm_projection_table(model, table):
    """Shared Eq. 2 :class:`PowerProjectionTable` for (model, table)."""
    key = _pm_key(model, table)
    tbl = _PM_PROJECTIONS.get(key)
    if tbl is None:
        from repro.core.models.projection import PowerProjectionTable

        tbl = _PM_PROJECTIONS[key] = PowerProjectionTable(model, table)
    return tbl


def ps_projection_table(model, table):
    """Shared Eq. 3 :class:`ThroughputProjectionTable` for (model, table)."""
    key = _ps_key(model, table)
    tbl = _PS_PROJECTIONS.get(key)
    if tbl is None:
        from repro.core.models.projection import ThroughputProjectionTable

        tbl = _PS_PROJECTIONS[key] = ThroughputProjectionTable(model, table)
    return tbl


def prime_for_plan(plan) -> None:
    """Train every model the plan's cells will ask for, ahead of forking.

    Called by the parallel runner in the parent process so forked
    workers inherit a warm cache (and the spawn payload is complete).
    """
    needs_trained = any(
        cell.governor.power_model == "trained"
        for cell in plan.cells
        if isinstance(cell.governor.power_model, str)
    )
    if needs_trained:
        trained_power_model(seed=plan.config.seed)
    from repro.workloads.registry import is_workload_spec

    for cell in plan.cells:
        if is_workload_spec(cell.workload):
            spec_workload(cell.workload)


def export_caches() -> dict:
    """A picklable snapshot of every cache (for spawn-pool workers)."""
    from repro.platform.blockstep import export_rate_templates

    return {
        "models": dict(_MODELS),
        "worst_case": dict(_WORST_CASE),
        "trace_workloads": dict(_TRACE_WORKLOADS),
        "trace_content": dict(_TRACE_CONTENT),
        "pm_projections": dict(_PM_PROJECTIONS),
        "ps_projections": dict(_PS_PROJECTIONS),
        "rate_templates": export_rate_templates(),
    }


def install_caches(payload: Mapping) -> None:
    """Merge a parent-process snapshot into this process's caches."""
    from repro.platform.blockstep import install_rate_templates

    _MODELS.update(payload.get("models", {}))
    _WORST_CASE.update(payload.get("worst_case", {}))
    _TRACE_WORKLOADS.update(payload.get("trace_workloads", {}))
    _TRACE_CONTENT.update(payload.get("trace_content", {}))
    _PM_PROJECTIONS.update(payload.get("pm_projections", {}))
    _PS_PROJECTIONS.update(payload.get("ps_projections", {}))
    install_rate_templates(payload.get("rate_templates", {}))


def clear_caches() -> None:
    """Drop every cached artifact (tests only)."""
    from repro.platform.blockstep import clear_rate_templates

    _MODELS.clear()
    _WORST_CASE.clear()
    _TRACE_WORKLOADS.clear()
    _TRACE_CONTENT.clear()
    _PM_PROJECTIONS.clear()
    _PS_PROJECTIONS.clear()
    clear_rate_templates()
