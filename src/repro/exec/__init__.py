"""Execution engine: declarative run plans, serial or parallel.

Public surface:

* :class:`~repro.exec.plan.RunPlan` / :class:`~repro.exec.plan.RunCell`
  / :class:`~repro.exec.plan.GovernorSpec` -- experiments as data;
* :func:`~repro.exec.session.open_session` -- the single composable
  entry point (telemetry, faults, adaptation, checkpointing, workers);
* :class:`~repro.exec.runner.ParallelRunner` -- the work-stealing
  process pool behind ``workers>=1``;
* :func:`~repro.exec.core.execute_cell` -- the one code path every
  cell runs through, in every process.
"""

from repro.exec.core import PreparedCell, execute_cell, prepare_cell
from repro.exec.cache import (
    clear_caches,
    export_caches,
    install_caches,
    prime_for_plan,
    trained_power_model,
    worst_case_power_table,
)
from repro.exec.plan import (
    GOVERNOR_KINDS,
    PLAN_FORMAT_VERSION,
    VALID_SWEEP_AXES,
    ExperimentConfig,
    GovernorFactory,
    GovernorSpec,
    RunCell,
    RunPlan,
    as_governor_spec,
)
from repro.exec.runner import ParallelRunner, default_mp_context
from repro.exec.session import (
    ExecSession,
    current_session,
    execute_cells,
    executing,
    open_session,
    set_session,
)

__all__ = [
    "GOVERNOR_KINDS",
    "PLAN_FORMAT_VERSION",
    "VALID_SWEEP_AXES",
    "ExecSession",
    "ExperimentConfig",
    "GovernorFactory",
    "GovernorSpec",
    "ParallelRunner",
    "PreparedCell",
    "RunCell",
    "RunPlan",
    "as_governor_spec",
    "clear_caches",
    "current_session",
    "default_mp_context",
    "execute_cell",
    "execute_cells",
    "executing",
    "export_caches",
    "install_caches",
    "open_session",
    "prepare_cell",
    "prime_for_plan",
    "set_session",
    "trained_power_model",
    "worst_case_power_table",
]
