"""One composable entry point for running experiments.

:func:`open_session` subsumes what previously took four nested ambient
context managers plus a pile of ``run_governed`` kwargs::

    # before
    with recording(recorder), injecting(faults), adapting(adapt), \\
            checkpointing(ckpt):
        result = run_governed("mcf", lambda t: PowerSave(t, model, 0.8),
                              config)

    # after
    with open_session(telemetry_dir="out", faults=faults,
                      adaptation=adapt, checkpoint=ckpt,
                      workers=4) as session:
        result = session.run("mcf", GovernorSpec.ps(0.8), config)

The session both *is* the ambient state (it installs the telemetry /
fault / adaptation / checkpoint contexts for legacy code underneath it)
and the execution engine handle: ``workers=0`` runs cells serially
in-process, ``workers>=1`` fans them out through
:class:`~repro.exec.runner.ParallelRunner` with bit-identical results.

Code between the layers (suite drivers, ``median_run``) calls
:func:`execute_cells`, which routes through the innermost open session
-- so a CLI-level ``--workers 4`` parallelises sweeps built many layers
below without those layers knowing.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, List, Sequence

from repro.adaptation.context import adapting, current_adaptation_config
from repro.adaptation.manager import AdaptationConfig
from repro.checkpoint.context import (
    checkpointing,
    current_checkpoint_session,
)
from repro.core.controller import RunResult
from repro.core.resilience import ResilienceConfig
from repro.exec.core import execute_cell
from repro.exec.plan import (
    ExperimentConfig,
    GovernorFactory,
    GovernorSpec,
    RunCell,
    RunPlan,
    as_governor_spec,
)
from repro.faults.context import current_fault_plan, injecting
from repro.faults.plan import FaultPlan
from repro.telemetry.recorder import TelemetryRecorder, recording

_current: "ExecSession | None" = None


def current_session() -> "ExecSession | None":
    """The innermost session opened by :func:`open_session` (or None)."""
    return _current


def set_session(session: "ExecSession | None") -> None:
    """Install (or clear, with ``None``) the ambient session."""
    global _current
    _current = session


@contextlib.contextmanager
def executing(session: "ExecSession | None") -> Iterator[
    "ExecSession | None"
]:
    """Temporarily install ``session`` as the ambient session.

    Lower-level than :func:`open_session`: installs *only* the session
    (for callers like the CLI that manage telemetry/fault/adaptation
    contexts themselves) so :func:`execute_cells` routes through it.
    """
    previous = current_session()
    set_session(session)
    try:
        yield session
    finally:
        set_session(previous)


class ExecSession:
    """A live execution scope: options + (optionally) a worker pool.

    Construct directly only when composing with externally-managed
    ambient contexts; otherwise use :func:`open_session`, which installs
    everything coherently.
    """

    def __init__(
        self,
        workers: int = 0,
        telemetry: TelemetryRecorder | None = None,
        telemetry_dir: str | os.PathLike | None = None,
        faults: FaultPlan | None = None,
        adaptation: AdaptationConfig | None = None,
        resilience: ResilienceConfig | None = None,
        checkpoint=None,
        mp_context=None,
        max_restarts: int = 4,
        cell_hook=None,
    ):
        self.workers = workers
        self.telemetry = telemetry
        self.telemetry_dir = (
            os.fspath(telemetry_dir) if telemetry_dir is not None else None
        )
        self.faults = faults
        self.adaptation = adaptation
        self.resilience = resilience
        self.checkpoint = checkpoint
        self.mp_context = mp_context
        self.max_restarts = max_restarts
        self.cell_hook = cell_hook
        #: The most recent ParallelRunner (crash/reschedule stats).
        self.last_runner = None

    @property
    def parallel(self) -> bool:
        """Whether this session dispatches to a worker pool."""
        return self.workers >= 1

    # -- running -----------------------------------------------------------

    def run_cells(
        self, cells: Sequence[RunCell], config: ExperimentConfig
    ) -> List[RunResult]:
        """Execute ``cells`` under this session's options, in cell order."""
        plan = RunPlan(
            config=config,
            cells=tuple(cells),
            fault_plan=(
                self.faults if self.faults is not None
                else current_fault_plan()
            ),
            adaptation=(
                self.adaptation if self.adaptation is not None
                else current_adaptation_config()
            ),
            resilience=self.resilience,
        )
        return self.run_plan(plan)

    def run_plan(self, plan: RunPlan) -> List[RunResult]:
        """Execute a fully-specified plan (serially or on the pool)."""
        checkpoint = (
            self.checkpoint
            if self.checkpoint is not None
            else current_checkpoint_session()
        )
        if not self.parallel:
            with checkpointing(checkpoint):
                return [
                    execute_cell(
                        cell,
                        plan.config,
                        telemetry=self.telemetry,
                        fault_plan=plan.fault_plan,
                        adaptation=plan.adaptation,
                        resilience=plan.resilience,
                    )
                    for cell in plan.cells
                ]
        from repro.exec.runner import ParallelRunner

        runner = ParallelRunner(
            self.workers,
            mp_context=self.mp_context,
            max_restarts=self.max_restarts,
            telemetry_root=self.telemetry_dir,
            cell_hook=self.cell_hook,
        )
        self.last_runner = runner
        return runner.execute(plan, checkpoint_session=checkpoint)

    def run(
        self,
        workload,
        governor: GovernorSpec | GovernorFactory,
        config: ExperimentConfig | None = None,
        **cell_kwargs,
    ) -> RunResult:
        """Run a single cell (the ``run_governed`` shape) and return it."""
        cell = RunCell(
            workload=workload,
            governor=as_governor_spec(governor),
            **cell_kwargs,
        )
        return self.run_cells([cell], config or ExperimentConfig())[0]


def execute_cells(
    cells: Sequence[RunCell], config: ExperimentConfig
) -> List[RunResult]:
    """Execute cells through the ambient session (serial when none).

    This is the seam mid-layer code (suite drivers, ``median_run``,
    experiment modules) calls so that a session opened above them --
    e.g. the CLI's ``--workers 4`` -- transparently parallelises their
    sweeps.  Without a session it is exactly the historical behaviour:
    cells run in order, in process, honouring ambient contexts.
    """
    session = current_session()
    if session is not None:
        return session.run_cells(cells, config)
    return [execute_cell(cell, config) for cell in cells]


@contextlib.contextmanager
def open_session(
    workers: int = 0,
    telemetry: TelemetryRecorder | None = None,
    telemetry_dir: str | os.PathLike | None = None,
    faults: FaultPlan | None = None,
    adaptation: AdaptationConfig | None = None,
    resilience: ResilienceConfig | None = None,
    checkpoint=None,
    mp_context=None,
    max_restarts: int = 4,
) -> Iterator[ExecSession]:
    """Open an execution session: ambient state + engine, one handle.

    * ``workers=0`` (default): cells run serially in this process --
      behaviourally identical to the legacy context-manager stack.
    * ``workers>=1``: sweeps fan out over a worker pool; per-cell
      results are bit-identical to serial execution.
    * ``telemetry_dir``: create (or reuse ``telemetry``) a recorder and
      write a full telemetry directory there on exit; with workers,
      per-worker subdirectories are merged in automatically.
    * ``faults`` / ``adaptation`` / ``resilience`` / ``checkpoint``:
      plan-wide options, installed ambiently for legacy callees *and*
      carried as data into worker processes.
    """
    recorder = telemetry
    sink = None
    if telemetry_dir is not None:
        if recorder is None:
            recorder = TelemetryRecorder()
        from repro.telemetry.exporters import TelemetryDirectory

        sink = TelemetryDirectory(telemetry_dir)
        sink.attach(recorder)
    session = ExecSession(
        workers=workers,
        telemetry=recorder,
        telemetry_dir=telemetry_dir,
        faults=faults,
        adaptation=adaptation,
        resilience=resilience,
        checkpoint=checkpoint,
        mp_context=mp_context,
        max_restarts=max_restarts,
    )
    try:
        with contextlib.ExitStack() as stack:
            if recorder is not None:
                stack.enter_context(recording(recorder))
            if faults is not None:
                stack.enter_context(injecting(faults))
            if adaptation is not None:
                stack.enter_context(adapting(adaptation))
            if checkpoint is not None:
                stack.enter_context(checkpointing(checkpoint))
            stack.enter_context(executing(session))
            yield session
    finally:
        if sink is not None:
            sink.finalize(recorder)
        if session.telemetry_dir is not None and session.parallel:
            from repro.telemetry.merge import merge_worker_directories

            merge_worker_directories(session.telemetry_dir)
