"""The cell execution engine: one :class:`RunCell` -> one ``RunResult``.

This is the single code path every entry point funnels through --
``run_governed`` (now a shim), the suite drivers, the CLI's ``run``
subcommand and the parallel workers all call :func:`execute_cell`, so
a cell produces bit-identical results no matter which layer asked for
it or which process it ran in.

Resolution order for the cross-cutting options (telemetry, faults,
adaptation, resilience): per-cell data beats explicit arguments beats
the process-local ambient contexts.  Workers never install ambient
state; everything they need rides on the cell and the plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adaptation.context import current_adaptation_config
from repro.adaptation.manager import AdaptationConfig, AdaptationManager
from repro.checkpoint.context import current_checkpoint_session
from repro.core.controller import PowerManagementController, RunResult
from repro.core.resilience import ResilienceConfig
from repro.errors import PlanError
from repro.exec.plan import ExperimentConfig, RunCell
from repro.faults.context import current_fault_plan
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.multicore.controller import MulticoreController
from repro.multicore.machine import MulticoreConfig, MulticoreMachine
from repro.platform.machine import Machine
from repro.telemetry.recorder import TelemetryRecorder, current_recorder


@dataclass
class PreparedCell:
    """A cell resolved into live objects, ready to execute.

    The CLI uses the exposed handles (``governor``, ``injector``,
    ``adaptation``) to print post-run summaries; everything else just
    calls :meth:`execute`.
    """

    cell: RunCell
    config: ExperimentConfig
    machine: Machine | MulticoreMachine
    controller: PowerManagementController | MulticoreController
    governor: object
    injector: FaultInjector | None
    adaptation: AdaptationManager | None
    telemetry: TelemetryRecorder | None

    def execute(self, checkpointer=None) -> RunResult:
        """Run the cell to completion (optionally checkpointed)."""
        cell = self.cell
        config = self.config
        workload = cell.resolve_workload().scaled(config.scale)
        initial = (
            config.table.by_frequency(cell.initial_frequency_mhz)
            if cell.initial_frequency_mhz is not None
            else None
        )
        tel = self.telemetry
        if isinstance(self.controller, MulticoreController):
            if checkpointer is not None:
                raise PlanError(
                    f"cell {cell.label}: multicore cells (threads > 1) do "
                    "not support checkpointing; run them outside a "
                    "checkpointing() session"
                )
            if tel is not None and tel.enabled:
                with tel.span("run"):
                    out = self.controller.run(
                        workload,
                        threads=cell.threads,
                        initial_pstate=initial,
                        max_seconds=config.max_seconds,
                    )
            else:
                out = self.controller.run(
                    workload,
                    threads=cell.threads,
                    initial_pstate=initial,
                    max_seconds=config.max_seconds,
                )
            return out.result
        if tel is not None and tel.enabled:
            with tel.span("run"):
                return self.controller.run(
                    workload,
                    initial_pstate=initial,
                    schedule=cell.schedule,
                    max_seconds=config.max_seconds,
                    checkpointer=checkpointer,
                )
        return self.controller.run(
            workload,
            initial_pstate=initial,
            schedule=cell.schedule,
            max_seconds=config.max_seconds,
            checkpointer=checkpointer,
        )


def prepare_cell(
    cell: RunCell,
    config: ExperimentConfig,
    telemetry: TelemetryRecorder | None = None,
    fault_plan: FaultPlan | None = None,
    adaptation: AdaptationConfig | AdaptationManager | None = None,
    resilience: ResilienceConfig | None = None,
    use_ambient: bool = True,
) -> PreparedCell:
    """Resolve ``cell`` into live objects without running it.

    ``telemetry``/``fault_plan``/``adaptation``/``resilience`` are the
    plan- or caller-level defaults; per-cell values override them, and
    with ``use_ambient`` (the default in-process path) unset options
    fall back to the process-local contexts exactly as ``run_governed``
    always did.
    """
    tel = telemetry
    if tel is None and use_ambient:
        tel = current_recorder()
    plan = cell.fault_plan if cell.fault_plan is not None else fault_plan
    if plan is None and use_ambient:
        plan = current_fault_plan()
    adapt = cell.adaptation if cell.adaptation is not None else adaptation
    if adapt is None and use_ambient:
        adapt = current_adaptation_config()
    if adapt is not None and not isinstance(adapt, AdaptationManager):
        adapt = AdaptationManager(adapt)
    resil = cell.resilience if cell.resilience is not None else resilience
    injector = (
        FaultInjector(plan, telemetry=tel)
        if plan is not None and plan.active
        else None
    )
    if injector is not None and resil is None:
        # Injecting faults into an unhardened loop would just crash it.
        resil = ResilienceConfig()
    if cell.threads > 1:
        unsupported = [
            name
            for name, value in (
                ("fault injection", injector),
                ("adaptation", adapt),
                ("resilience", resil),
                ("constraint schedules", cell.schedule),
            )
            if value is not None
        ]
        if unsupported:
            raise PlanError(
                f"cell {cell.label}: multicore cells (threads > 1) do not "
                f"support {', '.join(unsupported)}; drop those options or "
                "run the cell single-threaded"
            )
        mc_machine = MulticoreMachine(MulticoreConfig(
            n_cores=cell.threads,
            machine=config.machine_config(cell.seed_offset),
        ))
        mc_governor = cell.governor.build(config.table, seed=config.seed)
        mc_controller = MulticoreController(
            mc_machine,
            mc_governor,
            keep_trace=config.keep_trace,
            telemetry=tel,
        )
        return PreparedCell(
            cell=cell,
            config=config,
            machine=mc_machine,
            controller=mc_controller,
            governor=mc_governor,
            injector=None,
            adaptation=None,
            telemetry=tel,
        )
    machine = Machine(config.machine_config(cell.seed_offset))
    governor = cell.governor.build(machine.config.table, seed=config.seed)
    controller = PowerManagementController(
        machine,
        governor,
        keep_trace=config.keep_trace,
        telemetry=tel,
        resilience=resil,
        injector=injector,
        adaptation=adapt,
    )
    return PreparedCell(
        cell=cell,
        config=config,
        machine=machine,
        controller=controller,
        governor=governor,
        injector=injector,
        adaptation=adapt,
        telemetry=tel,
    )


def execute_cell(
    cell: RunCell,
    config: ExperimentConfig,
    telemetry: TelemetryRecorder | None = None,
    fault_plan: FaultPlan | None = None,
    adaptation: AdaptationConfig | AdaptationManager | None = None,
    resilience: ResilienceConfig | None = None,
    use_ambient: bool = True,
) -> RunResult:
    """Execute one cell, honouring the ambient checkpoint session.

    This is the historical ``run_governed`` behaviour verbatim: when a
    checkpoint session is installed, completed slots replay from the
    archive, an interrupted slot resumes from its journal, and fresh
    slots run with periodic checkpointing -- slot indices line up
    because cells execute in deterministic order.
    """
    tel = telemetry
    if tel is None and use_ambient:
        tel = current_recorder()
    session = current_checkpoint_session() if use_ambient else None
    slot = None
    if session is not None:
        slot = session.claim()
        cached = session.archived(slot)
        if cached is not None:
            return cached
        resumed = session.resume_slot(slot, tel)
        if resumed is not None:
            session.finish_slot(slot, resumed, telemetry=tel)
            return resumed
    prepared = prepare_cell(
        cell,
        config,
        telemetry=tel,
        fault_plan=fault_plan,
        adaptation=adaptation,
        resilience=resilience,
        # Ambient telemetry is already resolved; pass the rest through.
        use_ambient=use_ambient,
    )
    checkpointer = (
        session.start_slot(
            slot, cell.workload_name, prepared.governor.name
        )
        if session is not None
        else None
    )
    result = prepared.execute(checkpointer)
    if session is not None:
        session.finish_slot(
            slot, result, telemetry=tel, checkpointer=checkpointer
        )
    return result
