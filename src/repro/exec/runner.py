"""Deterministic parallel execution of a :class:`RunPlan`.

:class:`ParallelRunner` fans a plan's cells out over a process pool
with work stealing: every worker pulls the next unclaimed cell index
from a shared queue, so a slow cell never blocks the rest of the sweep
behind a static partition.  Determinism is free by construction -- each
cell derives every RNG stream from its own data (experiment seed +
seed offset), so a cell computes the same bit-identical
:func:`~repro.checkpoint.run_result_digest` no matter which worker runs
it, in which order, alongside what.

Fault model: a worker that dies mid-cell (OOM-killed, SIGKILL, crashed
interpreter) is detected by the parent, its claimed-but-unfinished
cells are re-enqueued, and a replacement worker is started -- up to
``max_restarts`` times.  What happens when that budget is exhausted is
the ``on_exhausted`` policy: ``"raise"`` (the default) fails the plan,
while ``"degrade"`` keeps every completed result and returns a partial
list with ``None`` holes, flagging the runner ``degraded`` -- the same
shape as a :meth:`FleetController.run <repro.fleet.controller.
FleetController.run>` timeout, and what the campaign engine builds on.
A cell that raises an ordinary exception fails the whole plan, exactly
like serial execution.

Each worker reports over its own pipe, not a shared queue:
``Connection.send`` writes in the calling thread, so once a worker has
sent its claim for a cell the parent can read it even if the worker is
SIGKILLed on the very next instruction (a ``multiprocessing.Queue``
put, by contrast, sits in a feeder thread and dies with the process).
The one remaining hole -- a worker killed between dequeuing an index
and sending the claim -- is closed by the idle sweep: cells still
outstanding while workers sit idle are re-issued, which is safe because
cells are deterministic and duplicate completions are ignored.

Expensive derived artifacts (the trained power model) are primed in the
parent via :mod:`repro.exec.cache` so forked workers inherit them and
spawned workers receive them in their init payload: each model is
trained once per campaign, not once per cell.

Per-worker telemetry: when given a ``telemetry_root`` each worker
writes a full :class:`~repro.telemetry.exporters.TelemetryDirectory`
under ``<root>/worker-NN/``; :func:`repro.telemetry.merge.
merge_worker_directories` folds them into the parent directory
afterwards.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List

from repro.core.controller import RunResult
from repro.errors import ExperimentError
from repro.exec import cache
from repro.exec.core import execute_cell
from repro.exec.plan import RunPlan

#: Pipe-poll interval; liveness is checked between quiet polls.
_POLL_S = 0.1

#: Quiet seconds before outstanding-but-unclaimed cells are re-issued.
_REISSUE_IDLE_S = 2.0

#: Sentinel telling a worker to exit.
_STOP = None

#: Restart-budget-exhaustion policies.
_EXHAUSTION_POLICIES = ("raise", "degrade")


def default_mp_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform has it (workers inherit warm caches
    for free), spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _worker_main(worker_id: int, payload: dict, task_q, conn) -> None:
    """Worker loop: pull cell indices until the stop sentinel arrives.

    Runs in the child process.  No ambient state is consulted
    (``use_ambient=False``): the plan carries everything, which is what
    makes worker results bit-identical to serial execution.
    """
    cache.install_caches(payload["caches"])
    plan: RunPlan = payload["plan"]
    hook = payload["cell_hook"]
    recorder = None
    sink = None
    root = payload["telemetry_root"]
    if root:
        from repro.telemetry.exporters import TelemetryDirectory
        from repro.telemetry.recorder import TelemetryRecorder

        base = os.path.join(root, f"worker-{worker_id:02d}")
        path = base
        attempt = 1
        while os.path.exists(path):  # earlier plans in the same session
            path = f"{base}.{attempt}"
            attempt += 1
        recorder = TelemetryRecorder()
        sink = TelemetryDirectory(path)
        sink.attach(recorder)
    try:
        while True:
            index = task_q.get()
            if index is _STOP:
                break
            conn.send(("claim", index, None))
            try:
                if hook is not None:
                    hook(index)
                result = execute_cell(
                    plan.cells[index],
                    plan.config,
                    telemetry=recorder,
                    fault_plan=plan.fault_plan,
                    adaptation=plan.adaptation,
                    resilience=plan.resilience,
                    use_ambient=False,
                )
            except BaseException:  # noqa: BLE001 - shipped to the parent
                conn.send(("error", index, traceback.format_exc()))
                continue
            conn.send(("done", index, result))
    except (BrokenPipeError, OSError):  # parent is gone; die quietly
        pass
    finally:
        if sink is not None:
            sink.finalize(recorder)
        conn.close()


class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = ("process", "conn", "claimed", "eof")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.claimed: set = set()
        self.eof = False


class ParallelRunner:
    """Work-stealing process-pool executor for one :class:`RunPlan`."""

    def __init__(
        self,
        workers: int,
        mp_context: multiprocessing.context.BaseContext | str | None = None,
        max_restarts: int = 4,
        telemetry_root: str | os.PathLike | None = None,
        cell_hook: Callable[[int], None] | None = None,
        on_exhausted: str = "raise",
    ):
        if workers < 1:
            raise ExperimentError("ParallelRunner needs at least one worker")
        if on_exhausted not in _EXHAUSTION_POLICIES:
            raise ExperimentError(
                f"on_exhausted must be one of {_EXHAUSTION_POLICIES}, "
                f"got {on_exhausted!r}"
            )
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self.workers = workers
        self.context = mp_context or default_mp_context()
        self.max_restarts = max_restarts
        self.on_exhausted = on_exhausted
        self.telemetry_root = (
            os.fspath(telemetry_root) if telemetry_root is not None else None
        )
        self._cell_hook = cell_hook
        #: Replacement workers started after crashes (observable in tests).
        self.restarts = 0
        #: Cells re-enqueued because their worker died mid-run.
        self.rescheduled = 0
        #: Whether the last execute() returned a partial result
        #: (``on_exhausted="degrade"`` only).
        self.degraded = False
        #: Cell indices abandoned by the last execute() (their results
        #: are ``None`` in the returned list).
        self.lost: tuple[int, ...] = ()

    # -- internals ---------------------------------------------------------

    def _spawn(self, worker_id: int, payload: dict, task_q) -> _Worker:
        parent_conn, child_conn = self.context.Pipe(duplex=False)
        process = self.context.Process(
            target=_worker_main,
            args=(worker_id, payload, task_q, child_conn),
            daemon=True,
            name=f"repro-exec-{worker_id}",
        )
        process.start()
        child_conn.close()  # the worker holds the only write end now
        return _Worker(process, parent_conn)

    def execute(
        self, plan: RunPlan, checkpoint_session=None
    ) -> List[RunResult]:
        """Run every cell of ``plan``; results are in cell order.

        ``checkpoint_session`` (an
        :class:`~repro.checkpoint.session.ExperimentCheckpointSession`)
        enables campaign-level crash safety: slots are claimed in cell
        order in the parent, already-archived cells replay without
        executing, and every completed cell is durably archived on
        arrival.  Parallel mode checkpoints at cell granularity (no
        mid-run snapshots inside workers).

        With ``on_exhausted="degrade"`` a run that exhausts the worker
        restart budget returns what it has instead of raising: the list
        holds ``None`` for every abandoned cell, :attr:`degraded` is
        set, and :attr:`lost` names the abandoned indices.
        """
        self.degraded = False
        self.lost = ()
        results: Dict[int, RunResult] = {}
        slots: Dict[int, int] = {}
        pending: List[int] = []
        for index in range(len(plan.cells)):
            if checkpoint_session is not None:
                slot = checkpoint_session.claim()
                slots[index] = slot
                cached = checkpoint_session.archived(slot)
                if cached is not None:
                    results[index] = cached
                    continue
                resumed = checkpoint_session.resume_slot(slot, None)
                if resumed is not None:
                    checkpoint_session.finish_slot(slot, resumed)
                    results[index] = resumed
                    continue
            pending.append(index)

        if pending:
            self._execute_pending(plan, pending, results, slots,
                                  checkpoint_session)
        return [results.get(index) for index in range(len(plan.cells))]

    def _execute_pending(
        self,
        plan: RunPlan,
        pending: List[int],
        results: Dict[int, RunResult],
        slots: Dict[int, int],
        checkpoint_session,
    ) -> None:
        cache.prime_for_plan(plan)
        payload = {
            "plan": plan,
            "caches": cache.export_caches(),
            "telemetry_root": self.telemetry_root,
            "cell_hook": self._cell_hook,
        }
        task_q = self.context.Queue()
        for index in pending:
            task_q.put(index)
        count = min(self.workers, len(pending))
        workers: Dict[int, _Worker] = {
            wid: self._spawn(wid, payload, task_q) for wid in range(count)
        }
        next_id = count
        outstanding = set(pending)
        state = {
            "plan": plan, "results": results, "slots": slots,
            "outstanding": outstanding, "checkpoint": checkpoint_session,
            "progressed": False, "lost": set(),
        }
        idle_s = 0.0
        reissued = False
        try:
            while outstanding:
                conns = [w.conn for w in workers.values() if not w.eof]
                if conns:
                    ready = mp_connection.wait(conns, timeout=_POLL_S)
                else:
                    ready = []
                    time.sleep(_POLL_S)
                state["progressed"] = False
                by_conn = {w.conn: w for w in workers.values()}
                for conn in ready:
                    self._drain(by_conn[conn], state)
                if state["progressed"]:
                    idle_s = 0.0
                    reissued = False
                    continue
                next_id = self._reap_crashed(
                    workers, outstanding, payload, task_q, next_id, state,
                )
                if outstanding and not workers:
                    if self.on_exhausted == "degrade":
                        state["lost"] |= outstanding
                        outstanding.clear()
                        break
                    raise ExperimentError(
                        f"all workers exited with cells "
                        f"{sorted(outstanding)} outstanding"
                    )
                idle_s += _POLL_S
                if (
                    outstanding
                    and not reissued
                    and idle_s >= _REISSUE_IDLE_S
                ):
                    reissued = self._reissue_lost(
                        workers, outstanding, task_q
                    )
            if state["lost"]:
                self.degraded = True
                self.lost = tuple(sorted(state["lost"]))
            for worker in workers.values():
                if worker.process.is_alive():
                    task_q.put(_STOP)
            for worker in workers.values():
                worker.process.join(timeout=10)
        finally:
            for worker in workers.values():
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5)
                worker.conn.close()
            task_q.close()

    def _drain(self, worker: _Worker, state: dict) -> None:
        """Handle every message currently readable from one worker."""
        plan: RunPlan = state["plan"]
        outstanding = state["outstanding"]
        while True:
            try:
                if not worker.conn.poll():
                    return
                kind, index, body = worker.conn.recv()
            except (EOFError, OSError):
                worker.eof = True
                return
            state["progressed"] = True
            if kind == "claim":
                worker.claimed.add(index)
            elif kind == "done":
                worker.claimed.discard(index)
                if index in outstanding:
                    outstanding.discard(index)
                    state["results"][index] = body
                    if state["checkpoint"] is not None:
                        state["checkpoint"].finish_slot(
                            state["slots"][index], body
                        )
            else:  # "error": fail the plan, like serial execution
                raise ExperimentError(
                    f"cell {plan.cells[index].label} (index {index}) "
                    f"failed in a worker:\n{body}"
                )

    def _reap_crashed(
        self,
        workers: Dict[int, _Worker],
        outstanding,
        payload: dict,
        task_q,
        next_id: int,
        state: dict,
    ) -> int:
        """Re-enqueue cells of dead workers; start replacements."""
        for wid, worker in list(workers.items()):
            if worker.process.is_alive():
                continue
            self._drain(worker, state)  # anything buffered before death
            worker.conn.close()
            del workers[wid]
            lost = sorted(
                index for index in worker.claimed if index in outstanding
            )
            if not lost and worker.process.exitcode == 0:
                # Clean early exit (e.g. raced the sentinel): nothing lost.
                continue
            if self.restarts >= self.max_restarts:
                if self.on_exhausted == "degrade":
                    # Abandon this worker's in-flight cells but keep the
                    # rest of the pool draining the queue: a partial
                    # sweep beats losing every finished cell.
                    state["lost"].update(lost)
                    for index in lost:
                        outstanding.discard(index)
                    continue
                raise ExperimentError(
                    f"worker {wid} died (exit {worker.process.exitcode}) "
                    f"with cells {lost} in flight and the restart budget "
                    f"({self.max_restarts}) is exhausted"
                )
            for index in lost:
                task_q.put(index)
            self.rescheduled += len(lost)
            self.restarts += 1
            workers[next_id] = self._spawn(next_id, payload, task_q)
            next_id += 1
        return next_id

    def _reissue_lost(self, workers, outstanding, task_q) -> bool:
        """Re-issue outstanding cells no live worker claims.

        Covers the sliver a claim cannot: a worker killed after
        dequeuing an index but before its (synchronous) claim send.
        Only fires when some worker sits idle -- an idle worker plus a
        quiet pipe means those cells are not in the queue and not being
        computed.  Duplicate execution is safe: cells are deterministic
        and late duplicate completions are ignored.
        """
        claimed_live = set()
        idle_worker = False
        for worker in workers.values():
            active = {i for i in worker.claimed if i in outstanding}
            claimed_live |= active
            if not active:
                idle_worker = True
        missing = sorted(outstanding - claimed_live)
        if not missing or not idle_worker:
            return False
        for index in missing:
            task_q.put(index)
        self.rescheduled += len(missing)
        return True
