"""The assembled power-measurement rig: 10 ms power samples + GPIO sync.

:class:`PowerMeter` integrates instantaneous power fed by the machine
into fixed-interval (default 10 ms) samples, passes each through the
sense-resistor and ADC models, and timestamps GPIO markers used to
delimit benchmark runs -- mirroring the paper's measurement methodology
(power sampled at 10 ms; energy computed "by summing energy values
computed from each 10 ms power sample", §IV-B2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.errors import MeasurementError
from repro.measurement.adc import ADCModel
from repro.measurement.sense import SenseResistorChannel


@dataclass(frozen=True)
class PowerSample:
    """One aggregated measurement interval.

    ``time_s`` is the interval's *end* timestamp; ``watts`` the measured
    (noisy, quantized) mean power over the interval; ``true_watts`` the
    simulator's ground truth, retained for model-error analysis only --
    the paper's software never sees it.
    """

    time_s: float
    watts: float
    true_watts: float
    #: Actual span of the sample -- equal to the meter interval except
    #: for a final partial sample closed by :meth:`PowerMeter.flush`.
    duration_s: float


@dataclass(frozen=True)
class SyncMarker:
    """A GPIO edge used to synchronize workload execution with the trace."""

    time_s: float
    label: str


class PowerMeter:
    """Integrating power meter with a fixed sampling interval.

    The machine calls :meth:`accumulate` with (power, duration) segments;
    the meter closes a sample every ``interval_s`` of accumulated time.
    Segments may straddle sample boundaries; they are split exactly.
    """

    def __init__(
        self,
        interval_s: float = 0.010,
        sense: SenseResistorChannel | None = None,
        adc: ADCModel | None = None,
        supply_voltage_v: float = 1.34,
        rng: np.random.Generator | None = None,
    ):
        if interval_s <= 0:
            raise MeasurementError("sampling interval must be positive")
        self.interval_s = interval_s
        rng = rng if rng is not None else np.random.default_rng()
        self._sense = sense if sense is not None else SenseResistorChannel(rng=rng)
        self._adc = adc if adc is not None else ADCModel(rng=rng)
        self._supply_v = supply_voltage_v
        self._samples: List[PowerSample] = []
        self._markers: List[SyncMarker] = []
        self._time_s = 0.0
        self._bucket_energy_j = 0.0
        self._bucket_time_s = 0.0

    # -- feeding ---------------------------------------------------------------

    def accumulate(self, power_watts: float, duration_s: float) -> None:
        """Integrate ``power_watts`` held for ``duration_s`` seconds."""
        if duration_s < 0:
            raise MeasurementError("duration must be non-negative")
        if power_watts < 0:
            raise MeasurementError("power must be non-negative")
        remaining = duration_s
        while remaining > 0:
            room = self.interval_s - self._bucket_time_s
            chunk = min(room, remaining)
            self._bucket_energy_j += power_watts * chunk
            self._bucket_time_s += chunk
            self._time_s += chunk
            remaining -= chunk
            if self._bucket_time_s >= self.interval_s - 1e-12:
                self._close_sample()

    def mark(self, label: str) -> SyncMarker:
        """Record a GPIO sync edge at the current time."""
        marker = SyncMarker(self._time_s, label)
        self._markers.append(marker)
        return marker

    def flush(self) -> None:
        """Close a partial final sample (end of run)."""
        if self._bucket_time_s > 1e-12:
            self._close_sample()

    def _close_sample(self) -> None:
        true_mean = self._bucket_energy_j / self._bucket_time_s
        sensed = self._sense.measure_power(true_mean, self._supply_v)
        measured = self._adc.convert(sensed)
        self._samples.append(
            PowerSample(self._time_s, measured, true_mean, self._bucket_time_s)
        )
        self._bucket_energy_j = 0.0
        self._bucket_time_s = 0.0

    # -- reading ---------------------------------------------------------------

    @property
    def samples(self) -> tuple[PowerSample, ...]:
        """All closed samples so far."""
        return tuple(self._samples)

    @property
    def sample_count(self) -> int:
        """Number of closed samples (O(1); ``samples`` rebuilds a tuple)."""
        return len(self._samples)

    @property
    def last_sample(self) -> PowerSample:
        """The most recently closed sample (raises when none exist)."""
        if not self._samples:
            raise MeasurementError("no samples closed yet")
        return self._samples[-1]

    @property
    def markers(self) -> tuple[SyncMarker, ...]:
        """All GPIO markers so far."""
        return tuple(self._markers)

    @property
    def now_s(self) -> float:
        """Accumulated measurement time."""
        return self._time_s

    def samples_between(self, start_label: str, end_label: str) -> tuple[PowerSample, ...]:
        """Samples whose timestamps fall between two GPIO markers.

        This is how the paper attributes power to a benchmark run: GPIO
        edges at run start/end bracket the relevant samples.
        """
        start = self._marker_time(start_label)
        end = self._marker_time(end_label)
        if end < start:
            raise MeasurementError(
                f"marker {end_label!r} precedes {start_label!r}"
            )
        return tuple(s for s in self._samples if start < s.time_s <= end + 1e-12)

    def _marker_time(self, label: str) -> float:
        for marker in self._markers:
            if marker.label == label:
                return marker.time_s
        raise MeasurementError(f"no GPIO marker labelled {label!r}")

    def energy_j(self, samples: Iterable[PowerSample] | None = None) -> float:
        """Measured energy: sum of sample power x duration (paper §IV-B2).

        All samples span the 10 ms interval except a final partial one,
        whose true duration is used so short runs are not inflated.
        """
        use = self._samples if samples is None else list(samples)
        return sum(s.watts * s.duration_s for s in use)

    def moving_average(self, window: int) -> list[tuple[float, float]]:
        """Moving average of measured power over ``window`` samples.

        The paper evaluates PM's limit adherence on a 100 ms moving
        window of ten 10 ms samples; this helper produces that series as
        (end_time, average_watts) pairs.
        """
        if window <= 0:
            raise MeasurementError("window must be positive")
        out: list[tuple[float, float]] = []
        acc = 0.0
        vals = self._samples
        for i, sample in enumerate(vals):
            acc += sample.watts
            if i >= window:
                acc -= vals[i - window].watts
            if i >= window - 1:
                out.append((sample.time_s, acc / window))
        return out
