"""Simulated processor power-measurement rig.

The paper measures processor power with high-precision sense resistors
between the voltage regulators and the CPU, amplified/filtered/digitized
by a National Instruments SCXI-1125 + PCI-6052E chain, aggregated to
10 ms samples and synchronized to workload execution by a GPIO marker
(paper §III-B, Fig. 4).

This subpackage reproduces the chain so experiments see *measured* power
(noisy, quantized) rather than the simulator's exact ground truth -- the
0.5 W guardband and moving-average windows in the paper's PM solution
exist precisely because measured reality is noisy.
"""

from repro.measurement.sense import SenseResistorChannel
from repro.measurement.adc import ADCModel
from repro.measurement.power_meter import PowerMeter, PowerSample, SyncMarker

__all__ = [
    "SenseResistorChannel",
    "ADCModel",
    "PowerMeter",
    "PowerSample",
    "SyncMarker",
]
