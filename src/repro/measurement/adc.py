"""DAQ analog-to-digital conversion model.

The PCI-6052E in the paper's rig is a 16-bit DAQ with a peak rate of
333 kS/s -- "more than adequate for the 10 ms sampling intervals in this
study" (§III-B).  We model the two effects that survive 10 ms averaging:
quantization to the converter's step size and a small residual white
noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError


@dataclass
class ADCModel:
    """Quantizing, noisy analog-to-digital converter.

    Parameters
    ----------
    full_scale_watts:
        Input range mapped onto the converter (the rig is configured so
        peak processor power sits comfortably inside the range).
    bits:
        Converter resolution.
    noise_floor_watts:
        RMS residual noise after the 10 ms average (amplifier +
        reference drift), in watts.
    """

    full_scale_watts: float = 32.0
    bits: int = 16
    noise_floor_watts: float = 0.04
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if self.full_scale_watts <= 0:
            raise MeasurementError("full scale must be positive")
        if not 4 <= self.bits <= 24:
            raise MeasurementError("implausible ADC resolution")
        if self.noise_floor_watts < 0:
            raise MeasurementError("noise floor must be non-negative")
        self._rng = self.rng if self.rng is not None else np.random.default_rng()

    @property
    def lsb_watts(self) -> float:
        """Quantization step in watts."""
        return self.full_scale_watts / (1 << self.bits)

    def convert(self, value_watts: float) -> float:
        """Digitize one averaged power reading.

        Values are clipped to the converter range (a saturated reading,
        not an exception -- exactly what the real DAQ would report).
        """
        noisy = value_watts + self._rng.normal(0.0, self.noise_floor_watts)
        clipped = min(max(noisy, 0.0), self.full_scale_watts)
        return round(clipped / self.lsb_watts) * self.lsb_watts

    @property
    def peak_sample_rate_hz(self) -> float:
        """Documentation-parity constant: the 6052E's 333 kS/s peak rate."""
        return 333_000.0
