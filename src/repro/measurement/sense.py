"""Sense-resistor / instrumentation-amplifier front end.

Power is measured by inserting a small precision resistor in the supply
path: the voltage drop across it gives the current, and current times
supply voltage gives power.  The front end contributes two error terms we
model: resistor tolerance (a fixed gain error per channel, drawn once)
and amplifier noise (white, per reading).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError


@dataclass
class SenseResistorChannel:
    """One sense-resistor channel between a voltage regulator and the CPU.

    Parameters
    ----------
    resistance_ohm:
        Nominal sense resistance (a few milliohms so the drop is small).
    tolerance:
        Manufacturing tolerance; the realized resistance is drawn
        uniformly within +/- tolerance once at construction.
    amplifier_noise_v:
        RMS noise of the amplifier chain, referred to the sense voltage.
    rng:
        Random generator (deterministic experiments pass a seeded one).
    """

    resistance_ohm: float = 0.002
    tolerance: float = 0.001
    amplifier_noise_v: float = 2e-6
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0:
            raise MeasurementError("sense resistance must be positive")
        if not 0 <= self.tolerance < 0.1:
            raise MeasurementError("tolerance must be in [0, 0.1)")
        self._rng = self.rng if self.rng is not None else np.random.default_rng()
        # Fixed per-channel gain error from resistor tolerance.
        self._realized_ohm = self.resistance_ohm * (
            1.0 + self._rng.uniform(-self.tolerance, self.tolerance)
        )

    @property
    def realized_resistance_ohm(self) -> float:
        """The actual (toleranced) resistance of this channel."""
        return self._realized_ohm

    def sense_voltage(self, true_current_a: float) -> float:
        """Voltage across the sense resistor for a given true current."""
        if true_current_a < 0:
            raise MeasurementError("current through the CPU cannot be negative")
        noise = self._rng.normal(0.0, self.amplifier_noise_v)
        return true_current_a * self._realized_ohm + noise

    def measure_power(self, true_power_w: float, supply_voltage_v: float) -> float:
        """Measured power for a true power draw at a supply voltage.

        Converts true power to current, passes it through the sense
        chain, and reconstructs power the way the DAQ software does
        (sense voltage / *nominal* resistance x supply voltage) -- so the
        resistor tolerance becomes a gain error, as on the real rig.
        """
        if supply_voltage_v <= 0:
            raise MeasurementError("supply voltage must be positive")
        true_current = true_power_w / supply_voltage_v
        v_sense = self.sense_voltage(true_current)
        measured_current = v_sense / self.resistance_ohm
        return measured_current * supply_voltage_v
