"""Fleet run loop: N machines, one shared power budget.

Each node runs its own PerformanceMaximizer against a *per-node* limit;
the fleet controller re-divides the shared budget every
``reallocation_period_s`` using an allocation policy and delivers the
new limits exactly the way the paper's prototype receives them at
runtime (the SIGUSR path -> :meth:`PerformanceMaximizer.set_power_limit`).

Node demand is estimated from the node's own counters: the DPC sample
projected to full speed through Eq. 4 and priced with the power model --
so the coordinator needs nothing the paper's infrastructure does not
already provide.

Nodes that finish their workload power off (demand and draw drop to
zero) and their budget share shifts to the stragglers -- the
power-shifting benefit the paper's situation (i) describes.

With a :class:`~repro.faults.injector.FaultInjector` attached the fleet
also survives node crashes: a crashed node goes dark (zero draw, zero
demand), the coordinator detects it and immediately redistributes its
budget share, and -- when the plan configures a restart delay -- the
node later rejoins and budget is redistributed again.  A node that
never restarts is treated like a finished one so the run still
terminates.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.governors.performance_maximizer import PerformanceMaximizer
from repro.core.models.power import LinearPowerModel
from repro.core.models.projection import project_dpc
from repro.core.sampling import CounterSampler
from repro.errors import ExperimentError
from repro.fleet.budget import BudgetAllocator, MIN_GRANT_W, NodeDemand
from repro.measurement.power_meter import PowerMeter
from repro.platform.machine import Machine, MachineConfig
from repro.telemetry.bus import (
    BudgetInfeasible,
    BudgetReallocated,
    FaultRecovered,
    NodeCrashed,
    NodeFinished,
    NodeRestarted,
)
from repro.telemetry.recorder import TelemetryRecorder
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.faults.injector import FaultInjector


@dataclass(frozen=True)
class NodeResult:
    """Per-node outcome of a fleet run."""

    name: str
    workload: str
    duration_s: float
    instructions: float
    energy_j: float
    final_limit_w: float
    #: Injected crashes this node suffered during the run.
    crashes: int = 0


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet run."""

    total_budget_w: float
    nodes: Mapping[str, NodeResult]
    #: (time, total measured fleet power) per tick.
    power_series: tuple[tuple[float, float], ...]
    makespan_s: float
    #: True when the run ended without completing its mission: the time
    #: budget expired (lock-step fleet) or the coordinator spent part of
    #: the run in partition-degraded mode (hierarchical fleet).
    degraded: bool = False
    #: Ticks spent operating degraded: unreachable subtrees frozen at
    #: last-granted caps minus the safety margin.
    degraded_ticks: int = 0

    @property
    def total_instructions(self) -> float:
        return sum(n.instructions for n in self.nodes.values())

    @property
    def mean_fleet_power_w(self) -> float:
        if not self.power_series:
            return 0.0
        return sum(w for _, w in self.power_series) / len(self.power_series)

    def budget_violation_fraction(self, window: int = 10) -> float:
        """Fraction of 100 ms windows the *fleet* power exceeds budget."""
        values = [w for _, w in self.power_series]
        if len(values) < window:
            return 0.0
        over = 0
        count = 0
        acc = sum(values[:window])
        for i in range(window, len(values) + 1):
            count += 1
            if acc / window > self.total_budget_w + 1e-9:
                over += 1
            if i < len(values):
                acc += values[i] - values[i - window]
        return over / count


class _Node:
    """One machine + PM governor + instrumentation."""

    def __init__(self, name, workload, model, limit_w, seed):
        self.name = name
        self.machine = Machine(MachineConfig(seed=seed))
        self.meter = PowerMeter(
            interval_s=self.machine.config.tick_s,
            rng=np.random.default_rng(seed + 5000),
        )
        self.machine.add_power_sink(self.meter.accumulate)
        self.governor = PerformanceMaximizer(
            self.machine.config.table, model, limit_w
        )
        self.machine.load(workload)
        self.sampler = CounterSampler(self.machine.pmu, self.governor.events)
        self.sampler.start()
        self.workload_name = workload.name
        self.instructions = 0.0
        self.finish_time_s: float | None = None
        self.last_dpc = 0.0
        self.crashed = False
        self.crashes = 0
        self.crashed_at_s: float | None = None
        self.restart_at_s: float | None = None

    @property
    def finished(self) -> bool:
        return self.machine.finished

    @property
    def runnable(self) -> bool:
        """Still has work to do and will (eventually) be able to do it."""
        if self.finished:
            return False
        # A crash with no scheduled restart is permanent: the node is
        # dead, and waiting for it would hang the fleet loop.
        return not (self.crashed and self.restart_at_s is None)

    def crash(self, now_s: float, restart_delay_s: float | None) -> None:
        """Take the node down (zero draw/demand until restart, if ever)."""
        self.crashed = True
        self.crashes += 1
        self.crashed_at_s = now_s
        self.restart_at_s = (
            now_s + restart_delay_s if restart_delay_s is not None else None
        )

    def maybe_restart(self, now_s: float) -> bool:
        """Bring the node back once its restart time has arrived."""
        if not self.crashed or self.restart_at_s is None:
            return False
        if now_s < self.restart_at_s - 1e-12:
            return False
        self.crashed = False
        self.restart_at_s = None
        return True

    #: What a node checkpoint captures.  Crash bookkeeping (``crashed``,
    #: ``crashes``, ``restart_at_s``) is deliberately excluded: a
    #: restore must not erase the record of the crash it recovers from.
    _SNAPSHOT_FIELDS = (
        "machine",
        "meter",
        "sampler",
        "governor",
        "instructions",
        "last_dpc",
        "finish_time_s",
    )

    def snapshot(self) -> bytes:
        """Serialize the node's execution state (one pickle graph).

        Machine, meter, sampler, and governor are pickled *together* so
        shared references (the machine's power sink is the meter's
        bound ``accumulate``; the sampler reads the machine's PMU)
        survive intact, RNG streams included.
        """
        state = {f: getattr(self, f) for f in self._SNAPSHOT_FIELDS}
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    def restore(self, blob: bytes) -> None:
        """Roll execution state back to a :meth:`snapshot`.

        Work done since the snapshot is lost -- that is the realistic
        crash-restart semantics -- and the RNG streams continue from
        the *saved* state, so the replayed stretch does not re-suffer
        the identical fault sequence that killed the node.
        """
        for field_name, value in pickle.loads(blob).items():
            setattr(self, field_name, value)

    def tick(self) -> float:
        """Advance one tick; returns measured power for the tick."""
        record = self.machine.step()
        sample = self.sampler.sample(record.duration_s)
        self.instructions += record.instructions
        self.last_dpc = sample.dpc
        target = self.governor.decide(sample, self.machine.current_pstate)
        if target != self.machine.current_pstate:
            self.machine.speedstep.set_pstate(target)
        if self.finished and self.finish_time_s is None:
            self.finish_time_s = self.machine.now_s
        if self.meter.samples:
            return self.meter.samples[-1].watts
        return record.mean_power_w

    def demand(
        self, model: LinearPowerModel, headroom_w: float = 0.5
    ) -> NodeDemand:
        """Estimated full-speed power need from the node's own counters.

        ``headroom_w`` is added on top of the Eq. 4/Eq. 2 estimate as a
        burst allowance (the estimate is a projection of the *last*
        interval; workloads like galgel overshoot it).
        """
        if self.finished or self.crashed:
            return NodeDemand(self.name, 0.0, active=False)
        table = self.machine.config.table
        current = self.machine.current_pstate
        dpc_at_top = project_dpc(
            self.last_dpc, current.frequency_mhz, table.fastest.frequency_mhz
        )
        estimate = model.estimate(table.fastest, dpc_at_top)
        return NodeDemand(self.name, estimate + headroom_w, active=True)


class FleetController:
    """Runs N (workload, node) pairs against one shared power budget."""

    def __init__(
        self,
        workloads: Mapping[str, Workload],
        model: LinearPowerModel,
        total_budget_w: float,
        allocator: BudgetAllocator,
        reallocation_period_s: float = 0.1,
        seed: int = 0,
        telemetry: TelemetryRecorder | None = None,
        injector: "FaultInjector | None" = None,
        checkpoint_interval_s: float | None = None,
        demand_headroom_w: float = 0.5,
    ):
        if total_budget_w <= 0:
            raise ExperimentError("fleet budget must be positive")
        if not workloads:
            raise ExperimentError("fleet needs at least one node")
        if checkpoint_interval_s is not None and checkpoint_interval_s <= 0:
            raise ExperimentError(
                "fleet checkpoint interval must be positive"
            )
        if demand_headroom_w < 0:
            raise ExperimentError("demand headroom must be non-negative")
        self._model = model
        self._budget = total_budget_w
        self._allocator = allocator
        self._period = reallocation_period_s
        self._telemetry = telemetry
        self._injector = injector
        self._checkpoint_interval_s = checkpoint_interval_s
        self._headroom_w = demand_headroom_w
        #: Crashes whose budget share has not yet been re-divided; the
        #: reallocation that actually moves the budget reports them.
        self._pending_redistributions = 0
        #: Latest per-node snapshot (in-memory; populated during run()).
        self._snapshots: dict[str, bytes] = {}
        self._nodes = [
            _Node(name, workload, model, total_budget_w / len(workloads),
                  seed + 17 * i)
            for i, (name, workload) in enumerate(sorted(workloads.items()))
        ]

    def _step_node_faults(self, now: float, instrumented: bool) -> bool:
        """Restart due nodes, crash unlucky ones; True forces reallocation.

        Detection is the coordinator's job: a crashed node goes dark and
        its budget share must move to the survivors *now*, not at the
        next scheduled reallocation.
        """
        injector = self._injector
        tel = self._telemetry
        changed = False
        for node in self._nodes:
            if node.maybe_restart(now):
                blob = self._snapshots.get(node.name)
                if blob is not None:
                    # Restart from the last checkpoint: work since then
                    # is redone, and the node's RNG streams continue
                    # from the saved state instead of replaying the
                    # exact fault sequence that took it down.
                    node.restore(blob)
                changed = True
                if instrumented:
                    downtime = now - (node.crashed_at_s or now)
                    tel.emit(
                        NodeRestarted(
                            time_s=now, node=node.name, downtime_s=downtime
                        )
                    )
                    tel.emit(
                        FaultRecovered(
                            time_s=now, subsystem="fleet", action="restart"
                        )
                    )
                continue
            if node.finished or node.crashed:
                continue
            if injector.node_crashes(node.name, now):
                node.crash(now, injector.node_restart_delay_s)
                changed = True
                # The dead node's share has not moved anywhere yet; the
                # forced reallocation this triggers emits the
                # ``redistribute`` recovery once the budget actually
                # shifts to the survivors.
                self._pending_redistributions += 1
                if instrumented:
                    tel.emit(
                        NodeCrashed(
                            time_s=now,
                            node=node.name,
                            restart_at_s=node.restart_at_s,
                        )
                    )
        return changed

    def run(self, max_seconds: float = 600.0) -> FleetResult:
        """Run until every node finishes; returns fleet-level results.

        A run that exhausts ``max_seconds`` is not discarded: the loop
        stops and the partial result comes back flagged ``degraded`` --
        unfinished nodes report the work they *did* complete.
        """
        power_series: list[tuple[float, float]] = []
        now = 0.0
        next_reallocation = 0.0
        tick = self._nodes[0].machine.config.tick_s
        tel = self._telemetry
        instrumented = tel is not None and tel.enabled
        injector = self._injector
        injecting = injector is not None and injector.active
        if injecting:
            injector.bind_telemetry(tel)
        force_reallocation = False
        interval = self._checkpoint_interval_s
        self._snapshots = {}
        next_checkpoint = 0.0
        timed_out = False
        if instrumented:
            reallocations_counter = tel.metrics.counter("fleet.reallocations")
            active_gauge = tel.metrics.gauge("fleet.active_nodes")

        while any(n.runnable for n in self._nodes):
            if now > max_seconds:
                timed_out = True
                break

            if interval is not None and now >= next_checkpoint - 1e-12:
                # Snapshot before faults fire this tick, so a crash at
                # a checkpoint instant restores the pre-crash state.
                for node in self._nodes:
                    if not node.crashed and not node.finished:
                        self._snapshots[node.name] = node.snapshot()
                next_checkpoint += interval

            if injecting:
                force_reallocation |= self._step_node_faults(now, instrumented)

            if force_reallocation or now >= next_reallocation - 1e-12:
                demands = [
                    n.demand(self._model, self._headroom_w)
                    for n in self._nodes
                ]
                grants = self._allocator.allocate(self._budget, demands)
                for node in self._nodes:
                    grant = grants[node.name]
                    if grant > 0:
                        node.governor.set_power_limit(grant)
                if now >= next_reallocation - 1e-12:
                    next_reallocation += self._period
                force_reallocation = False
                redistributed = self._pending_redistributions
                self._pending_redistributions = 0
                if instrumented:
                    active = sum(1 for d in demands if d.active)
                    reallocations_counter.inc()
                    active_gauge.set(active)
                    tel.emit(
                        BudgetReallocated(
                            time_s=now,
                            budget_w=self._budget,
                            demands_w={d.name: d.demand_w for d in demands},
                            grants_w=dict(grants),
                            active_nodes=active,
                            headroom_w=self._headroom_w,
                        )
                    )
                    # Crashed nodes' shares actually moved in *this*
                    # allocation round: report the redistribution now.
                    for _ in range(redistributed):
                        tel.emit(
                            FaultRecovered(
                                time_s=now,
                                subsystem="fleet",
                                action="redistribute",
                            )
                        )
                    if getattr(grants, "infeasible", False):
                        tel.emit(
                            BudgetInfeasible(
                                time_s=now,
                                subtree="fleet",
                                cap_w=self._budget,
                                floor_w=MIN_GRANT_W,
                                live_nodes=active,
                            )
                        )

            total = 0.0
            for node in self._nodes:
                if not node.finished and not node.crashed:
                    total += node.tick()
                    if node.finished and instrumented:
                        finish = node.finish_time_s if (
                            node.finish_time_s is not None
                        ) else now + tick
                        tel.emit(
                            NodeFinished(
                                time_s=finish,
                                node=node.name,
                                workload=node.workload_name,
                                duration_s=finish,
                            )
                        )
            now += tick
            power_series.append((now, total))

        nodes = {
            n.name: NodeResult(
                name=n.name,
                workload=n.workload_name,
                duration_s=n.finish_time_s or now,
                instructions=n.instructions,
                energy_j=n.meter.energy_j(),
                final_limit_w=n.governor.power_limit_w,
                crashes=n.crashes,
            )
            for n in self._nodes
        }
        return FleetResult(
            total_budget_w=self._budget,
            nodes=nodes,
            power_series=tuple(power_series),
            makespan_s=now,
            degraded=timed_out,
        )
