"""Array-backed node state for datacenter-scale fleets.

The lock-step :class:`~repro.fleet.controller.FleetController` keeps a
Python object per node -- fine for four machines, hopeless for ten
thousand.  :class:`NodeStore` keeps the whole fleet's state as a handful
of NumPy arrays indexed by node id, so every per-tick operation (demand
updates, churn sampling, draw accounting, per-chassis aggregation) is
one vectorized pass instead of ten thousand attribute lookups.

The store is deliberately dumb: it holds state and provides aggregation
helpers; *policy* (stale-demand decay, outage handling, allocation)
lives in :mod:`repro.fleet.hierarchy` and :mod:`repro.fleet.cluster`.

Node lifecycle, as the **coordinator** sees it (the store tracks the
coordinator's view -- every decision must survive on information the
coordinator can actually lose):

``LIVE``
    reporting demand normally.
``STALE``
    stopped reporting; its last demand is held, then decayed -- a stale
    estimate is trusted less the older it gets.
``DARK``
    stale past the trust horizon; accounted at the floor only.
``CRASHED``
    confirmed down (zero draw, zero demand) until its restart arrives.
``FINISHED``
    retired for good (workload complete / scale-in); never returns.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Mapping

import numpy as np

from repro.fleet.hierarchy import Topology


class NodeState(IntEnum):
    """Coordinator-side node lifecycle states."""

    LIVE = 0
    STALE = 1
    DARK = 2
    CRASHED = 3
    FINISHED = 4


class NodeStore:
    """Columnar per-node state for one fleet.

    All arrays are indexed by node id (0..n-1); node ids map onto the
    chassis/rack tree through :attr:`topology`.
    """

    #: Arrays captured by :meth:`state_dict` (checkpoint payload).
    _STATE_ARRAYS = (
        "true_demand_w",
        "reported_demand_w",
        "grant_w",
        "applied_w",
        "draw_w",
        "state",
        "last_report_s",
        "stale_until_s",
        "restart_at_s",
        "crashes",
        "energy_j",
        "up_ticks",
    )

    def __init__(self, topology: Topology, floor_w: float):
        n = topology.n_nodes
        self.topology = topology
        self.floor_w = float(floor_w)
        #: What the node would draw at full speed right now (ground truth).
        self.true_demand_w = np.zeros(n)
        #: The coordinator's last-known demand estimate per node.
        self.reported_demand_w = np.zeros(n)
        #: Coordinator-intended power cap per node.
        self.grant_w = np.zeros(n)
        #: Node-enforced cap (grant raises land one tick late; cuts are
        #: immediate -- the cap must never be generous in transition).
        self.applied_w = np.zeros(n)
        #: Measured draw for the current tick.
        self.draw_w = np.zeros(n)
        self.state = np.full(n, int(NodeState.LIVE), dtype=np.int8)
        #: Simulated time of the node's last demand report.
        self.last_report_s = np.zeros(n)
        #: Until when the node's outbound telemetry is lost (sim s).
        self.stale_until_s = np.zeros(n)
        #: Scheduled restart time for crashed nodes (inf = none yet).
        self.restart_at_s = np.full(n, np.inf)
        self.crashes = np.zeros(n, dtype=np.int64)
        #: Accumulated energy actually drawn (J).
        self.energy_j = np.zeros(n)
        #: Ticks the node spent running (for per-node uptime).
        self.up_ticks = np.zeros(n, dtype=np.int64)

    # -- masks -----------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.topology.n_nodes

    def running_mask(self) -> np.ndarray:
        """Nodes that are executing work (and therefore drawing power)."""
        return self.state <= int(NodeState.DARK)

    def accountable_mask(self) -> np.ndarray:
        """Nodes the budget tree must reserve power for."""
        return self.state <= int(NodeState.DARK)

    def live_mask(self) -> np.ndarray:
        """Nodes reporting normally."""
        return self.state == int(NodeState.LIVE)

    def counts(self) -> Mapping[str, int]:
        """Node count per lifecycle state (for reports/telemetry)."""
        return {
            state.name.lower(): int((self.state == int(state)).sum())
            for state in NodeState
        }

    # -- aggregation -----------------------------------------------------------

    def per_chassis(self, values: np.ndarray) -> np.ndarray:
        """Sum a per-node array up to chassis level."""
        return np.bincount(
            self.topology.chassis_of_node,
            weights=values,
            minlength=self.topology.n_chassis,
        )

    def per_rack_from_chassis(self, values: np.ndarray) -> np.ndarray:
        """Sum a per-chassis array up to rack level."""
        return np.bincount(
            self.topology.rack_of_chassis,
            weights=values,
            minlength=self.topology.racks,
        )

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Copy of every mutable array (checkpoint payload)."""
        return {name: getattr(self, name).copy()
                for name in self._STATE_ARRAYS}

    def load_state(self, state: Mapping[str, np.ndarray]) -> None:
        """Restore arrays captured by :meth:`state_dict`."""
        for name in self._STATE_ARRAYS:
            getattr(self, name)[:] = state[name]
