"""Hierarchical budget tree: cluster -> rack -> chassis -> node.

The paper's power-shifting situation (i) scales past a handful of
machines only as a *tree*: a cluster cap divided among racks, each rack
cap among its chassis, each chassis cap among its nodes -- exactly how
RAPL-style capping stacks deploy.  Each interior level runs a
:class:`~repro.fleet.budget.BudgetAllocator` over its children (a child
is a rack or chassis whose demand is the bottom-up aggregate of its
subtree and whose floor is floor-per-node times live nodes); the leaf
level is a vectorized water-fill over the chassis's node slice.

Two invariants hold at every level, checkable at any time with
:meth:`BudgetTree.check_invariants`:

1. the grants of every subtree's children sum to at most the subtree's
   cap (so the root never overruns the cluster budget);
2. every live child receives at least its floor, or the level's grants
   were clamped proportionally and the infeasibility surfaced (the
   oversubscription guard clamps rather than raises).

Reallocation is **event-driven**: callers pass the set of dirty
subtrees (touched by crash / finish / restart / demand-delta / outage
events) and only those levels re-run their allocator; an untouched
subtree keeps its caps bit-for-bit.  A whole-rack outage therefore
shifts the rack's share to its sibling racks in a single cluster-level
event instead of waiting for a polling sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.fleet.budget import BudgetAllocator, MIN_GRANT_W, NodeDemand

#: Cap changes below this are noise, not events (W).
_CAP_EPSILON_W = 1e-6


@dataclass(frozen=True)
class Topology:
    """A regular cluster -> rack -> chassis -> node shape.

    ``n_nodes`` may be less than the tree's capacity (the last chassis
    is then partially filled and trailing chassis may be empty); node
    ``i`` lives in chassis ``i // nodes_per_chassis``.
    """

    racks: int
    chassis_per_rack: int
    nodes_per_chassis: int
    n_nodes: int = 0  # 0 = full capacity

    def __post_init__(self) -> None:
        if min(self.racks, self.chassis_per_rack,
               self.nodes_per_chassis) < 1:
            raise ExperimentError("topology dimensions must be >= 1")
        if self.n_nodes == 0:
            object.__setattr__(self, "n_nodes", self.capacity)
        if not 0 < self.n_nodes <= self.capacity:
            raise ExperimentError(
                f"n_nodes {self.n_nodes} outside 1..{self.capacity} "
                f"(tree capacity)"
            )

    @property
    def capacity(self) -> int:
        return self.racks * self.chassis_per_rack * self.nodes_per_chassis

    @property
    def n_chassis(self) -> int:
        return self.racks * self.chassis_per_rack

    @cached_property
    def chassis_of_node(self) -> np.ndarray:
        return np.arange(self.n_nodes) // self.nodes_per_chassis

    @cached_property
    def rack_of_chassis(self) -> np.ndarray:
        return np.arange(self.n_chassis) // self.chassis_per_rack

    @cached_property
    def rack_of_node(self) -> np.ndarray:
        return self.chassis_of_node // self.chassis_per_rack

    def chassis_slice(self, chassis: int) -> slice:
        """Node ids of one chassis (contiguous by construction).

        Trailing chassis past ``n_nodes`` yield empty slices.
        """
        start = min(chassis * self.nodes_per_chassis, self.n_nodes)
        return slice(start, min(start + self.nodes_per_chassis,
                                self.n_nodes))

    def rack_chassis_slice(self, rack: int) -> slice:
        """Chassis ids of one rack (contiguous by construction)."""
        start = rack * self.chassis_per_rack
        return slice(start, start + self.chassis_per_rack)

    def rack_node_slice(self, rack: int) -> slice:
        """Node ids of one rack (empty for racks past ``n_nodes``)."""
        per_rack = self.chassis_per_rack * self.nodes_per_chassis
        start = min(rack * per_rack, self.n_nodes)
        return slice(start, min(start + per_rack, self.n_nodes))

    def rack_name(self, rack: int) -> str:
        return f"rack-{rack:02d}"

    def chassis_name(self, chassis: int) -> str:
        rack, local = divmod(chassis, self.chassis_per_rack)
        return f"rack-{rack:02d}/ch-{local:02d}"

    def node_name(self, node: int) -> str:
        chassis, slot = divmod(node, self.nodes_per_chassis)
        rack, local = divmod(chassis, self.chassis_per_rack)
        return f"r{rack:02d}.c{local:02d}.n{slot:02d}"

    @classmethod
    def for_nodes(cls, n: int) -> "Topology":
        """A near-balanced tree for ``n`` nodes.

        Chassis size grows with the fleet (4 -> 8 -> 16 -> 25 nodes)
        and racks/chassis split the remainder close to square, so both
        interior levels keep allocator-friendly fan-outs (a few dozen
        children at most).
        """
        if n < 1:
            raise ExperimentError("fleet needs at least one node")
        if n >= 5000:
            per_chassis = 25
        elif n >= 256:
            per_chassis = 16
        elif n >= 32:
            per_chassis = 8
        else:
            per_chassis = 4
        chassis = math.ceil(n / per_chassis)
        per_rack = max(1, math.ceil(math.sqrt(chassis)))
        racks = math.ceil(chassis / per_rack)
        return cls(racks, per_rack, per_chassis, n_nodes=n)


def waterfill(
    cap_w: float, demands: np.ndarray, floor_w: float
) -> tuple[np.ndarray, bool]:
    """Vectorized demand-proportional water-fill with a per-node floor.

    The array twin of :class:`~repro.fleet.budget.DemandProportional`:
    floors first (clamped proportionally when they do not fit -- the
    returned flag reports the infeasibility), then budget granted up to
    demand proportionally to unmet demand, then any surplus spread
    equally.  Grants always sum to at most ``cap_w``.
    """
    n = demands.size
    if n == 0:
        return np.zeros(0), False
    if cap_w <= 0:
        return np.zeros(n), True
    floor_total = floor_w * n
    if floor_total > cap_w + 1e-12:
        return np.full(n, cap_w / n), True
    grants = np.full(n, float(floor_w))
    remaining = cap_w - floor_total
    unmet = np.maximum(demands - grants, 0.0)
    for _ in range(64):
        short = unmet > 1e-9
        if not short.any() or remaining <= 1e-9:
            break
        total_unmet = unmet[short].sum()
        pool = min(remaining, total_unmet)
        add = np.minimum(unmet[short], pool * unmet[short] / total_unmet)
        grants[short] += add
        unmet[short] -= add
        remaining -= add.sum()
        if not (unmet[short] <= 1e-9).any():
            break
    if remaining > 1e-9:
        grants += remaining / n
    return grants, False


def equal_fill(
    cap_w: float, demands: np.ndarray, floor_w: float
) -> tuple[np.ndarray, bool]:
    """Vectorized equal-share fill (the static strawman leaf policy)."""
    n = demands.size
    if n == 0:
        return np.zeros(0), False
    if cap_w <= 0:
        return np.zeros(n), True
    floor_total = floor_w * n
    if floor_total > cap_w + 1e-12:
        return np.full(n, cap_w / n), True
    return np.full(n, cap_w / n), False


_LEAF_POLICIES: Mapping[str, Callable] = {
    "demand": waterfill,
    "equal": equal_fill,
}


@dataclass
class ReallocationStats:
    """What one event-driven reallocation pass actually touched."""

    cluster: bool = False
    racks: int = 0
    chassis: int = 0
    #: (subtree name, cap, floor, live children) per clamped level.
    infeasible: list = None

    def __post_init__(self) -> None:
        if self.infeasible is None:
            self.infeasible = []

    @property
    def touched(self) -> bool:
        return self.cluster or self.racks > 0 or self.chassis > 0


class BudgetTree:
    """The cap tree and its event-driven reallocation pass.

    Interior caps live here (``rack_cap_w``, ``chassis_cap_w``); leaf
    grants are written into the caller's per-node array.  The tree
    never raises on oversubscription -- it clamps and records.
    """

    def __init__(
        self,
        topology: Topology,
        budget_w: float,
        allocator: BudgetAllocator,
        floor_w: float = MIN_GRANT_W,
        leaf_policy: str = "demand",
    ):
        if budget_w <= 0:
            raise ExperimentError("cluster budget must be positive")
        if leaf_policy not in _LEAF_POLICIES:
            raise ExperimentError(
                f"unknown leaf policy {leaf_policy!r}; "
                f"expected one of {sorted(_LEAF_POLICIES)}"
            )
        self.topology = topology
        self.budget_w = float(budget_w)
        self.allocator = allocator
        self.floor_w = float(floor_w)
        self.leaf_policy = leaf_policy
        self._leaf_fill = _LEAF_POLICIES[leaf_policy]
        self.rack_cap_w = np.zeros(topology.racks)
        self.chassis_cap_w = np.zeros(topology.n_chassis)

    # -- one event-driven pass -------------------------------------------------

    def reallocate(
        self,
        demand_w: np.ndarray,
        active: np.ndarray,
        grant_w: np.ndarray,
        dirty_chassis: Iterable[int] = (),
        dirty_racks: Iterable[int] = (),
        dirty_cluster: bool = False,
        frozen_racks: Mapping[int, float] | None = None,
    ) -> ReallocationStats:
        """Re-divide caps for the dirty subtrees only.

        ``demand_w`` is the coordinator's effective per-node demand
        (headroom included, floors for dark nodes, zero for inactive);
        ``active`` marks nodes that must be granted power; ``grant_w``
        is updated in place for nodes under reallocated chassis.
        ``frozen_racks`` maps partition-degraded racks to their frozen
        reserve: those subtrees are excluded from the allocator and
        their caps/grants left untouched.
        """
        topo = self.topology
        frozen = dict(frozen_racks or {})
        stats = ReallocationStats()
        dirty_racks = set(dirty_racks) - set(frozen)
        dirty_chassis = set(dirty_chassis)

        chassis_demand = np.bincount(
            topo.chassis_of_node, weights=np.where(active, demand_w, 0.0),
            minlength=topo.n_chassis,
        )
        chassis_live = np.bincount(
            topo.chassis_of_node, weights=active.astype(float),
            minlength=topo.n_chassis,
        )
        chassis_floor = self.floor_w * chassis_live

        if dirty_cluster:
            stats.cluster = True
            rack_demand = np.bincount(
                topo.rack_of_chassis, weights=chassis_demand,
                minlength=topo.racks,
            )
            rack_floor = np.bincount(
                topo.rack_of_chassis, weights=chassis_floor,
                minlength=topo.racks,
            )
            rack_live = np.bincount(
                topo.rack_of_chassis, weights=chassis_live,
                minlength=topo.racks,
            )
            new_caps = self._allocate_level(
                "cluster",
                self.budget_w - sum(frozen.values()),
                names=[topo.rack_name(r) for r in range(topo.racks)],
                demands=rack_demand,
                floors=rack_floor,
                active=(rack_live > 0),
                skip=set(frozen),
                live=rack_live,
                stats=stats,
            )
            for r in range(topo.racks):
                if r in frozen:
                    continue
                if abs(new_caps[r] - self.rack_cap_w[r]) > _CAP_EPSILON_W:
                    dirty_racks.add(r)
                self.rack_cap_w[r] = new_caps[r]

        for rack in sorted(dirty_racks):
            stats.racks += 1
            sl = topo.rack_chassis_slice(rack)
            chassis_ids = range(sl.start, sl.stop)
            new_caps = self._allocate_level(
                topo.rack_name(rack),
                self.rack_cap_w[rack],
                names=[topo.chassis_name(c) for c in chassis_ids],
                demands=chassis_demand[sl],
                floors=chassis_floor[sl],
                active=(chassis_live[sl] > 0),
                skip=set(),
                live=chassis_live[sl],
                stats=stats,
            )
            for offset, chassis in enumerate(chassis_ids):
                if (abs(new_caps[offset] - self.chassis_cap_w[chassis])
                        > _CAP_EPSILON_W):
                    dirty_chassis.add(chassis)
                self.chassis_cap_w[chassis] = new_caps[offset]

        frozen_chassis = {
            c
            for r in frozen
            for c in range(topo.rack_chassis_slice(r).start,
                           topo.rack_chassis_slice(r).stop)
        }
        for chassis in sorted(dirty_chassis - frozen_chassis):
            stats.chassis += 1
            sl = topo.chassis_slice(chassis)
            mask = active[sl]
            grants = np.zeros(sl.stop - sl.start)
            if mask.any():
                filled, infeasible = self._leaf_fill(
                    self.chassis_cap_w[chassis],
                    demand_w[sl][mask],
                    self.floor_w,
                )
                grants[mask] = filled
                if infeasible:
                    stats.infeasible.append((
                        topo.chassis_name(chassis),
                        float(self.chassis_cap_w[chassis]),
                        self.floor_w,
                        int(mask.sum()),
                    ))
            grant_w[sl] = grants
        return stats

    def _allocate_level(
        self,
        level_name: str,
        cap_w: float,
        names: Sequence[str],
        demands: np.ndarray,
        floors: np.ndarray,
        active: np.ndarray,
        skip: set,
        live: np.ndarray,
        stats: ReallocationStats,
    ) -> np.ndarray:
        """One interior level through the configured BudgetAllocator."""
        n = len(names)
        caps = np.zeros(n)
        children = [
            NodeDemand(
                names[i],
                float(demands[i]),
                active=bool(active[i]) and i not in skip,
                floor_w=float(floors[i]),
            )
            for i in range(n)
        ]
        if cap_w <= 0 or not any(c.active for c in children):
            if any(c.active for c in children):
                stats.infeasible.append(
                    (level_name, float(cap_w), float(floors.sum()),
                     int(live.sum()))
                )
            return caps
        grants = self.allocator.allocate(cap_w, children)
        if getattr(grants, "infeasible", False):
            stats.infeasible.append(
                (level_name, float(cap_w), float(floors.sum()),
                 int(live.sum()))
            )
        for i, name in enumerate(names):
            if i not in skip:
                caps[i] = grants.get(name, 0.0)
        return caps

    # -- invariants ------------------------------------------------------------

    def check_invariants(
        self,
        grant_w: np.ndarray,
        active: np.ndarray,
        frozen_racks: Mapping[int, float] | None = None,
        tolerance_w: float = 1e-6,
    ) -> list[str]:
        """Every violated tree invariant, as human-readable strings.

        An empty list means: rack caps sum to <= the cluster budget,
        each rack's chassis caps sum to <= the rack cap, and each
        chassis's node grants sum to <= the chassis cap.  Frozen
        (partitioned) racks are checked against their frozen reserve.
        """
        topo = self.topology
        frozen = dict(frozen_racks or {})
        problems: list[str] = []
        rack_total = sum(
            frozen.get(r, self.rack_cap_w[r]) for r in range(topo.racks)
        )
        if rack_total > self.budget_w + tolerance_w:
            problems.append(
                f"rack caps sum {rack_total:.6f} W > cluster budget "
                f"{self.budget_w:.6f} W"
            )
        for rack in range(topo.racks):
            sl = topo.rack_chassis_slice(rack)
            total = self.chassis_cap_w[sl].sum()
            cap = frozen.get(rack, self.rack_cap_w[rack])
            if total > cap + tolerance_w:
                problems.append(
                    f"{topo.rack_name(rack)}: chassis caps sum "
                    f"{total:.6f} W > rack cap {cap:.6f} W"
                )
        chassis_grant = np.bincount(
            topo.chassis_of_node, weights=grant_w,
            minlength=topo.n_chassis,
        )
        over = chassis_grant > self.chassis_cap_w + tolerance_w
        for chassis in np.flatnonzero(over):
            problems.append(
                f"{topo.chassis_name(int(chassis))}: node grants sum "
                f"{chassis_grant[chassis]:.6f} W > chassis cap "
                f"{self.chassis_cap_w[chassis]:.6f} W"
            )
        return problems

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "rack_cap_w": self.rack_cap_w.copy(),
            "chassis_cap_w": self.chassis_cap_w.copy(),
        }

    def load_state(self, state: Mapping[str, np.ndarray]) -> None:
        self.rack_cap_w[:] = state["rack_cap_w"]
        self.chassis_cap_w[:] = state["chassis_cap_w"]
