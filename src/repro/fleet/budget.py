"""Fleet power-budget allocation policies.

An allocator splits a total budget across nodes given each node's
*demand* -- the power its workload would draw at full speed, estimated
with the paper's DPC model (so allocation, like everything else, runs on
counters, not on privileged knowledge).

Two policies:

* :class:`EqualShare` -- the static strawman: floors first, then the
  remaining budget split evenly among live nodes regardless of need.  A
  memory-bound node wastes headroom a compute-bound neighbour could
  have used.
* :class:`DemandProportional` -- water-filling: satisfy everyone's
  demand if possible; otherwise grant proportionally to demand, never
  granting more than demand while surplus remains (the Felter-style
  performance-conserving shift).

Every allocation respects two invariants (property-tested):

1. grants sum to **at most the total budget** -- always, even when the
   per-node floors do not fit.  A budget tree whose levels may overrun
   their caps cannot promise anything about the root.
2. every active node receives at least its floor, **or** the grants are
   flagged :attr:`Grants.infeasible` and scaled to fit the budget --
   the oversubscription guard clamps rather than raises, and the caller
   (the fleet coordinator) decides whether to shed nodes or ride it out.

The same allocators run at every interior level of the hierarchical
budget tree (:mod:`repro.fleet.hierarchy`): there a "node" is a rack or
chassis, and :attr:`NodeDemand.floor_w` carries the subtree's aggregate
floor (floor-per-node times live nodes) instead of the single-machine
default.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import GovernorError

#: No node is ever granted less than this: roughly the platform's power
#: at the lowest p-state under load, so PM always has a feasible choice.
MIN_GRANT_W = 4.0


@dataclass(frozen=True)
class NodeDemand:
    """One node's (or subtree's) standing in an allocation round."""

    name: str
    #: Estimated power at full speed for the current workload (W).
    demand_w: float
    #: Whether the node still has work (finished nodes get nothing).
    active: bool = True
    #: Per-child floor override.  ``None`` means :data:`MIN_GRANT_W`;
    #: interior tree levels pass the subtree's aggregate floor here.
    floor_w: float | None = None

    def __post_init__(self) -> None:
        if self.demand_w < 0:
            raise GovernorError("demand cannot be negative")
        if self.floor_w is not None and self.floor_w < 0:
            raise GovernorError("floor cannot be negative")

    @property
    def effective_floor_w(self) -> float:
        """The floor this child is owed (default :data:`MIN_GRANT_W`)."""
        return MIN_GRANT_W if self.floor_w is None else self.floor_w


class Grants(dict):
    """Per-node power grants with an infeasibility flag.

    A plain ``dict`` (name -> watts) everywhere it is consumed, plus
    :attr:`infeasible`: True when the budget could not cover every
    active node's floor and the grants were *clamped* to fit the budget
    instead of silently overrunning it.
    """

    def __init__(self, grants=(), infeasible: bool = False):
        super().__init__(grants)
        self.infeasible = infeasible


class BudgetAllocator(abc.ABC):
    """Splits ``total_budget_w`` across nodes each reallocation round."""

    @abc.abstractmethod
    def allocate(
        self, total_budget_w: float, demands: Sequence[NodeDemand]
    ) -> Grants:
        """Return per-node power grants (W), keyed by node name."""

    @staticmethod
    def _check(total_budget_w: float, demands: Sequence[NodeDemand]) -> None:
        if total_budget_w <= 0:
            raise GovernorError("total budget must be positive")
        if not demands:
            raise GovernorError("no nodes to allocate to")
        names = [d.name for d in demands]
        if len(set(names)) != len(names):
            raise GovernorError(f"duplicate node names: {names}")

    @staticmethod
    def _floors_or_clamp(
        total_budget_w: float, active: Sequence[NodeDemand]
    ) -> tuple[Grants | None, float]:
        """Grant every floor, or clamp proportionally when they don't fit.

        Returns ``(clamped_grants, remaining)``: when the floors fit,
        ``clamped_grants`` is None and ``remaining`` is the budget left
        after the floors; when they don't, ``clamped_grants`` is the
        final infeasible allocation (scaled to sum exactly to the
        budget) and the caller must return it unchanged.
        """
        floor_total = sum(d.effective_floor_w for d in active)
        if floor_total <= total_budget_w + 1e-12:
            return None, total_budget_w - floor_total
        # Oversubscribed: floor x live-nodes exceeds the budget.  Scale
        # every floor down by the same factor so the sum hits the
        # budget exactly, and surface the infeasibility to the caller.
        if floor_total <= 0:
            scale = 0.0
        else:
            scale = total_budget_w / floor_total
        grants = Grants(infeasible=True)
        for demand in active:
            grants[demand.name] = demand.effective_floor_w * scale
        return grants, 0.0


class EqualShare(BudgetAllocator):
    """Floors first, then an equal split; inactive nodes get zero."""

    def allocate(
        self, total_budget_w: float, demands: Sequence[NodeDemand]
    ) -> Grants:
        self._check(total_budget_w, demands)
        active = [d for d in demands if d.active]
        grants = Grants({d.name: 0.0 for d in demands})
        if not active:
            return grants
        clamped, remaining = self._floors_or_clamp(total_budget_w, active)
        if clamped is not None:
            clamped.update(
                {d.name: clamped.get(d.name, 0.0) for d in demands}
            )
            return clamped
        bonus = remaining / len(active)
        for demand in active:
            grants[demand.name] = demand.effective_floor_w + bonus
        return grants


class DemandProportional(BudgetAllocator):
    """Water-filling by demand with a per-node floor.

    1. every active node gets its floor (:data:`MIN_GRANT_W` unless the
       demand carries a subtree floor) -- or, when the floors exceed the
       budget, a proportionally clamped share flagged infeasible;
    2. remaining budget is granted up to demand, proportionally to the
       unmet demand, iterating so no node exceeds its demand while
       another is still short (classic water-filling);
    3. any surplus after all demands are met is spread equally as
       headroom (bursts above the estimate happen; see galgel).
    """

    def allocate(
        self, total_budget_w: float, demands: Sequence[NodeDemand]
    ) -> Grants:
        self._check(total_budget_w, demands)
        grants = Grants({d.name: 0.0 for d in demands})
        active = [d for d in demands if d.active]
        if not active:
            return grants
        clamped, remaining = self._floors_or_clamp(total_budget_w, active)
        if clamped is not None:
            clamped.update(
                {d.name: clamped.get(d.name, 0.0) for d in demands}
            )
            return clamped
        for demand in active:
            grants[demand.name] = demand.effective_floor_w
        if remaining <= 0:
            return grants

        # Water-fill toward each node's demand.
        unmet = {
            d.name: max(0.0, d.demand_w - grants[d.name]) for d in active
        }
        for _ in range(len(active)):
            shortfall = {n: u for n, u in unmet.items() if u > 1e-9}
            if not shortfall or remaining <= 1e-9:
                break
            total_unmet = sum(shortfall.values())
            pool = min(remaining, total_unmet)
            exhausted = False
            for name, need in shortfall.items():
                grant = min(need, pool * need / total_unmet)
                grants[name] += grant
                unmet[name] -= grant
                remaining -= grant
                if unmet[name] <= 1e-9:
                    exhausted = True
            if not exhausted:
                break

        # Spread any surplus as equal headroom.
        if remaining > 1e-9:
            bonus = remaining / len(active)
            for demand in active:
                grants[demand.name] += bonus
        return grants
