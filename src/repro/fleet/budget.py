"""Fleet power-budget allocation policies.

An allocator splits a total budget across nodes given each node's
*demand* -- the power its workload would draw at full speed, estimated
with the paper's DPC model (so allocation, like everything else, runs on
counters, not on privileged knowledge).

Two policies:

* :class:`EqualShare` -- the static strawman: budget / live nodes each,
  regardless of need.  A memory-bound node wastes headroom a compute-
  bound neighbour could have used.
* :class:`DemandProportional` -- water-filling: satisfy everyone's
  demand if possible; otherwise grant proportionally to demand, never
  granting more than demand while surplus remains (the Felter-style
  performance-conserving shift).

Every allocation respects two invariants (property-tested): grants sum
to at most the total budget, and no node receives less than the floor
needed to run at the lowest p-state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import GovernorError

#: No node is ever granted less than this: roughly the platform's power
#: at the lowest p-state under load, so PM always has a feasible choice.
MIN_GRANT_W = 4.0


@dataclass(frozen=True)
class NodeDemand:
    """One node's standing in an allocation round."""

    name: str
    #: Estimated power at full speed for the current workload (W).
    demand_w: float
    #: Whether the node still has work (finished nodes get nothing).
    active: bool = True

    def __post_init__(self) -> None:
        if self.demand_w < 0:
            raise GovernorError("demand cannot be negative")


class BudgetAllocator(abc.ABC):
    """Splits ``total_budget_w`` across nodes each reallocation round."""

    @abc.abstractmethod
    def allocate(
        self, total_budget_w: float, demands: Sequence[NodeDemand]
    ) -> Mapping[str, float]:
        """Return per-node power grants (W), keyed by node name."""

    @staticmethod
    def _check(total_budget_w: float, demands: Sequence[NodeDemand]) -> None:
        if total_budget_w <= 0:
            raise GovernorError("total budget must be positive")
        if not demands:
            raise GovernorError("no nodes to allocate to")
        names = [d.name for d in demands]
        if len(set(names)) != len(names):
            raise GovernorError(f"duplicate node names: {names}")


class EqualShare(BudgetAllocator):
    """Budget / active-nodes each; inactive nodes get zero."""

    def allocate(
        self, total_budget_w: float, demands: Sequence[NodeDemand]
    ) -> Mapping[str, float]:
        self._check(total_budget_w, demands)
        active = [d for d in demands if d.active]
        grants = {d.name: 0.0 for d in demands}
        if not active:
            return grants
        share = total_budget_w / len(active)
        for demand in active:
            grants[demand.name] = max(share, MIN_GRANT_W)
        return grants


class DemandProportional(BudgetAllocator):
    """Water-filling by demand with a per-node floor.

    1. every active node gets the floor (:data:`MIN_GRANT_W`);
    2. remaining budget is granted up to demand, proportionally to the
       unmet demand, iterating so no node exceeds its demand while
       another is still short (classic water-filling);
    3. any surplus after all demands are met is spread equally as
       headroom (bursts above the estimate happen; see galgel).
    """

    def allocate(
        self, total_budget_w: float, demands: Sequence[NodeDemand]
    ) -> Mapping[str, float]:
        self._check(total_budget_w, demands)
        grants = {d.name: 0.0 for d in demands}
        active = [d for d in demands if d.active]
        if not active:
            return grants

        for demand in active:
            grants[demand.name] = MIN_GRANT_W
        remaining = total_budget_w - MIN_GRANT_W * len(active)
        if remaining <= 0:
            return grants

        # Water-fill toward each node's demand.
        unmet = {
            d.name: max(0.0, d.demand_w - grants[d.name]) for d in active
        }
        for _ in range(len(active)):
            shortfall = {n: u for n, u in unmet.items() if u > 1e-9}
            if not shortfall or remaining <= 1e-9:
                break
            total_unmet = sum(shortfall.values())
            pool = min(remaining, total_unmet)
            exhausted = False
            for name, need in shortfall.items():
                grant = min(need, pool * need / total_unmet)
                grants[name] += grant
                unmet[name] -= grant
                remaining -= grant
                if unmet[name] <= 1e-9:
                    exhausted = True
            if not exhausted:
                break

        # Spread any surplus as equal headroom.
        if remaining > 1e-9:
            bonus = remaining / len(active)
            for demand in active:
                grants[demand.name] += bonus
        return grants
