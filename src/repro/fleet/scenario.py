"""Fleet traffic scenarios: what ten thousand nodes want to draw.

The PR-6 scenario corpus describes single-node workloads as counter
traces; a *fleet* scenario stamps those traces across a cluster with
the shapes that make capping hard in production:

* a **diurnal envelope** -- fleet-wide demand swings day/night;
* a **flash crowd** -- web-serving nodes spike together mid-run, the
  moment a naive allocator double-books the budget;
* seeded per-node diversity (template choice, phase offset, amplitude)
  so no two nodes are bit-identical yet every run reproduces exactly;
* churn rates (crash / restart / finish) and telemetry-loss rates that
  the cluster coordinator consumes, plus one scheduled whole-rack
  outage window and one coordinator-side network partition window.

The engine prices each corpus trace into Watts through the paper's
linear power model at the fastest P-state, so node demand is "what the
node would draw uncapped" in the same units the budget tree divides.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.acpi.pstates import pentium_m_755_table
from repro.core.models.power import LinearPowerModel
from repro.errors import ExperimentError
from repro.traces.corpus import corpus_trace

#: Mix entries are (corpus scenario name, weight).
DEFAULT_MIX: tuple[tuple[str, float], ...] = (
    ("web-diurnal", 0.45),
    ("web-flash-crowd", 0.20),
    ("etl-scan-heavy", 0.10),
    ("infer-batch", 0.15),
    ("desktop-editing", 0.10),
)


@dataclass(frozen=True)
class FleetScenario:
    """Everything that shapes fleet demand and fleet failures.

    Fractions (``*_frac``) are relative to the run length so the same
    scenario scales from a CI smoke run to a long benchmark run.  All
    randomness derives from the controller's seed, never from these
    parameters.
    """

    ticks: int = 360
    tick_s: float = 1.0
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX
    corpus_seed: int = 0
    #: Per-node demand amplitude is lognormal(0, amp_sigma).
    amp_sigma: float = 0.10
    #: Multiplicative measurement noise on draw.
    noise_sigma: float = 0.01
    # Diurnal envelope over the whole fleet.
    diurnal_period_ticks: int = 240
    diurnal_depth: float = 0.35
    # Flash crowd hits web-family nodes only.
    flash_start_frac: float = 0.55
    flash_duration_frac: float = 0.08
    flash_magnitude: float = 1.60
    # Churn (per-node, per-second hazard rates).
    crash_rate_per_node_s: float = 2e-4
    restart_delay_s: float = 20.0
    restart_jitter_s: float = 10.0
    #: Fraction of nodes that finish for good during the run.
    finish_frac: float = 0.02
    # Telemetry loss (stale demand) episodes.
    telemetry_loss_rate_per_node_s: float = 5e-4
    telemetry_loss_duration_s: float = 40.0
    # One whole-rack outage window.
    rack_outage_at_frac: float = 0.35
    rack_outage_duration_frac: float = 0.15
    # One coordinator-side partition window (a different rack).
    partition_at_frac: float = 0.70
    partition_duration_frac: float = 0.10

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ExperimentError("scenario needs at least one tick")
        if self.tick_s <= 0:
            raise ExperimentError("tick_s must be positive")
        if not self.mix:
            raise ExperimentError("scenario mix must not be empty")
        if any(w < 0 for _, w in self.mix) or sum(
                w for _, w in self.mix) <= 0:
            raise ExperimentError("mix weights must be non-negative "
                                  "with a positive sum")

    @property
    def duration_s(self) -> float:
        return self.ticks * self.tick_s

    def window_ticks(self, at_frac: float,
                     duration_frac: float) -> tuple[int, int]:
        """A scheduled window as [start, end) tick indices."""
        start = int(round(at_frac * self.ticks))
        end = start + max(1, int(round(duration_frac * self.ticks)))
        return start, min(end, self.ticks)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["mix"] = [list(entry) for entry in self.mix]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetScenario":
        payload = dict(data)
        payload["mix"] = tuple(
            (str(name), float(weight)) for name, weight in payload["mix"]
        )
        return cls(**payload)


@dataclass(frozen=True)
class _Template:
    """One corpus trace priced into per-tick Watts."""

    name: str
    family: str
    demand_w: np.ndarray = field(repr=False)


class ScenarioEngine:
    """Deterministic per-tick fleet demand for one scenario + seed.

    Demand for node ``i`` at tick ``t`` is its template's priced trace,
    cycled with a per-node phase, scaled by a per-node amplitude, the
    fleet-wide diurnal envelope and (for web-family nodes inside the
    flash window) the flash-crowd multiplier.
    """

    def __init__(
        self,
        scenario: FleetScenario,
        n_nodes: int,
        seed: int,
        model: LinearPowerModel | None = None,
    ):
        self.scenario = scenario
        self.n_nodes = n_nodes
        model = model or LinearPowerModel.paper_model()
        fastest = pentium_m_755_table().fastest

        templates: list[_Template] = []
        for name, _weight in scenario.mix:
            trace = corpus_trace(name, seed=scenario.corpus_seed)
            priced = np.array([
                model.estimate(fastest, interval.dpc)
                for interval in trace.intervals
            ])
            templates.append(
                _Template(name=name, family=name.split("-")[0],
                          demand_w=priced)
            )
        self.templates: Sequence[_Template] = tuple(templates)

        weights = np.array([w for _, w in scenario.mix], dtype=float)
        rng = np.random.default_rng([seed, 101])
        self.template_of_node = rng.choice(
            len(templates), size=n_nodes, p=weights / weights.sum()
        )
        lengths = np.array([t.demand_w.size for t in templates])
        self.phase_of_node = rng.integers(0, lengths[self.template_of_node])
        self.amp_of_node = rng.lognormal(
            0.0, scenario.amp_sigma, size=n_nodes)
        self.web_mask = np.array([
            templates[k].family == "web" for k in self.template_of_node
        ])

        # Flat template table for one-gather demand lookup.
        self._flat = np.concatenate([t.demand_w for t in templates])
        bases = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        self._base_of_node = bases[self.template_of_node]
        self._len_of_node = lengths[self.template_of_node]
        self._flash_window = scenario.window_ticks(
            scenario.flash_start_frac, scenario.flash_duration_frac)

    def template_name(self, node: int) -> str:
        return self.templates[int(self.template_of_node[node])].name

    def diurnal_factor(self, tick: int) -> float:
        theta = 2.0 * math.pi * tick / self.scenario.diurnal_period_ticks
        return 1.0 - self.scenario.diurnal_depth * 0.5 * (
            1.0 - math.cos(theta))

    def in_flash(self, tick: int) -> bool:
        start, end = self._flash_window
        return start <= tick < end

    def demands(self, tick: int) -> np.ndarray:
        """Uncapped per-node demand (W) at one tick."""
        idx = self._base_of_node + (tick + self.phase_of_node) \
            % self._len_of_node
        demand = self._flat[idx] * self.amp_of_node
        demand = demand * self.diurnal_factor(tick)
        if self.in_flash(tick):
            demand = np.where(
                self.web_mask,
                demand * self.scenario.flash_magnitude,
                demand,
            )
        return demand

    def peak_demand_w(self) -> float:
        """Upper bound on any single node's demand (for sizing budgets)."""
        peak = max(float(t.demand_w.max()) for t in self.templates)
        return (peak * float(self.amp_of_node.max())
                * self.scenario.flash_magnitude)
