"""Churn-tolerant hierarchical fleet coordinator.

This is the datacenter-scale counterpart of the lock-step
:class:`~repro.fleet.controller.FleetController`: one coordinator, a
:class:`~repro.fleet.hierarchy.BudgetTree` over racks / chassis /
nodes, and a :class:`~repro.fleet.store.NodeStore` holding the whole
fleet in NumPy arrays so 10k nodes tick in milliseconds.

Reallocation is **event-driven**.  Nodes report demand only when it
moves outside a deadband; crashes, restarts, finishes, outages and
partition transitions mark their subtree dirty, and each tick the tree
re-divides caps for the dirty subtrees only (plus a low-frequency full
refresh as a safety sweep).  Failure semantics are first-class:

* a node that stops reporting is **held** at its last demand, then
  **decayed** toward the floor, then accounted **dark** at the floor --
  a stale estimate is never trusted forever;
* a whole-rack outage shifts the rack's share to its siblings within a
  single cluster-level event, and the rack rejoins at floors;
* the oversubscription guard **clamps** (proportionally, surfacing
  :class:`~repro.telemetry.bus.BudgetInfeasible`) when floors exceed a
  subtree's cap -- the tree never raises mid-run;
* a partitioned (unreachable-but-running) subtree is frozen at its
  last-granted caps, then shed by a safety margin after a grace
  period; every such tick counts in ``degraded_ticks``.

Budget safety is by construction: grant *raises* land one tick late
while *cuts* apply immediately, so the fleet never double-spends a
watt in transition and the budget-violation fraction stays bounded
through arbitrary churn -- including a coordinator SIGKILL, because
checkpoints capture every array and RNG stream for bit-identical
resume (see ``repro-power fleet-sim`` and the fleet chaos harness).
"""

from __future__ import annotations

import json
import math
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import CheckpointError, ExperimentError
from repro.fleet.budget import (
    BudgetAllocator,
    DemandProportional,
    EqualShare,
    MIN_GRANT_W,
)
from repro.fleet.controller import FleetResult, NodeResult
from repro.fleet.hierarchy import BudgetTree, Topology
from repro.fleet.scenario import FleetScenario, ScenarioEngine
from repro.fleet.store import NodeState, NodeStore
from repro.ioutils import atomic_write_bytes, atomic_write_text
from repro.telemetry.bus import (
    BudgetInfeasible,
    FaultRecovered,
    NodeCrashed,
    NodeFinished,
    NodeRestarted,
    PartitionDegraded,
    SubtreeOutage,
    SubtreeReallocated,
)
from repro.telemetry.recorder import TelemetryRecorder

_ALLOCATORS = {
    "demand": DemandProportional,
    "equal": EqualShare,
}

#: Checkpoint manifest format (bump on layout changes).
CHECKPOINT_FORMAT = "fleet-checkpoint-v1"
_MANIFEST = "manifest.json"
_STATE = "state.pkl"


def make_allocator(name: str) -> BudgetAllocator:
    try:
        return _ALLOCATORS[name]()
    except KeyError:
        raise ExperimentError(
            f"unknown allocator {name!r}; expected one of "
            f"{sorted(_ALLOCATORS)}"
        ) from None


@dataclass(frozen=True)
class FleetSpec:
    """Everything needed to (re)build one hierarchical fleet run."""

    nodes: int = 1024
    #: Cluster budget is per-node x nodes (so specs scale by count).
    budget_per_node_w: float = 11.0
    seed: int = 0
    scenario: FleetScenario = field(default_factory=FleetScenario)
    allocator: str = "demand"
    leaf_policy: str = "demand"
    floor_w: float = MIN_GRANT_W
    #: Burst allowance added to each reported demand before allocating.
    demand_headroom_w: float = 0.5
    # Stale-demand handling (coordinator side).
    stale_hold_s: float = 5.0
    stale_decay_s: float = 15.0
    dark_after_s: float = 45.0
    # Partition-degraded handling.
    partition_margin: float = 0.10
    partition_grace_s: float = 5.0
    #: Demand reports outside this relative band trigger an event.
    deadband_frac: float = 0.05
    #: Full-tree refresh period (safety sweep), in ticks; 0 disables.
    refresh_period_ticks: int = 60
    #: Durable checkpoint every N ticks; 0 disables.
    checkpoint_interval_ticks: int = 0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ExperimentError("fleet needs at least one node")
        if self.budget_per_node_w <= 0:
            raise ExperimentError("per-node budget must be positive")
        if self.demand_headroom_w < 0:
            raise ExperimentError("demand headroom must be >= 0")
        if not 0 <= self.partition_margin < 1:
            raise ExperimentError("partition margin must be in [0, 1)")
        if self.allocator not in _ALLOCATORS:
            raise ExperimentError(
                f"unknown allocator {self.allocator!r}; expected one of "
                f"{sorted(_ALLOCATORS)}"
            )

    @property
    def budget_w(self) -> float:
        return self.nodes * self.budget_per_node_w

    def to_dict(self) -> dict:
        data = {
            k: getattr(self, k)
            for k in self.__dataclass_fields__
            if k != "scenario"
        }
        data["scenario"] = self.scenario.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetSpec":
        payload = dict(data)
        payload["scenario"] = FleetScenario.from_dict(payload["scenario"])
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ClusterResult(FleetResult):
    """A :class:`FleetResult` plus hierarchical-fleet statistics."""

    n_nodes: int = 0
    ticks: int = 0
    tick_s: float = 1.0
    #: Event-driven passes that actually touched the tree.
    reallocations: int = 0
    #: Interior/leaf levels re-divided across all passes.
    subtree_reallocations: int = 0
    crashes: int = 0
    restarts: int = 0
    finishes: int = 0
    stale_episodes: int = 0
    infeasible_events: int = 0
    outage_ticks: int = 0
    realloc_latency_mean_s: float = 0.0
    realloc_latency_p99_s: float = 0.0
    realloc_latency_max_s: float = 0.0
    wall_s: float = 0.0
    nodes_x_ticks_per_s: float = 0.0
    #: Drawn energy over uncapped-wanted energy (capping cost).
    demand_satisfaction: float = 1.0


class HierarchicalFleetController:
    """Event-driven coordinator for one :class:`FleetSpec`.

    All randomness flows from ``spec.seed`` through named substreams,
    and every mutable array / RNG is captured by checkpoints, so a
    killed-and-resumed run is bit-identical to an uninterrupted one.
    """

    def __init__(
        self,
        spec: FleetSpec,
        telemetry: TelemetryRecorder | None = None,
        checkpoint_dir: str | Path | None = None,
    ):
        self.spec = spec
        self._tel = telemetry
        self._checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.topology = Topology.for_nodes(spec.nodes)
        self.engine = ScenarioEngine(
            spec.scenario, spec.nodes, seed=spec.seed
        )
        self.store = NodeStore(self.topology, spec.floor_w)
        self.tree = BudgetTree(
            self.topology,
            spec.budget_w,
            make_allocator(spec.allocator),
            floor_w=spec.floor_w,
            leaf_policy=spec.leaf_policy,
        )
        # Independent named RNG substreams (each checkpointed).
        self._rng_churn = np.random.default_rng([spec.seed, 1])
        self._rng_loss = np.random.default_rng([spec.seed, 2])
        self._rng_noise = np.random.default_rng([spec.seed, 3])
        rng_events = np.random.default_rng([spec.seed, 4])

        sc = spec.scenario
        # Scheduled finishes: finish_frac of the fleet retires at
        # uniform ticks through the run (inf = never finishes).
        self._finish_tick = np.full(spec.nodes, np.inf)
        n_finish = int(round(sc.finish_frac * spec.nodes))
        if n_finish:
            who = rng_events.choice(spec.nodes, size=n_finish,
                                    replace=False)
            self._finish_tick[who] = rng_events.integers(
                1, max(2, sc.ticks), size=n_finish
            )
        # One rack suffers a power outage, a *different* rack a
        # coordinator-side partition (only with >= 2 racks).
        racks = self.topology.racks
        self._outage_rack = int(rng_events.integers(0, racks))
        self._partition_rack = (
            int((self._outage_rack + 1 + rng_events.integers(0, racks - 1))
                % racks)
            if racks > 1 else -1
        )
        self._outage_window = sc.window_ticks(
            sc.rack_outage_at_frac, sc.rack_outage_duration_frac)
        self._partition_window = (
            sc.window_ticks(sc.partition_at_frac,
                            sc.partition_duration_frac)
            if self._partition_rack >= 0 else (-1, -1)
        )

        # Mutable run state (all of it checkpointed).
        self.tick = 0
        self._outage_active = False
        self._partition_active = False
        self._partition_since_s = 0.0
        self._partition_shed = False
        self._frozen_reserve_w = 0.0
        self._pending_redistributions = 0
        self._power_series: list[tuple[float, float]] = []
        self._realloc_latencies: list[float] = []
        self._counters = {
            "reallocations": 0,
            "subtree_reallocations": 0,
            "crashes": 0,
            "restarts": 0,
            "finishes": 0,
            "stale_episodes": 0,
            "infeasible_events": 0,
            "outage_ticks": 0,
            "degraded_ticks": 0,
        }
        self._sum_draw_j = 0.0
        self._sum_wanted_j = 0.0
        self._initialized = False

    # -- helpers ---------------------------------------------------------------

    @property
    def _instrumented(self) -> bool:
        return self._tel is not None and self._tel.enabled

    def _emit(self, event) -> None:
        if self._instrumented:
            self._tel.emit(event)

    def _outage_nodes(self) -> slice:
        return self.topology.rack_node_slice(self._outage_rack)

    def _partition_nodes(self) -> slice:
        return self.topology.rack_node_slice(self._partition_rack)

    def _reachable_mask(self) -> np.ndarray:
        """Nodes whose telemetry can reach the coordinator right now."""
        mask = np.ones(self.spec.nodes, dtype=bool)
        if self._outage_active:
            mask[self._outage_nodes()] = False
        if self._partition_active:
            mask[self._partition_nodes()] = False
        return mask

    # -- the per-tick pipeline -------------------------------------------------

    def _initial_allocation(self) -> None:
        """Tick-0 bring-up: everyone reports, full tree allocation."""
        store, now = self.store, 0.0
        store.true_demand_w[:] = self.engine.demands(0)
        store.reported_demand_w[:] = store.true_demand_w
        store.last_report_s[:] = now
        self._run_reallocation(now, reason="initial", full=True)
        # Bring-up is the one moment raises apply immediately: nothing
        # was drawing yet, so there is no transition to double-spend.
        store.applied_w[:] = store.grant_w
        self._initialized = True

    def _apply_pending_raises(self) -> None:
        """Grant raises land one tick late; cuts applied immediately."""
        self.store.applied_w[:] = self.store.grant_w

    def _advance_demand(self, tick: int) -> None:
        self.store.true_demand_w[:] = self.engine.demands(tick)

    def _churn(self, tick: int, now: float,
               dirty_chassis: set) -> None:
        store, sc, topo = self.store, self.spec.scenario, self.topology
        states = store.state
        outage = np.zeros(self.spec.nodes, dtype=bool)
        if self._outage_active:
            outage[self._outage_nodes()] = True

        # Crashes: per-node hazard draw over running, non-outage nodes.
        eligible = (states <= int(NodeState.DARK)) & ~outage
        p = sc.crash_rate_per_node_s * sc.tick_s
        draws = self._rng_churn.random(self.spec.nodes)
        crashed = eligible & (draws < p)
        for node in np.flatnonzero(crashed):
            delay = (sc.restart_delay_s
                     + sc.restart_jitter_s * self._rng_churn.random())
            store.state[node] = int(NodeState.CRASHED)
            store.crashes[node] += 1
            store.restart_at_s[node] = now + delay
            store.grant_w[node] = 0.0
            store.applied_w[node] = 0.0
            dirty_chassis.add(int(topo.chassis_of_node[node]))
            self._counters["crashes"] += 1
            self._pending_redistributions += 1
            self._emit(NodeCrashed(
                time_s=now, node=topo.node_name(int(node)),
                restart_at_s=now + delay,
            ))

        # Restarts: crashed nodes whose delay expired (and whose rack
        # has power) rejoin conservatively at the floor.
        due = ((states == int(NodeState.CRASHED))
               & (store.restart_at_s <= now) & ~outage)
        for node in np.flatnonzero(due):
            downtime = now - (store.restart_at_s[node]
                              - sc.restart_delay_s)
            store.state[node] = int(NodeState.LIVE)
            store.restart_at_s[node] = np.inf
            store.reported_demand_w[node] = store.floor_w
            store.last_report_s[node] = now
            store.grant_w[node] = store.floor_w
            store.applied_w[node] = store.floor_w
            dirty_chassis.add(int(topo.chassis_of_node[node]))
            self._counters["restarts"] += 1
            self._emit(NodeRestarted(
                time_s=now, node=topo.node_name(int(node)),
                downtime_s=max(0.0, float(downtime)),
            ))
            self._emit(FaultRecovered(
                time_s=now, subsystem="fleet", action="restart"))

        # Scheduled finishes: retired for good, share shifts away.
        finishing = ((states <= int(NodeState.DARK))
                     & (self._finish_tick <= tick))
        for node in np.flatnonzero(finishing):
            store.state[node] = int(NodeState.FINISHED)
            store.grant_w[node] = 0.0
            store.applied_w[node] = 0.0
            dirty_chassis.add(int(topo.chassis_of_node[node]))
            self._counters["finishes"] += 1
            self._emit(NodeFinished(
                time_s=now, node=topo.node_name(int(node)),
                workload=self.engine.template_name(int(node)),
                duration_s=float(store.up_ticks[node]) * sc.tick_s,
            ))

    def _outage_transitions(self, tick: int, now: float) -> bool:
        """Enter/exit the scheduled rack outage; True = cluster dirty."""
        start, end = self._outage_window
        store = self.store
        if not self._outage_active and start <= tick < end:
            self._outage_active = True
            sl = self._outage_nodes()
            store.grant_w[sl] = 0.0
            store.applied_w[sl] = 0.0
            self._emit(SubtreeOutage(
                time_s=now,
                subtree=self.topology.rack_name(self._outage_rack),
                nodes=sl.stop - sl.start, down=True,
            ))
            return True
        if self._outage_active and tick >= end:
            self._outage_active = False
            sl = self._outage_nodes()
            # Power restored: running nodes reboot and rejoin at the
            # floor; nodes that crashed before the outage stay crashed.
            running = store.state[sl] <= int(NodeState.DARK)
            idx = np.flatnonzero(running) + sl.start
            store.state[idx] = int(NodeState.LIVE)
            store.reported_demand_w[idx] = store.floor_w
            store.last_report_s[idx] = now
            store.grant_w[idx] = store.floor_w
            store.applied_w[idx] = store.floor_w
            self._emit(SubtreeOutage(
                time_s=now,
                subtree=self.topology.rack_name(self._outage_rack),
                nodes=sl.stop - sl.start, down=False,
            ))
            self._emit(FaultRecovered(
                time_s=now, subsystem="fleet", action="redistribute"))
            return True
        return False

    def _partition_transitions(self, tick: int, now: float) -> bool:
        """Enter/exit/degrade the partition; True = cluster dirty."""
        if self._partition_rack < 0:
            return False
        start, end = self._partition_window
        spec, store = self.spec, self.store
        dirty = False
        if not self._partition_active and start <= tick < end:
            # Unreachable but still running: freeze the subtree at its
            # last-granted cap, reserved in full during the grace
            # period (the subtree may legitimately draw up to it).
            self._partition_active = True
            self._partition_since_s = now
            self._partition_shed = False
            self._frozen_reserve_w = float(
                self.tree.rack_cap_w[self._partition_rack])
            self._emit(PartitionDegraded(
                time_s=now,
                subtree=self.topology.rack_name(self._partition_rack),
                frozen_cap_w=self._frozen_reserve_w, entered=True,
            ))
            dirty = True
        if (self._partition_active and not self._partition_shed
                and now - self._partition_since_s
                >= spec.partition_grace_s):
            # Grace expired: both sides shed by the safety margin --
            # the nodes fail-safe to reduced local caps, the
            # coordinator frees the margin for reachable subtrees.
            self._partition_shed = True
            keep = 1.0 - spec.partition_margin
            sl = self._partition_nodes()
            store.grant_w[sl] *= keep
            store.applied_w[sl] = np.minimum(
                store.applied_w[sl], store.grant_w[sl])
            csl = self.topology.rack_chassis_slice(self._partition_rack)
            self.tree.chassis_cap_w[csl] *= keep
            self.tree.rack_cap_w[self._partition_rack] *= keep
            self._frozen_reserve_w *= keep
            self._emit(PartitionDegraded(
                time_s=now,
                subtree=self.topology.rack_name(self._partition_rack),
                frozen_cap_w=self._frozen_reserve_w, entered=True,
            ))
            dirty = True
        if self._partition_active and tick >= end:
            self._partition_active = False
            self._partition_shed = False
            self._frozen_reserve_w = 0.0
            sl = self._partition_nodes()
            # Telemetry heals: the subtree reports fresh demand.
            running = store.state[sl] <= int(NodeState.DARK)
            idx = np.flatnonzero(running) + sl.start
            store.reported_demand_w[idx] = store.true_demand_w[idx]
            store.last_report_s[idx] = now
            store.state[idx] = int(NodeState.LIVE)
            self._emit(PartitionDegraded(
                time_s=now,
                subtree=self.topology.rack_name(self._partition_rack),
                frozen_cap_w=0.0, entered=False,
            ))
            dirty = True
        if self._partition_active:
            self._counters["degraded_ticks"] += 1
        return dirty

    def _telemetry_and_staleness(self, now: float,
                                 dirty_chassis: set) -> None:
        spec, sc = self.spec, self.spec.scenario
        store, topo = self.store, self.topology
        reachable = self._reachable_mask()
        running = store.state <= int(NodeState.DARK)

        # New telemetry-loss episodes.
        p = sc.telemetry_loss_rate_per_node_s * sc.tick_s
        hit = (running & reachable
               & (self._rng_loss.random(spec.nodes) < p))
        store.stale_until_s[hit] = now + sc.telemetry_loss_duration_s

        reporting = running & reachable & (store.stale_until_s <= now)
        silent_for = now - store.last_report_s

        # Hold -> decay -> dark for silent nodes.
        stale = running & ~reporting & (silent_for > spec.stale_hold_s)
        newly_stale = stale & (store.state == int(NodeState.LIVE))
        store.state[newly_stale] = int(NodeState.STALE)
        self._counters["stale_episodes"] += int(newly_stale.sum())
        decaying = store.state == int(NodeState.STALE)
        if decaying.any():
            decay = math.exp(-sc.tick_s / spec.stale_decay_s)
            store.reported_demand_w[decaying] = np.maximum(
                store.reported_demand_w[decaying] * decay, store.floor_w
            )
        newly_dark = (decaying & (silent_for > spec.dark_after_s))
        if newly_dark.any():
            store.state[newly_dark] = int(NodeState.DARK)
            store.reported_demand_w[newly_dark] = store.floor_w
            for node in np.flatnonzero(newly_dark):
                dirty_chassis.add(int(topo.chassis_of_node[node]))

        # Fresh reports: recover stale/dark nodes, and push a
        # demand-delta event only when outside the deadband.
        recovered = reporting & (store.state != int(NodeState.LIVE))
        store.state[recovered] = int(NodeState.LIVE)
        band = spec.deadband_frac * np.maximum(
            store.reported_demand_w, store.floor_w)
        moved = reporting & (
            np.abs(store.true_demand_w - store.reported_demand_w) > band
        )
        changed = moved | recovered
        store.reported_demand_w[changed] = store.true_demand_w[changed]
        store.last_report_s[reporting] = now
        for chassis in np.unique(
                topo.chassis_of_node[changed]) if changed.any() else ():
            dirty_chassis.add(int(chassis))

    def _effective_demand(self) -> tuple[np.ndarray, np.ndarray]:
        """(effective demand, active mask) as the allocator sees them."""
        store, spec = self.store, self.spec
        active = store.accountable_mask()
        if self._outage_active:
            active[self._outage_nodes()] = False
        demand = store.reported_demand_w + spec.demand_headroom_w
        dark = store.state == int(NodeState.DARK)
        demand[dark] = store.floor_w
        demand[~active] = 0.0
        return demand, active

    def _run_reallocation(self, now: float, reason: str,
                          full: bool = False,
                          dirty_chassis: set | None = None,
                          dirty_cluster: bool = False) -> None:
        demand, active = self._effective_demand()
        frozen = (
            {self._partition_rack: self._frozen_reserve_w}
            if self._partition_active else None
        )
        dirty_chassis = set(dirty_chassis or ())
        if full:
            dirty_cluster = True
            dirty_chassis.update(range(self.topology.n_chassis))
        elif dirty_chassis and not dirty_cluster:
            # A chassis-level event still changes its rack's aggregate
            # demand, so re-divide the whole tree top-down: shares
            # shift between racks in the same event.
            dirty_cluster = True
        if not dirty_cluster and not dirty_chassis:
            return
        started = time.perf_counter()
        stats = self.tree.reallocate(
            demand, active, self.store.grant_w,
            dirty_chassis=dirty_chassis,
            dirty_cluster=dirty_cluster,
            frozen_racks=frozen,
        )
        elapsed = time.perf_counter() - started
        if not stats.touched:
            return
        # Cuts bite immediately; raises wait for the next tick.
        self.store.applied_w[:] = np.minimum(
            self.store.applied_w, self.store.grant_w)
        self._realloc_latencies.append(elapsed)
        self._counters["reallocations"] += 1
        self._counters["subtree_reallocations"] += (
            int(stats.cluster) + stats.racks + stats.chassis)
        self._counters["infeasible_events"] += len(stats.infeasible)
        if self._instrumented:
            self._emit(SubtreeReallocated(
                time_s=now, subtree="cluster",
                cap_w=self.tree.budget_w,
                children=int(stats.cluster) + stats.racks + stats.chassis,
                reason=reason,
            ))
            for subtree, cap_w, floor_w, live in stats.infeasible:
                self._emit(BudgetInfeasible(
                    time_s=now, subtree=subtree, cap_w=cap_w,
                    floor_w=floor_w, live_nodes=live,
                ))
        while self._pending_redistributions > 0:
            self._pending_redistributions -= 1
            self._emit(FaultRecovered(
                time_s=now, subsystem="fleet", action="redistribute"))

    def _measure_draw(self, now: float) -> float:
        store, sc = self.store, self.spec.scenario
        running = store.running_mask()
        if self._outage_active:
            running = running.copy()
            running[self._outage_nodes()] = False
            self._counters["outage_ticks"] += 1
        draw = np.minimum(store.true_demand_w, store.applied_w)
        noise = 1.0 + sc.noise_sigma * self._rng_noise.standard_normal(
            self.spec.nodes)
        draw = np.maximum(draw * noise, 0.0)
        draw[~running] = 0.0
        store.draw_w[:] = draw
        store.energy_j += draw * sc.tick_s
        store.up_ticks[running] += 1
        self._sum_draw_j += float(draw.sum()) * sc.tick_s
        self._sum_wanted_j += float(
            store.true_demand_w[running].sum()) * sc.tick_s
        return float(draw.sum())

    def step(self) -> None:
        """Advance the fleet by one tick."""
        if not self._initialized:
            self._initial_allocation()
        spec, sc = self.spec, self.spec.scenario
        tick = self.tick
        now = tick * sc.tick_s

        self._apply_pending_raises()
        if (spec.checkpoint_interval_ticks > 0
                and self._checkpoint_dir is not None
                and tick > 0
                and tick % spec.checkpoint_interval_ticks == 0):
            self.checkpoint()

        self._advance_demand(tick)
        dirty_chassis: set[int] = set()
        self._churn(tick, now, dirty_chassis)
        dirty_cluster = self._outage_transitions(tick, now)
        dirty_cluster |= self._partition_transitions(tick, now)
        self._telemetry_and_staleness(now, dirty_chassis)

        refresh = (spec.refresh_period_ticks > 0
                   and tick > 0
                   and tick % spec.refresh_period_ticks == 0)
        if refresh:
            reason = "refresh"
        elif dirty_cluster:
            reason = ("outage" if self._outage_active
                      or not self._partition_active else "partition")
        else:
            reason = "event"
        self._run_reallocation(
            now, reason=reason, full=refresh,
            dirty_chassis=dirty_chassis, dirty_cluster=dirty_cluster,
        )

        fleet_w = self._measure_draw(now)
        self._power_series.append((now, fleet_w))
        self.tick += 1

    def run(self) -> ClusterResult:
        """Run the scenario to completion (or from a resumed tick)."""
        started = time.perf_counter()
        start_tick = self.tick
        while self.tick < self.spec.scenario.ticks:
            self.step()
        wall = time.perf_counter() - started
        if (self._checkpoint_dir is not None
                and self.spec.checkpoint_interval_ticks > 0):
            self.checkpoint()
        return self._result(wall, self.tick - start_tick)

    # -- results ---------------------------------------------------------------

    def _result(self, wall_s: float, ticks_run: int) -> ClusterResult:
        spec, sc, store = self.spec, self.spec.scenario, self.store
        nodes = {}
        for i in range(spec.nodes):
            name = self.topology.node_name(i)
            nodes[name] = NodeResult(
                name=name,
                workload=self.engine.template_name(i),
                duration_s=float(store.up_ticks[i]) * sc.tick_s,
                instructions=0.0,
                energy_j=float(store.energy_j[i]),
                final_limit_w=float(store.applied_w[i]),
                crashes=int(store.crashes[i]),
            )
        lat = np.array(self._realloc_latencies or [0.0])
        degraded_ticks = self._counters["degraded_ticks"]
        return ClusterResult(
            total_budget_w=spec.budget_w,
            nodes=nodes,
            power_series=tuple(self._power_series),
            makespan_s=self.tick * sc.tick_s,
            degraded=degraded_ticks > 0,
            degraded_ticks=degraded_ticks,
            n_nodes=spec.nodes,
            ticks=self.tick,
            tick_s=sc.tick_s,
            reallocations=self._counters["reallocations"],
            subtree_reallocations=self._counters["subtree_reallocations"],
            crashes=self._counters["crashes"],
            restarts=self._counters["restarts"],
            finishes=self._counters["finishes"],
            stale_episodes=self._counters["stale_episodes"],
            infeasible_events=self._counters["infeasible_events"],
            outage_ticks=self._counters["outage_ticks"],
            realloc_latency_mean_s=float(lat.mean()),
            realloc_latency_p99_s=float(np.percentile(lat, 99)),
            realloc_latency_max_s=float(lat.max()),
            wall_s=wall_s,
            nodes_x_ticks_per_s=(
                spec.nodes * ticks_run / wall_s if wall_s > 0 else 0.0
            ),
            demand_satisfaction=(
                self._sum_draw_j / self._sum_wanted_j
                if self._sum_wanted_j > 0 else 1.0
            ),
        )

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> Path:
        """Durably capture the complete run state (atomic, crash-safe).

        ``state.pkl`` lands first, then the manifest referencing it --
        a reader that sees the manifest is guaranteed a complete state
        file, so a SIGKILL between the two writes loses at most one
        checkpoint interval, never corrupts one.
        """
        if self._checkpoint_dir is None:
            raise CheckpointError("controller has no checkpoint directory")
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        state = {
            "tick": self.tick,
            "store": self.store.state_dict(),
            "tree": self.tree.state_dict(),
            "rng_churn": self._rng_churn,
            "rng_loss": self._rng_loss,
            "rng_noise": self._rng_noise,
            "finish_tick": self._finish_tick,
            "outage_rack": self._outage_rack,
            "partition_rack": self._partition_rack,
            "outage_active": self._outage_active,
            "partition_active": self._partition_active,
            "partition_since_s": self._partition_since_s,
            "partition_shed": self._partition_shed,
            "frozen_reserve_w": self._frozen_reserve_w,
            "pending_redistributions": self._pending_redistributions,
            "power_series": self._power_series,
            "realloc_latencies": self._realloc_latencies,
            "counters": self._counters,
            "sum_draw_j": self._sum_draw_j,
            "sum_wanted_j": self._sum_wanted_j,
            "initialized": self._initialized,
        }
        atomic_write_bytes(
            self._checkpoint_dir / _STATE,
            pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
        )
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "spec": self.spec.to_dict(),
            "tick": self.tick,
            "state_file": _STATE,
        }
        atomic_write_text(
            self._checkpoint_dir / _MANIFEST,
            json.dumps(manifest, indent=2, sort_keys=True),
        )
        return self._checkpoint_dir / _MANIFEST

    @classmethod
    def resume(
        cls,
        checkpoint_dir: str | Path,
        telemetry: TelemetryRecorder | None = None,
    ) -> "HierarchicalFleetController":
        """Rebuild a controller bit-identical to the checkpointed one."""
        checkpoint_dir = Path(checkpoint_dir)
        manifest_path = checkpoint_dir / _MANIFEST
        if not manifest_path.exists():
            raise CheckpointError(
                f"no fleet checkpoint manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unsupported checkpoint format "
                f"{manifest.get('format')!r} (expected "
                f"{CHECKPOINT_FORMAT!r})"
            )
        spec = FleetSpec.from_dict(manifest["spec"])
        state_path = checkpoint_dir / manifest["state_file"]
        try:
            state = pickle.loads(state_path.read_bytes())
        except Exception as exc:
            raise CheckpointError(
                f"unreadable fleet checkpoint state at {state_path}: "
                f"{exc}"
            ) from exc
        ctl = cls(spec, telemetry=telemetry,
                  checkpoint_dir=checkpoint_dir)
        ctl.tick = state["tick"]
        ctl.store.load_state(state["store"])
        ctl.tree.load_state(state["tree"])
        ctl._rng_churn = state["rng_churn"]
        ctl._rng_loss = state["rng_loss"]
        ctl._rng_noise = state["rng_noise"]
        ctl._finish_tick = state["finish_tick"]
        ctl._outage_rack = state["outage_rack"]
        ctl._partition_rack = state["partition_rack"]
        ctl._outage_active = state["outage_active"]
        ctl._partition_active = state["partition_active"]
        ctl._partition_since_s = state["partition_since_s"]
        ctl._partition_shed = state["partition_shed"]
        ctl._frozen_reserve_w = state["frozen_reserve_w"]
        ctl._pending_redistributions = state["pending_redistributions"]
        ctl._power_series = list(state["power_series"])
        ctl._realloc_latencies = list(state["realloc_latencies"])
        ctl._counters = dict(state["counters"])
        ctl._sum_draw_j = state["sum_draw_j"]
        ctl._sum_wanted_j = state["sum_wanted_j"]
        ctl._initialized = state["initialized"]
        return ctl


def fleet_result_digest(result: ClusterResult) -> dict:
    """A float-exact, wall-clock-free digest for chaos comparisons.

    Two runs of the same spec -- one uninterrupted, one SIGKILLed and
    resumed -- must produce byte-identical digests; wall-time-derived
    metrics (latency, throughput) are deliberately excluded.
    """
    import hashlib

    power = np.array([w for _, w in result.power_series])
    energy = np.array(sorted(
        (name, node.energy_j) for name, node in result.nodes.items()
    ), dtype=object)
    energy_w = np.array([e for _, e in energy], dtype=np.float64)
    return {
        "n_nodes": result.n_nodes,
        "ticks": result.ticks,
        "total_budget_w": result.total_budget_w,
        "power_sha256": hashlib.sha256(power.tobytes()).hexdigest(),
        "energy_sha256": hashlib.sha256(energy_w.tobytes()).hexdigest(),
        "mean_fleet_power_w": result.mean_fleet_power_w,
        "violation_fraction": result.budget_violation_fraction(),
        "crashes": result.crashes,
        "restarts": result.restarts,
        "finishes": result.finishes,
        "stale_episodes": result.stale_episodes,
        "infeasible_events": result.infeasible_events,
        "outage_ticks": result.outage_ticks,
        "degraded_ticks": result.degraded_ticks,
        "reallocations": result.reallocations,
        "subtree_reallocations": result.subtree_reallocations,
        "demand_satisfaction": result.demand_satisfaction,
    }


def run_fleet(
    spec: FleetSpec,
    telemetry: TelemetryRecorder | None = None,
    checkpoint_dir: str | Path | None = None,
) -> ClusterResult:
    """Convenience one-shot: build, run, return the result."""
    return HierarchicalFleetController(
        spec, telemetry=telemetry, checkpoint_dir=checkpoint_dir
    ).run()
