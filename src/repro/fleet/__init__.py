"""Shared-budget fleet coordination (the paper's PM situation (i)).

The paper motivates PerformanceMaximizer with "(i) controlling multiple
components with shared power supply/cooling resources" and cites Felter
et al.'s performance-conserving power shifting (its reference [7]).
This subpackage composes those pieces: several simulated machines, each
under its own PM instance, with a coordinator that periodically
redistributes a *total* power budget among them according to an
allocation policy.

* :mod:`repro.fleet.budget`     -- allocation policies (equal share,
  demand-proportional water-filling),
* :mod:`repro.fleet.controller` -- the lock-step fleet run loop.
"""

from repro.fleet.budget import (
    BudgetAllocator,
    DemandProportional,
    EqualShare,
    NodeDemand,
)
from repro.fleet.controller import FleetController, FleetResult, NodeResult

__all__ = [
    "BudgetAllocator",
    "EqualShare",
    "DemandProportional",
    "NodeDemand",
    "FleetController",
    "FleetResult",
    "NodeResult",
]
