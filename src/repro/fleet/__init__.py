"""Shared-budget fleet coordination (the paper's PM situation (i)).

The paper motivates PerformanceMaximizer with "(i) controlling multiple
components with shared power supply/cooling resources" and cites Felter
et al.'s performance-conserving power shifting (its reference [7]).
This subpackage composes those pieces at two scales:

* :mod:`repro.fleet.budget`     -- allocation policies (equal share,
  demand-proportional water-filling) with per-child floors and an
  oversubscription clamp,
* :mod:`repro.fleet.controller` -- the lock-step fleet run loop (a few
  full machines, paper-fidelity),
* :mod:`repro.fleet.hierarchy`  -- the cluster -> rack -> chassis ->
  node budget tree with event-driven reallocation,
* :mod:`repro.fleet.store`      -- array-backed node state scaling to
  10k nodes,
* :mod:`repro.fleet.scenario`   -- fleet traffic (diurnal, flash
  crowd, churn, outage, partition) priced from the scenario corpus,
* :mod:`repro.fleet.cluster`    -- the churn-tolerant hierarchical
  coordinator with durable checkpoint/resume.
"""

from repro.fleet.budget import (
    BudgetAllocator,
    DemandProportional,
    EqualShare,
    NodeDemand,
)
from repro.fleet.cluster import (
    ClusterResult,
    FleetSpec,
    HierarchicalFleetController,
    run_fleet,
)
from repro.fleet.controller import FleetController, FleetResult, NodeResult
from repro.fleet.hierarchy import BudgetTree, Topology
from repro.fleet.scenario import FleetScenario, ScenarioEngine
from repro.fleet.store import NodeState, NodeStore

__all__ = [
    "BudgetAllocator",
    "EqualShare",
    "DemandProportional",
    "NodeDemand",
    "FleetController",
    "FleetResult",
    "NodeResult",
    "Topology",
    "BudgetTree",
    "NodeState",
    "NodeStore",
    "FleetScenario",
    "ScenarioEngine",
    "FleetSpec",
    "ClusterResult",
    "HierarchicalFleetController",
    "run_fleet",
]
