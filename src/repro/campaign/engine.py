"""The campaign engine: store + lease dispatch + graceful degradation.

A :class:`Campaign` turns one :class:`~repro.exec.plan.RunPlan` into a
*resumable* unit of work.  Each invocation:

1. digests every cell (:func:`~repro.campaign.store.cell_digest`) and
   consults the :class:`~repro.campaign.store.ResultStore` -- cached
   cells are served after bit-identity verification, previously
   quarantined cells stay quarantined (``campaign retry`` clears
   them), and only the remainder dispatches;
2. runs the remainder through the :class:`~repro.campaign.dispatch.
   LeaseDispatcher`, durably storing every completed cell *as it
   arrives* and every quarantine record the moment it is decided;
3. returns a :class:`CampaignResult` that is valid even when the run
   was interrupted (SIGINT), timed out, or lost its worker pool --
   ``degraded`` flags any shortfall, and the next invocation resumes
   from the store, executing only what is still missing.

The engine never raises for a failing *cell*; it raises only for an
unusable store or an undispatchable configuration
(:class:`~repro.errors.CampaignError`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.core.controller import RunResult
from repro.exec.plan import RunPlan
from repro.campaign.dispatch import LeaseDispatcher
from repro.campaign.store import ResultStore, campaign_cell_spec, cell_digest
from repro.telemetry.bus import CampaignResumed
from repro.telemetry.recorder import TelemetryRecorder


@dataclass(frozen=True)
class CampaignResult:
    """What one campaign invocation achieved, complete or not.

    ``results`` is in cell order with ``None`` holes for quarantined /
    lost cells.  ``degraded`` is the single flag consumers check: True
    whenever the invocation ended with any cell short of a verified
    result.
    """

    total: int
    #: Indices executed by *this* invocation.
    executed: tuple[int, ...]
    #: Indices served from the store (bit-identity verified).
    cached: tuple[int, ...]
    #: Indices quarantined (this invocation or a previous one).
    quarantined: tuple[int, ...]
    #: Indices with no result: interrupt, timeout, or a dead pool.
    lost: tuple[int, ...]
    #: Whether the invocation was cut short (SIGINT / max_seconds).
    interrupted: bool
    #: Whether this invocation found prior state in the store.
    resumed: bool
    #: Per-cell content digests (cell order).
    digests: tuple[str, ...]
    #: Per-cell results (cell order; None for quarantined/lost cells).
    results: tuple[RunResult | None, ...]

    @property
    def completed(self) -> int:
        """Cells with a verified result (executed + cached)."""
        return len(self.executed) + len(self.cached)

    @property
    def degraded(self) -> bool:
        """Whether anything fell short of a verified result."""
        return bool(self.quarantined or self.lost or self.interrupted)

    def to_dict(self) -> dict:
        """JSON-safe summary (counts and flags; no result payloads)."""
        return {
            "total": self.total,
            "executed": len(self.executed),
            "cached": len(self.cached),
            "quarantined": len(self.quarantined),
            "lost": len(self.lost),
            "completed": self.completed,
            "interrupted": self.interrupted,
            "resumed": self.resumed,
            "degraded": self.degraded,
        }


class Campaign:
    """One plan bound to one store, runnable (and re-runnable)."""

    def __init__(
        self,
        plan: RunPlan,
        store: ResultStore | str | os.PathLike,
        workers: int = 2,
        max_attempts: int = 3,
        lease_s: float = 10.0,
        heartbeat_s: float | None = None,
        backoff_s: float = 0.1,
        max_restarts: int = 16,
        mp_context=None,
        telemetry: TelemetryRecorder | None = None,
        telemetry_root: str | os.PathLike | None = None,
        cell_hook=None,
        max_seconds: float | None = None,
    ):
        self.plan = plan
        self.store = (
            store if isinstance(store, ResultStore) else ResultStore(store)
        )
        self.telemetry = telemetry
        self.dispatcher = LeaseDispatcher(
            workers=workers,
            max_attempts=max_attempts,
            lease_s=lease_s,
            heartbeat_s=heartbeat_s,
            backoff_s=backoff_s,
            max_restarts=max_restarts,
            mp_context=mp_context,
            telemetry=telemetry,
            telemetry_root=telemetry_root,
            cell_hook=cell_hook,
            max_seconds=max_seconds,
        )

    def _publish(self, event) -> None:
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.bus.publish(event)

    def run(self) -> CampaignResult:
        """Execute (or resume) the campaign; always returns a result."""
        plan = self.plan
        store = self.store
        digests = [cell_digest(cell, plan) for cell in plan.cells]
        results: Dict[int, RunResult] = {}
        cached: List[int] = []
        quarantined: List[int] = []
        pending: List[int] = []
        # Identical cells share a digest; dispatch each digest once and
        # alias the result onto every index that asked for it.
        first_index: Dict[str, int] = {}
        aliases: Dict[int, List[int]] = {}
        for index, digest in enumerate(digests):
            if digest in first_index:
                aliases.setdefault(first_index[digest], []).append(index)
                continue
            first_index[digest] = index
            result = store.get(digest)
            if result is not None:
                results[index] = result
                cached.append(index)
            elif store.quarantine_record(digest) is not None:
                quarantined.append(index)
            else:
                pending.append(index)
        resumed = store.preexisting and (bool(cached) or bool(quarantined))
        if resumed:
            self._publish(CampaignResumed(
                time_s=0.0,
                store=store.root,
                total=len(plan.cells),
                cached=len(cached),
                quarantined=len(quarantined),
            ))

        def on_result(index: int, result: RunResult) -> None:
            store.put(
                digests[index],
                campaign_cell_spec(plan.cells[index], plan),
                result,
            )

        def on_quarantine(index: int, record: Mapping) -> None:
            record = dict(record)
            record["digest"] = digests[index]
            record["quarantined_at"] = time.time()
            store.write_quarantine(digests[index], record)

        outcome = self.dispatcher.dispatch(
            plan, pending,
            on_result=on_result, on_quarantine=on_quarantine,
        )
        results.update(outcome.results)
        quarantined.extend(sorted(outcome.quarantined))
        executed = sorted(outcome.results)
        lost = sorted(outcome.lost)
        # Fan shared-digest results (and shortfalls) out to aliases.
        for primary, extra in aliases.items():
            for index in extra:
                if primary in results:
                    results[index] = results[primary]
                    if primary in cached or primary in executed:
                        cached.append(index)
                elif primary in quarantined:
                    quarantined.append(index)
                else:
                    lost.append(index)
        return CampaignResult(
            total=len(plan.cells),
            executed=tuple(executed),
            cached=tuple(sorted(cached)),
            quarantined=tuple(sorted(quarantined)),
            lost=tuple(sorted(lost)),
            interrupted=outcome.interrupted,
            resumed=resumed,
            digests=tuple(digests),
            results=tuple(
                results.get(index) for index in range(len(plan.cells))
            ),
        )

    def retry_quarantined(self) -> int:
        """Clear this plan's quarantine records; returns how many."""
        cleared = 0
        for cell in self.plan.cells:
            if self.store.clear_quarantine(cell_digest(cell, self.plan)):
                cleared += 1
        return cleared


def run_campaign(
    plan: RunPlan, store: ResultStore | str | os.PathLike, **kwargs
) -> CampaignResult:
    """One-shot convenience wrapper around :class:`Campaign`."""
    return Campaign(plan, store, **kwargs).run()
