"""Campaign progress rendering: store contents + telemetry events.

``repro-power campaign status`` is read-only and safe to run while a
campaign is live: the store is consulted for durable facts (verified
result objects, quarantine records) and the campaign's telemetry
directory -- when present -- for the protocol's event stream
(``cell_leased`` / ``lease_expired`` / ``cell_quarantined`` /
``campaign_resumed``), giving a liveness view on top of the durable
counts.
"""

from __future__ import annotations

import json
import os
from typing import List, Mapping

from repro.campaign.store import ResultStore, cell_digest
from repro.exec.plan import RunPlan
from repro.telemetry.exporters import EVENTS_FILENAME

#: Event kinds the campaign protocol emits.
CAMPAIGN_EVENT_KINDS = (
    "campaign_resumed", "cell_leased", "lease_expired", "cell_quarantined",
)

#: How many recent protocol events the rendering shows.
_RECENT = 8


def _read_events(telemetry_dir: str) -> List[dict]:
    """Campaign-protocol events from ``events.jsonl`` (tolerant)."""
    path = os.path.join(telemetry_dir, EVENTS_FILENAME)
    if not os.path.exists(path):
        return []
    events: List[dict] = []
    try:
        with open(path, errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn tail of a live writer
                if (
                    isinstance(event, dict)
                    and event.get("kind") in CAMPAIGN_EVENT_KINDS
                ):
                    events.append(event)
    except OSError:
        return []
    return events


def campaign_status(
    store_root: str | os.PathLike,
    telemetry_dir: str | os.PathLike | None = None,
    plan: RunPlan | None = None,
) -> dict:
    """A JSON-safe snapshot of a campaign's progress.

    With ``plan``, cells are matched against the store by digest so the
    snapshot carries exact done/quarantined/remaining counts; without
    it, the store-wide object and quarantine counts stand alone.
    Read-only: a directory that is not a store raises
    :class:`~repro.errors.CampaignError` instead of being initialized.
    """
    store = ResultStore(store_root, create=False)
    telemetry_dir = (
        os.fspath(telemetry_dir)
        if telemetry_dir is not None
        else os.path.join(store.root, "telemetry")
    )
    quarantine = []
    for digest in store.quarantined_digests():
        record = store.quarantine_record(digest) or {}
        quarantine.append({
            "digest": digest,
            "cell": record.get("cell", "?"),
            "attempts": record.get("attempts"),
            "permanent": record.get("permanent"),
            "error": record.get("error", ""),
        })
    events = _read_events(telemetry_dir)
    counts = {kind: 0 for kind in CAMPAIGN_EVENT_KINDS}
    for event in events:
        counts[event["kind"]] += 1
    out: dict = {
        "store": store.root,
        "objects": len(store.object_digests()),
        "quarantined": quarantine,
        "event_counts": counts,
        "recent_events": events[-_RECENT:],
    }
    if plan is not None:
        digests = [cell_digest(cell, plan) for cell in plan.cells]
        done = sum(1 for digest in digests if store.has(digest))
        quarantined = sum(
            1 for digest in digests
            if store.quarantine_record(digest) is not None
        )
        out["plan"] = {
            "total": len(digests),
            "done": done,
            "quarantined": quarantined,
            "remaining": len(digests) - done - quarantined,
        }
    return out


def _render_event(event: Mapping) -> str:
    kind = event.get("kind")
    t = event.get("time_s", 0.0)
    if kind == "cell_leased":
        return (
            f"  t={t:7.2f}s  leased      {event.get('cell')} "
            f"(worker {event.get('worker')}, attempt {event.get('attempt')})"
        )
    if kind == "lease_expired":
        return (
            f"  t={t:7.2f}s  re-issue    {event.get('cell')} "
            f"[{event.get('reason')}] retry in {event.get('retry_in_s'):.2f}s"
        )
    if kind == "cell_quarantined":
        tag = "permanent" if event.get("permanent") else (
            f"after {event.get('attempts')} attempts"
        )
        return (
            f"  t={t:7.2f}s  QUARANTINE  {event.get('cell')} ({tag}): "
            f"{event.get('error', '')[:60]}"
        )
    if kind == "campaign_resumed":
        return (
            f"  t={t:7.2f}s  resumed     {event.get('cached')} cached, "
            f"{event.get('quarantined')} quarantined of "
            f"{event.get('total')} cells"
        )
    return f"  t={t:7.2f}s  {kind}"


def render_status(data: Mapping) -> str:
    """Human-readable rendering of :func:`campaign_status` output."""
    lines = [
        f"campaign store: {data['store']}",
        f"  result objects: {data['objects']}   "
        f"quarantined: {len(data['quarantined'])}",
    ]
    plan = data.get("plan")
    if plan:
        lines.append(
            f"  plan: {plan['done']}/{plan['total']} done, "
            f"{plan['quarantined']} quarantined, "
            f"{plan['remaining']} remaining"
        )
    counts = data.get("event_counts", {})
    if any(counts.values()):
        lines.append(
            "  events: "
            + "  ".join(
                f"{kind}={counts[kind]}"
                for kind in CAMPAIGN_EVENT_KINDS
                if counts.get(kind)
            )
        )
    if data["quarantined"]:
        lines.append("")
        lines.append("quarantine:")
        for entry in data["quarantined"]:
            tag = "permanent" if entry.get("permanent") else (
                f"{entry.get('attempts')} attempts"
            )
            lines.append(
                f"  {entry['digest'][:12]}  {entry['cell']:28} "
                f"({tag})  {entry.get('error', '')[:50]}"
            )
        lines.append("  (clear with: repro-power campaign retry)")
    recent = data.get("recent_events", [])
    if recent:
        lines.append("")
        lines.append("recent protocol events:")
        lines.extend(_render_event(event) for event in recent)
    return "\n".join(lines)
