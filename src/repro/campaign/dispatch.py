"""Lease-based cell dispatch: heartbeats, reaping, bounded re-issue.

The campaign pool replaces the :class:`~repro.exec.runner.
ParallelRunner`'s fire-and-forget claims with *leases*.  A worker that
picks up a cell sends a lease message and then keeps the lease alive
from a background heartbeat thread while the cell executes; the
coordinator tracks one expiry deadline per lease and treats three
distinct conditions as a failed attempt:

* ``crashed`` -- the leaseholder process died (SIGKILL, OOM, segfault);
* ``expired`` -- the leaseholder stopped heartbeating for a full lease
  term (hung, livelocked, or unreachable);
* ``failed``  -- the attempt raised a transient exception.

Failed attempts are re-issued with :class:`~repro.supervise.
RetryPolicy`-style bounded exponential backoff (zero jitter, so retry
timing is deterministic given the failure sequence).  A cell that
fails *permanently* (:func:`~repro.supervise.is_permanent_error`: a
malformed plan, an unknown workload -- classified in the worker, which
holds the live exception) or exhausts ``max_attempts`` is
**quarantined** with its complete failure history, and the campaign
continues; one poison cell can no longer take down a 10k-cell sweep.

Every protocol step publishes a typed telemetry event
(:class:`~repro.telemetry.bus.CellLeased`, :class:`~repro.telemetry.
bus.LeaseExpired`, :class:`~repro.telemetry.bus.CellQuarantined`) with
wall-clock timestamps relative to dispatch start, mirroring
:class:`~repro.supervise.Supervisor`'s convention.

Like the parallel runner, workers report over per-worker pipes (a
``Connection.send`` completes in the calling thread, so a lease is
observable even if the worker is SIGKILLed on the next instruction),
and the coordinator closes the dequeue-to-lease hole with an idle
re-issue sweep -- safe because cells are deterministic and duplicate
completions are ignored.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Sequence

from repro.core.controller import RunResult
from repro.errors import CampaignError
from repro.exec import cache
from repro.exec.core import execute_cell
from repro.exec.plan import RunPlan
from repro.exec.runner import default_mp_context
from repro.supervise import RetryPolicy, is_permanent_error
from repro.telemetry.bus import CellLeased, CellQuarantined, LeaseExpired
from repro.telemetry.recorder import TelemetryRecorder

#: Pipe-poll interval; lease expiry and retry release are checked
#: between quiet polls.
_POLL_S = 0.05

#: Quiet seconds before unleased outstanding cells are re-issued.
_REISSUE_IDLE_S = 2.0

#: Sentinel telling a worker to exit.
_STOP = None


def _beat_loop(send, index: int, stop: threading.Event,
               heartbeat_s: float) -> None:
    """Heartbeat thread body: renew the lease until the cell finishes."""
    while not stop.wait(heartbeat_s):
        try:
            send(("beat", index, None))
        except (BrokenPipeError, OSError):  # parent gone; cell will notice
            return


def _worker_main(worker_id: int, payload: dict, task_q, conn) -> None:
    """Worker loop: lease cells, heartbeat while executing, report.

    Runs in the child process.  All sends share one lock because the
    heartbeat thread and the main thread write the same pipe.
    """
    cache.install_caches(payload["caches"])
    plan: RunPlan = payload["plan"]
    heartbeat_s: float = payload["heartbeat_s"]
    hook = payload["cell_hook"]
    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    recorder = None
    sink = None
    root = payload["telemetry_root"]
    if root:
        from repro.telemetry.exporters import TelemetryDirectory

        base = os.path.join(root, f"worker-{worker_id:02d}")
        path = base
        attempt = 1
        while os.path.exists(path):  # earlier dispatches in one session
            path = f"{base}.{attempt}"
            attempt += 1
        recorder = TelemetryRecorder()
        sink = TelemetryDirectory(path)
        sink.attach(recorder)
    try:
        while True:
            index = task_q.get()
            if index is _STOP:
                break
            send(("lease", index, None))
            stop = threading.Event()
            beater = threading.Thread(
                target=_beat_loop,
                args=(send, index, stop, heartbeat_s),
                daemon=True,
            )
            beater.start()
            try:
                if hook is not None:
                    hook(index)
                result = execute_cell(
                    plan.cells[index],
                    plan.config,
                    telemetry=recorder,
                    fault_plan=plan.fault_plan,
                    adaptation=plan.adaptation,
                    resilience=plan.resilience,
                    use_ambient=False,
                )
            except BaseException as error:  # noqa: BLE001 - shipped upward
                stop.set()
                beater.join()
                send((
                    "error",
                    index,
                    (
                        f"{type(error).__name__}: {error}",
                        traceback.format_exc(),
                        is_permanent_error(error),
                    ),
                ))
                continue
            stop.set()
            beater.join()
            send(("done", index, result))
    except (BrokenPipeError, OSError):  # parent is gone; die quietly
        pass
    finally:
        if sink is not None:
            sink.finalize(recorder)
        conn.close()


@dataclass
class Lease:
    """Coordinator-side record of one issued cell lease."""

    index: int
    worker: int
    attempt: int
    expires_at: float


@dataclass
class CellFailure:
    """One failed attempt in a cell's history."""

    attempt: int
    reason: str  # "failed" | "crashed" | "expired"
    error: str

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "reason": self.reason,
            "error": self.error,
        }


@dataclass
class DispatchOutcome:
    """Everything one dispatch pass produced."""

    results: Dict[int, RunResult] = field(default_factory=dict)
    quarantined: Dict[int, dict] = field(default_factory=dict)
    lost: set = field(default_factory=set)
    interrupted: bool = False


class _PoolWorker:
    """Parent-side record of one worker process."""

    __slots__ = ("process", "conn", "eof", "wid")

    def __init__(self, process, conn, wid: int):
        self.process = process
        self.conn = conn
        self.eof = False
        self.wid = wid


class LeaseDispatcher:
    """Coordinates one campaign's pending cells over a worker pool."""

    def __init__(
        self,
        workers: int,
        max_attempts: int = 3,
        lease_s: float = 10.0,
        heartbeat_s: float | None = None,
        backoff_s: float = 0.1,
        backoff_factor: float = 2.0,
        max_restarts: int = 16,
        mp_context: multiprocessing.context.BaseContext | str | None = None,
        telemetry: TelemetryRecorder | None = None,
        telemetry_root: str | os.PathLike | None = None,
        cell_hook: Callable[[int], None] | None = None,
        max_seconds: float | None = None,
    ):
        if workers < 1:
            raise CampaignError("campaigns need at least one worker")
        if max_attempts < 1:
            raise CampaignError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if lease_s <= 0:
            raise CampaignError(f"lease_s must be positive, got {lease_s}")
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self.workers = workers
        self.max_attempts = max_attempts
        self.lease_s = lease_s
        self.heartbeat_s = (
            heartbeat_s if heartbeat_s is not None else lease_s / 4.0
        )
        # Zero jitter: retry timing is deterministic given the failures.
        self.retry_policy = RetryPolicy(
            max_attempts=max(2, max_attempts),
            backoff_s=backoff_s,
            backoff_factor=backoff_factor,
            jitter_fraction=0.0,
        )
        self.max_restarts = max_restarts
        self.context = mp_context or default_mp_context()
        self._tel = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self.telemetry_root = (
            os.fspath(telemetry_root) if telemetry_root is not None else None
        )
        self._cell_hook = cell_hook
        self.max_seconds = max_seconds
        #: Replacement workers started after crashes.
        self.restarts = 0
        #: Lease re-issues (crash + expiry + transient failure).
        self.reissues = 0

    # -- internals ---------------------------------------------------------

    def _publish(self, event) -> None:
        if self._tel is not None:
            self._tel.bus.publish(event)

    def _prime(self, plan: RunPlan, indices: Sequence[int]) -> None:
        """Warm the parent caches, tolerating poison cells.

        A cell whose workload spec cannot resolve (the classic poison
        cell) must fail *in its worker*, where the failure is leased,
        classified and quarantined -- never abort priming for the
        healthy rest of the plan.
        """
        for index in indices:
            cell = plan.cells[index]
            try:
                if (
                    isinstance(cell.governor.power_model, str)
                    and cell.governor.power_model == "trained"
                ):
                    cache.trained_power_model(seed=plan.config.seed)
                from repro.workloads.registry import is_workload_spec

                if is_workload_spec(cell.workload):
                    cache.spec_workload(cell.workload)
            except Exception:  # noqa: BLE001 - the worker will report it
                continue

    def _spawn(self, worker_id: int, payload: dict, task_q) -> _PoolWorker:
        parent_conn, child_conn = self.context.Pipe(duplex=False)
        process = self.context.Process(
            target=_worker_main,
            args=(worker_id, payload, task_q, child_conn),
            daemon=True,
            name=f"repro-campaign-{worker_id}",
        )
        process.start()
        child_conn.close()
        return _PoolWorker(process, parent_conn, worker_id)

    # -- the protocol ------------------------------------------------------

    def dispatch(
        self,
        plan: RunPlan,
        indices: Sequence[int],
        on_result: Callable[[int, RunResult], None] | None = None,
        on_quarantine: Callable[[int, dict], None] | None = None,
    ) -> DispatchOutcome:
        """Run ``plan.cells[i]`` for every ``i`` in ``indices``.

        ``on_result`` / ``on_quarantine`` fire in the coordinator the
        moment a cell reaches that terminal state (the campaign engine
        uses them to write the store durably per cell, so an interrupt
        one second later loses nothing).  Returns a
        :class:`DispatchOutcome`; cells still non-terminal after an
        interrupt or the ``max_seconds`` deadline are in ``lost``.
        """
        outcome = DispatchOutcome()
        if not indices:
            return outcome
        self._prime(plan, indices)
        payload = {
            "plan": plan,
            "caches": cache.export_caches(),
            "heartbeat_s": self.heartbeat_s,
            "telemetry_root": self.telemetry_root,
            "cell_hook": self._cell_hook,
        }
        task_q = self.context.Queue()
        for index in indices:
            task_q.put(index)
        count = min(self.workers, len(indices))
        workers: Dict[int, _PoolWorker] = {
            wid: self._spawn(wid, payload, task_q) for wid in range(count)
        }
        state = {
            "outstanding": set(indices),
            "leases": {},        # index -> Lease
            "attempts": {},      # index -> lease count so far
            "failures": {},      # index -> [CellFailure, ...]
            "retry_at": {},      # index -> wall clock release time
            "outcome": outcome,
            "plan": plan,
            "on_result": on_result,
            "on_quarantine": on_quarantine,
            "task_q": task_q,
            "start": time.monotonic(),
            "progressed": False,
        }
        next_id = count
        idle_s = 0.0
        reissued_idle = False
        try:
            while state["outstanding"]:
                now = time.monotonic()
                if (
                    self.max_seconds is not None
                    and now - state["start"] >= self.max_seconds
                ):
                    outcome.interrupted = True
                    break
                self._release_due_retries(state, now)
                conns = [w.conn for w in workers.values() if not w.eof]
                if conns:
                    ready = mp_connection.wait(conns, timeout=_POLL_S)
                else:
                    ready = []
                    time.sleep(_POLL_S)
                state["progressed"] = False
                by_conn = {w.conn: w for w in workers.values()}
                for conn in ready:
                    self._drain(by_conn[conn], state)
                self._expire_leases(state)
                next_id = self._reap_crashed(
                    workers, payload, task_q, next_id, state
                )
                if state["outstanding"] and not workers:
                    # The pool is gone and cannot be refilled: every
                    # non-terminal cell (queued, leased, or waiting on
                    # a retry) is unreachable.  Degrade, don't raise.
                    outcome.lost |= state["outstanding"]
                    state["outstanding"].clear()
                    break
                if state["progressed"]:
                    idle_s = 0.0
                    reissued_idle = False
                    continue
                idle_s += _POLL_S
                if (
                    state["outstanding"]
                    and not reissued_idle
                    and idle_s >= _REISSUE_IDLE_S
                ):
                    reissued_idle = self._reissue_unleased(workers, state)
            for worker in workers.values():
                if worker.process.is_alive():
                    task_q.put(_STOP)
            for worker in workers.values():
                worker.process.join(timeout=10)
        except KeyboardInterrupt:
            outcome.interrupted = True
        finally:
            outcome.lost |= state["outstanding"]
            for worker in workers.values():
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5)
                worker.conn.close()
            task_q.close()
        return outcome

    # -- coordinator steps -------------------------------------------------

    def _now_s(self, state: dict) -> float:
        return time.monotonic() - state["start"]

    def _release_due_retries(self, state: dict, now: float) -> None:
        due = [i for i, t in state["retry_at"].items() if t <= now]
        for index in due:
            del state["retry_at"][index]
            if index in state["outstanding"]:
                state["task_q"].put(index)

    def _drain(self, worker: _PoolWorker, state: dict) -> None:
        """Handle every message currently readable from one worker."""
        wid = worker.wid
        while True:
            try:
                if not worker.conn.poll():
                    return
                kind, index, body = worker.conn.recv()
            except (EOFError, OSError):
                worker.eof = True
                return
            state["progressed"] = True
            if kind == "lease":
                if index not in state["outstanding"]:
                    continue  # late duplicate of a terminal cell
                attempt = state["attempts"].get(index, 0) + 1
                state["attempts"][index] = attempt
                state["leases"][index] = Lease(
                    index=index,
                    worker=wid,
                    attempt=attempt,
                    expires_at=time.monotonic() + self.lease_s,
                )
                self._publish(CellLeased(
                    time_s=self._now_s(state),
                    cell=state["plan"].cells[index].label,
                    index=index,
                    worker=wid,
                    attempt=attempt,
                ))
            elif kind == "beat":
                lease = state["leases"].get(index)
                if lease is not None and lease.worker == wid:
                    lease.expires_at = time.monotonic() + self.lease_s
            elif kind == "done":
                state["leases"].pop(index, None)
                if index not in state["outstanding"]:
                    continue  # duplicate completion: first wins
                state["outstanding"].discard(index)
                state["outcome"].results[index] = body
                if state["on_result"] is not None:
                    state["on_result"](index, body)
            else:  # "error"
                state["leases"].pop(index, None)
                summary, tb, permanent = body
                self._record_failure(
                    state, index, wid,
                    reason="failed", error=summary, permanent=permanent,
                    detail=tb,
                )

    def _expire_leases(self, state: dict) -> None:
        now = time.monotonic()
        for index, lease in list(state["leases"].items()):
            if now <= lease.expires_at:
                continue
            del state["leases"][index]
            self._record_failure(
                state, index, lease.worker,
                reason="expired",
                error=(
                    f"lease expired after {self.lease_s:.1f}s without a "
                    "heartbeat"
                ),
            )

    def _reap_crashed(
        self, workers: Dict[int, _PoolWorker], payload: dict, task_q,
        next_id: int, state: dict,
    ) -> int:
        for wid, worker in list(workers.items()):
            if worker.process.is_alive():
                continue
            self._drain(worker, state)  # anything buffered before death
            worker.conn.close()
            del workers[wid]
            held = [
                lease for lease in state["leases"].values()
                if lease.worker == wid
            ]
            for lease in held:
                del state["leases"][lease.index]
                self._record_failure(
                    state, lease.index, wid,
                    reason="crashed",
                    error=(
                        f"worker {wid} died "
                        f"(exit {worker.process.exitcode})"
                    ),
                )
            if not held and worker.process.exitcode == 0:
                continue  # clean early exit: nothing was in flight
            if self.restarts >= self.max_restarts:
                continue  # pool shrinks; dispatch degrades if it empties
            self.restarts += 1
            workers[next_id] = self._spawn(next_id, payload, task_q)
            next_id += 1
        return next_id

    def _reissue_unleased(self, workers, state: dict) -> bool:
        """Close the dequeue-to-lease hole, exactly like the runner."""
        leased = set(state["leases"])
        waiting = set(state["retry_at"])
        candidates = sorted(
            state["outstanding"] - leased - waiting
        )
        idle_worker = any(
            not any(
                lease.worker == wid for lease in state["leases"].values()
            )
            for wid in workers
        )
        if not candidates or not idle_worker:
            return False
        for index in candidates:
            state["task_q"].put(index)
        self.reissues += len(candidates)
        return True

    def _record_failure(
        self, state: dict, index: int, wid: int, reason: str, error: str,
        permanent: bool = False, detail: str = "",
    ) -> None:
        if index not in state["outstanding"]:
            return
        attempt = state["attempts"].get(index, 0)
        history: List[CellFailure] = state["failures"].setdefault(index, [])
        history.append(
            CellFailure(attempt=max(attempt, 1), reason=reason, error=error)
        )
        label = state["plan"].cells[index].label
        if permanent or attempt >= self.max_attempts:
            state["outstanding"].discard(index)
            record = {
                "cell": label,
                "index": index,
                "attempts": max(attempt, 1),
                "permanent": permanent,
                "error": error,
                "failures": [f.to_dict() for f in history],
            }
            if detail:
                record["traceback"] = detail
            state["outcome"].quarantined[index] = record
            self._publish(CellQuarantined(
                time_s=self._now_s(state),
                cell=label,
                index=index,
                attempts=max(attempt, 1),
                permanent=permanent,
                error=error,
            ))
            if state["on_quarantine"] is not None:
                state["on_quarantine"](index, record)
            return
        delay = self.retry_policy.delay_for_attempt(max(attempt, 1))
        state["retry_at"][index] = time.monotonic() + delay
        self.reissues += 1
        self._publish(LeaseExpired(
            time_s=self._now_s(state),
            cell=label,
            index=index,
            worker=wid,
            reason=reason,
            retry_in_s=delay,
        ))
