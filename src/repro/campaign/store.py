"""Content-addressed on-disk result store for campaigns.

Every :class:`~repro.exec.plan.RunCell` is keyed by a SHA-256 digest of
its *canonical spec*: the cell's serialized form plus every plan-wide
input that shapes its result (experiment config fields, fault plan,
adaptation, resilience, and -- for ``trace:`` workloads -- the trace
file's content hash).  Because cells are deterministic functions of
exactly that data, a digest identifies a result: re-running a sweep
looks each cell up first and executes only the misses, and editing any
input (a scale, a trace CSV byte, a governor knob) changes the digest
and therefore transparently invalidates the cached result.

Objects are pickles of ``{"spec", "result", "result_digest"}`` written
with :func:`repro.ioutils.atomic_write_bytes`, so a SIGKILL mid-store
leaves either the complete old object or the complete new one.  Cache
reads are *verified*: :meth:`ResultStore.get` recomputes
:func:`~repro.checkpoint.digest.run_result_digest` over the unpickled
result and compares it to the digest stored at put time -- a cache hit
is provably bit-identical to the original execution, not just
plausibly so.

Quarantine records (cells that exhausted their retry budget, or failed
permanently) live beside the objects as human-readable JSON carrying
the full failure history; ``campaign retry`` deletes them to make the
cells eligible again.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from typing import List, Mapping

from repro.checkpoint.digest import run_result_digest
from repro.core.controller import RunResult
from repro.errors import CampaignError
from repro.exec.cache import file_sha256
from repro.exec.plan import RunCell, RunPlan, _CONFIG_FIELDS
from repro.ioutils import atomic_write_bytes, atomic_write_text
from repro.platform.machine import MachineConfig

#: Store layout version (bump on any incompatible change to the spec
#: canonicalization or the object payload).
STORE_FORMAT_VERSION = 1

#: Marker file identifying a directory as a campaign store.
STORE_MANIFEST = "store.json"

#: Subdirectory holding result objects (``<digest>.pkl``).
OBJECTS_DIR = "objects"

#: Subdirectory holding quarantine records (``<digest>.json``).
QUARANTINE_DIR = "quarantine"


def campaign_cell_spec(cell: RunCell, plan: RunPlan) -> dict:
    """The canonical JSON-safe spec one cell's digest is computed over.

    Carries everything that determines the cell's result and nothing
    that does not (worker identity, dispatch order and wall-clock
    timing never appear).  ``trace:`` workloads additionally pin the
    trace file's content hash, so a touched-but-identical file keeps
    its digest while a single changed byte invalidates it.
    """
    if plan.config.machine != MachineConfig():
        raise CampaignError(
            "campaigns require a serializable plan (default machine "
            "config); bespoke platform models cannot be content-addressed"
        )
    spec: dict = {
        "format": STORE_FORMAT_VERSION,
        "cell": cell.to_dict(),
        "config": {key: getattr(plan.config, key) for key in _CONFIG_FIELDS},
    }
    if cell.fault_plan is None and plan.fault_plan is not None:
        spec["fault_plan"] = plan.fault_plan.to_dict()
    if cell.adaptation is None and plan.adaptation is not None:
        spec["adaptation"] = dataclasses.asdict(plan.adaptation)
    if cell.resilience is None and plan.resilience is not None:
        spec["resilience"] = dataclasses.asdict(plan.resilience)
    workload = cell.workload
    if isinstance(workload, str) and workload.startswith("trace:"):
        path = workload.partition(":")[2]
        try:
            spec["workload_sha256"] = file_sha256(path)
        except OSError:
            # Resolution will raise the pointed WorkloadError in the
            # worker; the digest still has to exist so the failure can
            # be quarantined under it.
            spec["workload_sha256"] = None
    return spec


def cell_digest(cell: RunCell, plan: RunPlan) -> str:
    """SHA-256 hex digest of the cell's canonical spec."""
    blob = json.dumps(
        campaign_cell_spec(cell, plan), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultStore:
    """A directory of verified, content-addressed cell results."""

    def __init__(self, root: str | os.PathLike, create: bool = True):
        self.root = os.path.abspath(os.fspath(root))
        self.objects_dir = os.path.join(self.root, OBJECTS_DIR)
        self.quarantine_dir = os.path.join(self.root, QUARANTINE_DIR)
        manifest_path = os.path.join(self.root, STORE_MANIFEST)
        if not create and not os.path.exists(manifest_path):
            raise CampaignError(
                f"{self.root} is not a campaign store "
                f"(no {STORE_MANIFEST}); run 'campaign run' first"
            )
        if os.path.exists(manifest_path):
            try:
                with open(manifest_path) as handle:
                    manifest = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                raise CampaignError(
                    f"unreadable store manifest {manifest_path}: {error}"
                ) from None
            if not isinstance(manifest, dict) or manifest.get(
                "kind"
            ) != "repro-campaign-store":
                raise CampaignError(
                    f"{self.root} is not a campaign store "
                    f"(bad manifest {STORE_MANIFEST})"
                )
            if manifest.get("format") != STORE_FORMAT_VERSION:
                raise CampaignError(
                    f"store {self.root} has format "
                    f"{manifest.get('format')!r}; this build reads "
                    f"{STORE_FORMAT_VERSION}"
                )
            self.preexisting = True
        else:
            if os.path.isdir(self.root) and os.listdir(self.root):
                raise CampaignError(
                    f"refusing to initialize a store in non-empty "
                    f"directory {self.root} (no {STORE_MANIFEST} found)"
                )
            os.makedirs(self.root, exist_ok=True)
            atomic_write_text(
                manifest_path,
                json.dumps(
                    {
                        "kind": "repro-campaign-store",
                        "format": STORE_FORMAT_VERSION,
                    },
                    indent=2,
                )
                + "\n",
            )
            self.preexisting = False
        os.makedirs(self.objects_dir, exist_ok=True)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        #: Objects dropped because they failed to unpickle (torn or
        #: foreign files); such cells simply re-execute.
        self.unreadable = 0

    # -- result objects ----------------------------------------------------

    def _object_path(self, digest: str) -> str:
        return os.path.join(self.objects_dir, f"{digest}.pkl")

    def has(self, digest: str) -> bool:
        """Whether a result object exists for ``digest``."""
        return os.path.exists(self._object_path(digest))

    def put(self, digest: str, spec: Mapping, result: RunResult) -> Mapping:
        """Durably store ``result`` under ``digest``; returns its
        :func:`run_result_digest` (computed once, stored alongside)."""
        result_digest = run_result_digest(result)
        payload = pickle.dumps(
            {"spec": dict(spec), "result": result,
             "result_digest": result_digest},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        atomic_write_bytes(self._object_path(digest), payload)
        return result_digest

    def load(self, digest: str) -> dict | None:
        """The raw object payload for ``digest`` (None when absent or
        unreadable; unreadable objects are counted on ``unreadable``)."""
        path = self._object_path(digest)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if not isinstance(payload, dict) or "result" not in payload:
                raise ValueError("not a campaign object")
        except Exception:  # noqa: BLE001 - treat damage as a cache miss
            self.unreadable += 1
            return None
        return payload

    def get(self, digest: str, verify: bool = True) -> RunResult | None:
        """The cached result for ``digest``, bit-identity verified.

        ``verify`` recomputes :func:`run_result_digest` over the loaded
        result and compares it to the digest recorded at put time; a
        mismatch means the object no longer reproduces the execution it
        claims to cache and raises :class:`CampaignError` rather than
        silently serving corrupt data.
        """
        payload = self.load(digest)
        if payload is None:
            return None
        result = payload["result"]
        if verify:
            recomputed = run_result_digest(result)
            if recomputed != payload.get("result_digest"):
                raise CampaignError(
                    f"store object {digest[:12]} failed bit-identity "
                    "verification (stored run_result_digest does not "
                    "match the unpickled result)"
                )
        return result

    def result_digest(self, digest: str) -> Mapping | None:
        """The stored ``run_result_digest`` for ``digest`` (or None)."""
        payload = self.load(digest)
        return None if payload is None else payload.get("result_digest")

    def object_digests(self) -> List[str]:
        """Digests of every stored result object, sorted."""
        return sorted(
            name[: -len(".pkl")]
            for name in os.listdir(self.objects_dir)
            if name.endswith(".pkl")
        )

    # -- quarantine --------------------------------------------------------

    def _quarantine_path(self, digest: str) -> str:
        return os.path.join(self.quarantine_dir, f"{digest}.json")

    def write_quarantine(self, digest: str, record: Mapping) -> None:
        """Durably record a quarantined cell's failure history."""
        atomic_write_text(
            self._quarantine_path(digest),
            json.dumps(dict(record), indent=2, sort_keys=True) + "\n",
        )

    def quarantine_record(self, digest: str) -> dict | None:
        """The quarantine record for ``digest`` (None when not
        quarantined or the record is unreadable)."""
        path = self._quarantine_path(digest)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def clear_quarantine(self, digest: str) -> bool:
        """Delete ``digest``'s quarantine record (making the cell
        eligible again); returns whether a record existed."""
        try:
            os.remove(self._quarantine_path(digest))
        except FileNotFoundError:
            return False
        return True

    def quarantined_digests(self) -> List[str]:
        """Digests of every quarantined cell, sorted."""
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.quarantine_dir)
            if name.endswith(".json")
        )
