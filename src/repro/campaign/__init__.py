"""Resilient measurement campaigns over the execution engine.

The paper's figures are products of large sweeps -- workloads x
governors x seeds (x threads since the multicore work), thousands of
cells -- and a campaign of that size must tolerate partial failure
rather than restart from zero.  This package layers three guarantees
over :mod:`repro.exec`:

* **nothing finished is ever re-run** -- every completed cell lands in
  a content-addressed :class:`~repro.campaign.store.ResultStore`,
  keyed by a canonical digest of everything that determines its
  result, and cache hits are verified bit-identical via
  :func:`~repro.checkpoint.digest.run_result_digest`;
* **no single cell can take the campaign down** -- dispatch is
  lease-based (:class:`~repro.campaign.dispatch.LeaseDispatcher`):
  heartbeats keep leases alive, the coordinator reaps crashes and
  hangs, re-issues with bounded backoff, and quarantines poison cells
  with their failure history while the rest of the sweep completes;
* **every invocation ends in a valid state** -- SIGINT, a deadline, or
  a dead worker pool yield a :class:`~repro.campaign.engine.
  CampaignResult` flagged ``degraded``, and the next invocation
  resumes from the store, executing only the remainder.

Entry points: :func:`~repro.campaign.engine.run_campaign` /
:class:`~repro.campaign.engine.Campaign` in code, ``repro-power
campaign run|status|retry`` on the command line, and the ``campaign``
chaos drill (``repro-power experiment campaign``) as the standing
proof that kill-and-resume and quarantine-without-abort both hold.
"""

from repro.campaign.dispatch import (
    CellFailure,
    DispatchOutcome,
    LeaseDispatcher,
)
from repro.campaign.engine import Campaign, CampaignResult, run_campaign
from repro.campaign.status import campaign_status, render_status
from repro.campaign.store import (
    STORE_FORMAT_VERSION,
    ResultStore,
    campaign_cell_spec,
    cell_digest,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "CellFailure",
    "DispatchOutcome",
    "LeaseDispatcher",
    "ResultStore",
    "STORE_FORMAT_VERSION",
    "campaign_cell_spec",
    "campaign_status",
    "cell_digest",
    "render_status",
    "run_campaign",
]
