"""Runtime constraint changes (the paper's SIGUSR1/SIGUSR2 mechanism).

The PM prototype "can receive a new power limit at any instant
(implemented as a Unix signal ... delivered to the process), effective
immediately" (§IV-A1).  In the simulated run loop there is no process to
signal, so a :class:`ConstraintSchedule` carries timestamped changes that
the controller delivers between ticks -- same semantics, deterministic
timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.errors import GovernorError


@dataclass(frozen=True)
class ScheduledChange:
    """One constraint change: at ``time_s``, call ``apply(governor)``."""

    time_s: float
    apply: Callable[[object], None]
    label: str = ""


@dataclass(frozen=True)
class _SetPowerLimit:
    """Picklable "set the PM power limit" action (checkpointable)."""

    watts: float

    def __call__(self, governor) -> None:
        governor.set_power_limit(self.watts)


@dataclass(frozen=True)
class _SetPerformanceFloor:
    """Picklable "set the PS performance floor" action (checkpointable)."""

    floor: float

    def __call__(self, governor) -> None:
        governor.set_floor(self.floor)


@dataclass
class ConstraintSchedule:
    """An ordered queue of runtime constraint changes."""

    changes: List[ScheduledChange] = field(default_factory=list)

    def add_power_limit(self, time_s: float, watts: float) -> None:
        """Schedule a PM power-limit change (the SIGUSR analogue)."""
        if time_s < 0:
            raise GovernorError("schedule times must be non-negative")
        self.changes.append(
            ScheduledChange(
                time_s,
                _SetPowerLimit(watts),
                label=f"power_limit={watts}W",
            )
        )
        self.changes.sort(key=lambda c: c.time_s)

    def add_performance_floor(self, time_s: float, floor: float) -> None:
        """Schedule a PS performance-floor change."""
        if time_s < 0:
            raise GovernorError("schedule times must be non-negative")
        self.changes.append(
            ScheduledChange(
                time_s,
                _SetPerformanceFloor(floor),
                label=f"floor={floor}",
            )
        )
        self.changes.sort(key=lambda c: c.time_s)

    def due(self, now_s: float, delivered: int) -> tuple[ScheduledChange, ...]:
        """Changes due at ``now_s`` that have not been delivered yet.

        ``delivered`` is the count of already-applied changes (the
        controller tracks it); the schedule itself stays immutable
        during a run so it can be reused across the paper's median-of-3
        repetitions.
        """
        return tuple(c for c in self.changes[delivered:] if c.time_s <= now_s)
