"""The Monitor -> Estimate -> Control run loop (paper Fig. 3).

:class:`PowerManagementController` wires a machine, a power meter, a
counter sampler and a governor into the paper's 10 ms loop:

* each tick the machine executes 10 ms of the workload,
* the sampler turns the PMU deltas into per-cycle rates,
* the governor picks the next p-state (estimation happens inside it),
* the SpeedStep driver actuates the change (charged as dead time by the
  machine on the next tick).

The controller also delivers scheduled constraint changes (the paper's
runtime signals), feeds measured power back to adaptive governors, and
returns a :class:`RunResult` with everything the experiments need:
measured power samples, per-tick trace, residency and energy.

When a :class:`~repro.telemetry.TelemetryRecorder` is supplied the loop
is fully observable: the sampler emits sample events, every decision /
transition / tick is published on the event bus, per-phase wall-clock
spans (``execute``/``sample``/``decide``/``actuate``) measure governor
overhead, and the metrics registry accumulates tick counts, p-state
residency, transitions, power-limit violations and the power-projection
error distribution.  With ``telemetry=None`` (the default) every
instrumentation block is skipped behind a single pre-computed branch,
so an uninstrumented run costs the same as before the subsystem existed.

When a :class:`~repro.core.resilience.ResilienceConfig` is supplied the
loop is *hardened*: counter samples are validated and held over across
dropped/garbled reads, measured power is outlier-filtered, failed
p-state transitions are retried with exponential backoff (charged as
real dead time), a watchdog detects a stalled sampler, and after
repeated unrecoverable faults the controller degrades gracefully to a
configurable fail-safe static p-state and completes the run.  A
:class:`~repro.faults.injector.FaultInjector` can be attached to drill
exactly those failure paths; with injection disabled the run is
bit-for-bit identical to an unwrapped one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

import numpy as np

from repro.acpi.pstates import PState
from repro.core.governors.base import Governor
from repro.core.limits import ConstraintSchedule
from repro.core.resilience import (
    PowerReadingFilter,
    ResilienceConfig,
    sample_is_plausible,
)
from repro.core.sampling import (
    CounterSample,
    CounterSampler,
    MultiplexedCounterSampler,
)
from repro.errors import ExperimentError, SensorFault, TransitionError
from repro.measurement.power_meter import PowerMeter, PowerSample
from repro.platform.machine import Machine
from repro.telemetry.bus import (
    ConstraintChanged,
    DecisionMade,
    DegradedModeEntered,
    FaultRecovered,
    PStateTransition,
    RunFinished,
    RunStarted,
    TickCompleted,
    WatchdogTripped,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.adaptation.manager import AdaptationManager
    from repro.faults.injector import FaultInjector
from repro.telemetry.metrics import (
    POWER_BUCKETS_W,
    PROJECTION_ERROR_BUCKETS_W,
)
from repro.telemetry.recorder import TelemetryRecorder
from repro.workloads.base import Workload


@dataclass(frozen=True)
class TraceRow:
    """Per-tick trace entry (timestamps are tick-end, like the meter)."""

    time_s: float
    frequency_mhz: float
    measured_power_w: float
    true_power_w: float
    instructions: float
    rates: dict
    #: Clock-modulation duty in effect (1.0 unless a throttling governor
    #: is driving the T-states).
    duty: float = 1.0
    #: Junction temperature (None on isothermal machines).
    temperature_c: float | None = None


@dataclass
class RunResult:
    """Outcome of one (workload, governor) run.

    All energies follow the paper's accounting: measured energy is the
    sum over 10 ms samples of sample power x interval (§IV-B2).
    """

    workload: str
    governor: str
    duration_s: float
    instructions: float
    measured_energy_j: float
    true_energy_j: float
    samples: tuple[PowerSample, ...]
    trace: tuple[TraceRow, ...]
    residency_s: Dict[float, float] = field(default_factory=dict)
    transitions: int = 0
    #: True when the hardened controller fell back to the fail-safe
    #: static p-state at some point during the run.
    degraded: bool = False
    #: Recovery actions taken by the hardened controller, keyed
    #: ``subsystem.action`` (empty for non-resilient runs).
    recoveries: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_power_w(self) -> float:
        """Measured mean power over the run."""
        if self.duration_s <= 0:
            return 0.0
        return self.measured_energy_j / self.duration_s

    @property
    def ips(self) -> float:
        """Achieved instructions per second."""
        if self.duration_s <= 0:
            return 0.0
        return self.instructions / self.duration_s

    def moving_average_power(self, window: int = 10) -> tuple[tuple[float, float], ...]:
        """Measured power averaged over ``window`` samples (paper: 10).

        This is the series the paper uses to judge PM's limit adherence
        ("moving window of ten, 10 ms samples", §IV-A1).
        """
        if window <= 0:
            raise ExperimentError("window must be positive")
        values = [s.watts for s in self.samples]
        out: list[tuple[float, float]] = []
        acc = 0.0
        for i, sample in enumerate(self.samples):
            acc += values[i]
            if i >= window:
                acc -= values[i - window]
            if i >= window - 1:
                out.append((sample.time_s, acc / window))
        return tuple(out)

    def violation_fraction(self, limit_w: float, window: int = 10) -> float:
        """Fraction of run time the windowed power exceeds ``limit_w``."""
        series = self.moving_average_power(window)
        if not series:
            return 0.0
        over = sum(1 for _, watts in series if watts > limit_w + 1e-9)
        return over / len(series)


class _ResilienceRuntime:
    """Per-run fault-tolerance state for one hardened controller run.

    Owns the holdover/validation, watchdog, retry and degradation logic
    so the run loop stays readable; every recovery action is counted on
    :attr:`recoveries` and emitted as telemetry when a recorder is on.
    """

    def __init__(
        self,
        config: ResilienceConfig,
        machine: Machine,
        tel: TelemetryRecorder | None,
    ):
        self.config = config
        self._machine = machine
        self._tel = tel if (tel is not None and tel.enabled) else None
        table = machine.config.table
        self.safe_pstate = (
            table.by_frequency(config.safe_frequency_mhz)
            if config.safe_frequency_mhz is not None
            else table.slowest
        )
        self.degraded = False
        self.recoveries: Dict[str, int] = {}
        self._last_good_sample: CounterSample | None = None
        self._sampler_fault_streak = 0
        self._actuator_fault_streak = 0
        self._power_filter = PowerReadingFilter(
            config.power_window,
            config.power_outlier_factor,
            config.power_floor_w,
        )
        self._last_temp: float | None = None
        self._temp_repeats = 0
        self._temp_masked = False

    def bind_telemetry(self, tel: TelemetryRecorder | None) -> None:
        """Reattach a recorder (used after checkpoint restore)."""
        self._tel = tel if (tel is not None and tel.enabled) else None

    def __getstate__(self):
        # The recorder is process state (open exporter handles) and is
        # rebound on resume; everything else round-trips exactly.
        state = self.__dict__.copy()
        state["_tel"] = None
        return state

    def _recover(self, subsystem: str, action: str, attempts: int = 0) -> None:
        key = f"{subsystem}.{action}"
        self.recoveries[key] = self.recoveries.get(key, 0) + 1
        tel = self._tel
        if tel is not None:
            tel.metrics.counter(f"resilience.{key}").inc()
            tel.emit(
                FaultRecovered(
                    time_s=self._machine.now_s,
                    subsystem=subsystem,
                    action=action,
                    attempts=attempts,
                )
            )

    def enter_degraded(self, reason: str) -> None:
        """Pin the fail-safe p-state for the rest of the run (idempotent)."""
        if self.degraded:
            return
        self.degraded = True
        tel = self._tel
        if tel is not None:
            tel.metrics.counter("resilience.degradations").inc()
            tel.emit(
                DegradedModeEntered(
                    time_s=self._machine.now_s,
                    reason=reason,
                    safe_frequency_mhz=self.safe_pstate.frequency_mhz,
                )
            )

    def acquire_sample(self, sampler, interval_s: float) -> CounterSample | None:
        """Sample with validation, last-good holdover and the watchdog.

        Returns the tick's sample (possibly held over); None means no
        good sample exists yet and the decision should be skipped.
        """
        try:
            sample = sampler.sample(interval_s)
            ok = sample_is_plausible(sample, self.config.max_plausible_rate)
        except SensorFault:
            ok = False
        if ok:
            self._sampler_fault_streak = 0
            self._last_good_sample = sample
            return sample
        self._sampler_fault_streak += 1
        if (
            self._sampler_fault_streak >= self.config.watchdog_fault_ticks
            and not self.degraded
        ):
            tel = self._tel
            if tel is not None:
                tel.emit(
                    WatchdogTripped(
                        time_s=self._machine.now_s,
                        consecutive_faults=self._sampler_fault_streak,
                    )
                )
            self.enter_degraded("sampler watchdog: monitor stalled")
        if self._last_good_sample is not None:
            self._recover("sampler", "holdover")
            return self._last_good_sample
        self._recover("sampler", "skip")
        return None

    def filter_power(self, watts: float) -> float:
        """Validate a measured-power reading, holding the last good one."""
        if self._power_filter.accept(watts):
            return watts
        last = self._power_filter.last_good
        if last is None:
            return watts
        self._recover("meter", "power_holdover")
        return last

    def observe_temperature(self, temp_c: float | None) -> float | None:
        """Mask a stuck thermal sensor (N identical consecutive reads)."""
        if temp_c is None:
            self._last_temp = None
            self._temp_repeats = 0
            self._temp_masked = False
            return None
        if self._last_temp is not None and temp_c == self._last_temp:
            self._temp_repeats += 1
        else:
            self._temp_repeats = 0
            self._temp_masked = False
        self._last_temp = temp_c
        if self._temp_repeats + 1 >= self.config.stuck_temperature_ticks:
            if not self._temp_masked:
                self._temp_masked = True
                self._recover("thermal", "masked")
            return None
        return temp_c

    def actuate(self, driver, target: PState) -> bool:
        """Actuate with retry + exponential backoff; False = p-state held.

        Each retry's backoff is charged to the machine as real dead
        time, so recovery is never free.  Repeated exhausted retries
        trip graceful degradation.
        """
        cfg = self.config
        try:
            driver.set_pstate(target)
            self._actuator_fault_streak = 0
            return True
        except TransitionError:
            pass
        backoff = cfg.retry_backoff_s
        dvfs = self._machine.dvfs
        for attempt in range(1, cfg.max_transition_retries + 1):
            if backoff > 0:
                dvfs.charge_dead_time(backoff)
            backoff *= cfg.retry_backoff_factor
            try:
                driver.set_pstate(target)
            except TransitionError:
                continue
            self._actuator_fault_streak = 0
            self._recover("driver", "retry", attempts=attempt)
            return True
        self._actuator_fault_streak += 1
        self._recover("driver", "hold", attempts=cfg.max_transition_retries)
        if self._actuator_fault_streak >= cfg.degrade_after_faults:
            self.enter_degraded("repeated transition failures")
        return False


class PowerManagementController:
    """Drives one governor over one workload at the 10 ms cadence."""

    def __init__(
        self,
        machine: Machine,
        governor: Governor,
        meter: PowerMeter | None = None,
        keep_trace: bool = True,
        telemetry: TelemetryRecorder | None = None,
        resilience: ResilienceConfig | None = None,
        injector: "FaultInjector | None" = None,
        adaptation: "AdaptationManager | None" = None,
    ):
        self.machine = machine
        self.governor = governor
        meter = (
            meter
            if meter is not None
            else PowerMeter(
                interval_s=machine.config.tick_s,
                rng=np.random.default_rng(machine.config.seed + 1001),
            )
        )
        self._injector = injector
        if injector is not None and injector.active:
            meter = injector.wrap_meter(meter)
        self.meter = meter
        machine.add_power_sink(self.meter.accumulate)
        self._keep_trace = keep_trace
        self._telemetry = telemetry
        self._resilience = resilience
        self._adaptation = adaptation

    @staticmethod
    def _actuate(
        rt: _ResilienceRuntime | None, driver, target: PState
    ) -> bool:
        if rt is not None:
            return rt.actuate(driver, target)
        driver.set_pstate(target)
        return True

    def run(
        self,
        workload: Workload,
        initial_pstate: PState | None = None,
        schedule: ConstraintSchedule | None = None,
        max_seconds: float = 600.0,
        checkpointer=None,
    ) -> RunResult:
        """Run ``workload`` to completion under the governor.

        ``checkpointer`` (duck-typed: ``interval_ticks`` attribute plus
        ``save(tick, state, tel)``) enables crash-safe execution: the
        loop's complete state is durably journaled every
        ``interval_ticks`` ticks and :func:`repro.checkpoint.resume_run`
        continues an interrupted run bit-identically.  With the default
        ``None`` the loop is exactly the uncheckpointed one.
        """
        machine = self.machine
        governor = self.governor
        governor.reset()
        start = initial_pstate if initial_pstate is not None else machine.config.table.fastest
        machine.load(workload, initial_pstate=start)
        # Governors needing more events than the two counters declare
        # event_groups and get a multiplexed sampler (one group per tick).
        tel = self._telemetry
        groups = getattr(governor, "event_groups", None)
        if groups:
            sampler = MultiplexedCounterSampler(
                machine.pmu, groups, telemetry=tel
            )
        else:
            sampler = CounterSampler(
                machine.pmu, governor.events, telemetry=tel
            )
        injector = self._injector
        injecting = injector is not None and injector.active
        driver = machine.speedstep
        if injecting:
            injector.set_clock(lambda: machine.now_s)
            injector.bind_telemetry(tel)
            sampler = injector.wrap_sampler(sampler)
            driver = injector.wrap_speedstep(machine.speedstep, machine.dvfs)
        rt = (
            _ResilienceRuntime(self._resilience, machine, tel)
            if self._resilience is not None
            else None
        )
        adapt = self._adaptation
        adapting = adapt is not None and adapt.engage(
            governor, tel, now_s=machine.now_s
        )
        sampler.start()
        self.meter.mark(f"{workload.name}:start")

        state = _RunState(
            machine=machine,
            governor=governor,
            meter=self.meter,
            sampler=sampler,
            driver=driver,
            schedule=schedule,
            rt=rt,
            injector=injector if injecting else None,
            adapt=adapt,
            workload_name=workload.name,
            max_seconds=max_seconds,
            keep_trace=self._keep_trace,
            injecting=injecting,
            adapting=adapting,
            sample_index=len(self.meter.samples),
        )
        return _run_loop(state, tel, checkpointer=checkpointer)


@dataclass
class _RunState:
    """The complete picklable state of one in-flight run.

    One pickle of this object is one checkpoint: every object carrying
    loop state -- machine, meter, sampler, driver, governor, resilience
    runtime, fault injector, adaptation manager, constraint schedule and
    the loop accumulators -- is reachable from here, so shared
    references (the machine's power sink is the meter's bound
    ``accumulate``, the fault wrappers alias the injector's RNG streams)
    survive the round-trip intact.  Process-local attachments (telemetry
    recorders, the injector's clock closure) are stripped by the
    components' own ``__getstate__`` hooks and reattached via
    :meth:`rebind_telemetry`.
    """

    machine: Machine
    governor: Governor
    meter: PowerMeter
    sampler: object
    driver: object
    schedule: ConstraintSchedule | None
    rt: _ResilienceRuntime | None
    injector: "FaultInjector | None"
    adapt: "AdaptationManager | None"
    workload_name: str
    max_seconds: float
    keep_trace: bool
    injecting: bool
    adapting: bool
    sample_index: int
    delivered: int = 0
    instructions: float = 0.0
    true_energy: float = 0.0
    tick_index: int = 0
    last_estimate_w: float | None = None
    residency: Dict[float, float] = field(default_factory=dict)
    trace: List[TraceRow] = field(default_factory=list)

    def rebind_telemetry(self, tel: TelemetryRecorder | None) -> None:
        """Reattach a process-local recorder and clock after restore."""
        if hasattr(self.sampler, "bind_telemetry"):
            self.sampler.bind_telemetry(tel)
        if self.rt is not None:
            self.rt.bind_telemetry(tel)
        if self.injector is not None:
            self.injector.bind_telemetry(tel)
            machine = self.machine
            self.injector.set_clock(lambda: machine.now_s)
        if self.adapt is not None and self.adapting:
            self.adapt.bind_telemetry(tel)


def _run_loop(st: _RunState, tel, checkpointer=None, resumed=False) -> RunResult:
    """Drive ``st`` to completion; the entry point for fresh and resumed runs.

    Dispatches to the batched loop (:mod:`repro.core.blockloop`) when the
    run's configuration admits a bit-identical fused kernel, otherwise to
    the scalar reference loop.  The two produce indistinguishable results
    (same ``RunResult`` floats, same checkpoint bytes, same RNG stream);
    the digest-equivalence suite pins that contract.
    """
    from repro.core import blockloop

    if blockloop.eligible(st, tel):
        return blockloop.run_fast(
            st, tel, checkpointer=checkpointer, resumed=resumed
        )
    return _scalar_loop(st, tel, checkpointer=checkpointer, resumed=resumed)


def _scalar_loop(
    st: _RunState, tel, checkpointer=None, resumed=False
) -> RunResult:
    """The scalar reference loop: one ``machine.step()`` per decision.

    Must stay operation-for-operation identical to the historical inline
    loop: RNG draws, float accumulation order and telemetry side effects
    may not change, or checkpointed runs stop being bit-identical to
    uncheckpointed ones.
    """
    machine = st.machine
    governor = st.governor
    meter = st.meter
    sampler = st.sampler
    driver = st.driver
    schedule = st.schedule
    rt = st.rt
    injector = st.injector
    adapt = st.adapt
    workload_name = st.workload_name
    max_seconds = st.max_seconds
    hardened = rt is not None
    injecting = st.injecting
    adapting = st.adapting
    keep_trace = st.keep_trace
    instrumented = tel is not None and tel.enabled
    # Temperature is only observed when someone consumes it; the
    # plain fast path must not pay for the hardened one.
    track_temp = hardened or injecting or instrumented or keep_trace

    delivered = st.delivered
    residency = st.residency
    trace = st.trace
    instructions = st.instructions
    true_energy = st.true_energy
    sample_index = st.sample_index
    tick_index = st.tick_index
    last_estimate_w = st.last_estimate_w

    if instrumented:
        metrics = tel.metrics
        # Get-or-create by name: on a resumed run these handles come out
        # of the restored registry with their accumulated values intact.
        ticks_counter = metrics.counter("controller.ticks")
        transitions_counter = metrics.counter("controller.transitions")
        violations_counter = metrics.counter("controller.limit_violations")
        power_hist = metrics.histogram(
            "power.measured_w", POWER_BUCKETS_W
        )
        error_hist = metrics.histogram(
            "projection.error_w", PROJECTION_ERROR_BUCKETS_W
        )
        residency_counters: Dict[float, object] = {}
        can_estimate = hasattr(governor, "estimate_power")
        if not resumed:
            tel.emit(
                RunStarted(
                    time_s=machine.now_s,
                    workload=workload_name,
                    governor=governor.name,
                )
            )

    if checkpointer is not None:
        interval = checkpointer.interval_ticks
        # A fresh run checkpoints immediately (tick 0) so even a kill
        # during the first interval is resumable; a resumed run's state
        # is already durable, so its next checkpoint is one interval out.
        next_checkpoint = tick_index if tick_index == 0 and not resumed else (
            tick_index + interval
        )

    while not machine.finished:
        if machine.now_s > max_seconds:
            raise ExperimentError(
                f"{workload_name} under {governor.name} exceeded "
                f"{max_seconds}s of simulated time"
            )
        if checkpointer is not None and tick_index >= next_checkpoint:
            st.delivered = delivered
            st.instructions = instructions
            st.true_energy = true_energy
            st.tick_index = tick_index
            st.last_estimate_w = last_estimate_w
            checkpointer.save(tick_index, st, tel)
            next_checkpoint = tick_index + interval
        if schedule is not None:
            for change in schedule.due(machine.now_s, delivered):
                change.apply(governor)
                delivered += 1
                if instrumented:
                    tel.emit(
                        ConstraintChanged(
                            time_s=machine.now_s, label=change.label
                        )
                    )

        if instrumented:
            with tel.span("execute"):
                record = machine.step()
            with tel.span("sample"):
                counter_sample = (
                    rt.acquire_sample(sampler, record.duration_s)
                    if hardened
                    else sampler.sample(record.duration_s)
                )
        else:
            record = machine.step()
            counter_sample = (
                rt.acquire_sample(sampler, record.duration_s)
                if hardened
                else sampler.sample(record.duration_s)
            )
        instructions += record.instructions
        true_energy += record.energy_j
        freq = record.pstate.frequency_mhz
        residency[freq] = residency.get(freq, 0.0) + record.duration_s

        # Measured-power feedback for adaptive governors (the meter
        # closes samples in lockstep with 10 ms ticks).
        measured = (
            meter.last_sample.watts
            if meter.sample_count > sample_index
            else record.mean_power_w
        )
        if hardened:
            measured = rt.filter_power(measured)

        if track_temp:
            temperature = record.temperature_c
            if injecting:
                temperature = injector.observe_temperature(
                    temperature, machine.now_s
                )
            if hardened:
                temperature = rt.observe_temperature(temperature)

        current = machine.current_pstate
        if hardened and (rt.degraded or counter_sample is None):
            # Fail-safe governor (closed-loop control abandoned) or
            # no good sample yet (hold rather than guess).
            target = rt.safe_pstate if rt.degraded else current
        elif instrumented:
            with tel.span("decide"):
                target = governor.decide(counter_sample, current)
        else:
            target = governor.decide(counter_sample, current)
        if target != current:
            if instrumented:
                with tel.span("actuate"):
                    changed = PowerManagementController._actuate(
                        rt, driver, target
                    )
            elif hardened:
                rt.actuate(driver, target)
            else:
                driver.set_pstate(target)
        elif instrumented:
            changed = False
        if hasattr(governor, "observe_power"):
            governor.observe_power(measured)
        # Online adaptation: fold the interval that just executed
        # into the shadow score / RLS fit.  Any model swap decided
        # here takes effect at the *next* control decision.
        if adapting and counter_sample is not None:
            adapt.observe(counter_sample, current, measured, machine.now_s)

        if instrumented:
            ticks_counter.inc()
            freq_counter = residency_counters.get(freq)
            if freq_counter is None:
                freq_counter = residency_counters[freq] = metrics.counter(
                    f"pstate.residency_s.{freq:.0f}"
                )
            freq_counter.inc(record.duration_s)
            power_hist.observe(measured)
            limit = getattr(governor, "power_limit_w", None)
            if limit is not None and measured > limit:
                violations_counter.inc()
            # The estimate made last tick predicted this tick's power.
            if last_estimate_w is not None:
                error_hist.observe(last_estimate_w - measured)
            tel.emit(
                DecisionMade(
                    time_s=machine.now_s,
                    governor=governor.name,
                    current_mhz=current.frequency_mhz,
                    target_mhz=target.frequency_mhz,
                )
            )
            if changed:
                transitions_counter.inc()
                tel.emit(
                    PStateTransition(
                        time_s=machine.now_s,
                        from_mhz=current.frequency_mhz,
                        to_mhz=target.frequency_mhz,
                    )
                )
            if can_estimate and counter_sample is not None:
                last_estimate_w = governor.estimate_power(
                    counter_sample, current, target
                )
            tel.emit(
                TickCompleted(
                    time_s=machine.now_s,
                    frequency_mhz=freq,
                    measured_power_w=measured,
                    true_power_w=record.mean_power_w,
                    instructions=record.instructions,
                    duty=record.duty,
                    temperature_c=temperature,
                )
            )

        if keep_trace:
            trace.append(
                TraceRow(
                    time_s=machine.now_s,
                    frequency_mhz=freq,
                    measured_power_w=measured,
                    true_power_w=record.mean_power_w,
                    instructions=record.instructions,
                    rates=(
                        dict(counter_sample.rates)
                        if counter_sample is not None
                        else {}
                    ),
                    duty=record.duty,
                    temperature_c=temperature,
                )
            )
        tick_index += 1

    st.delivered = delivered
    st.instructions = instructions
    st.true_energy = true_energy
    st.tick_index = tick_index
    st.last_estimate_w = last_estimate_w

    return _finish_run(st, tel)


def _finish_run(st: _RunState, tel) -> RunResult:
    """Close out a completed run: flush the meter, build the result.

    Shared by the scalar and batched loops; reads only the synced
    ``_RunState`` fields, so both paths produce the same floats.
    """
    machine = st.machine
    governor = st.governor
    meter = st.meter
    rt = st.rt
    workload_name = st.workload_name
    instructions = st.instructions

    meter.flush()
    meter.mark(f"{workload_name}:end")
    samples = meter.samples_between(
        f"{workload_name}:start", f"{workload_name}:end"
    )
    measured_energy = meter.energy_j(samples)
    if tel is not None and tel.enabled:
        metrics = tel.metrics
        metrics.gauge("run.duration_s").set(machine.now_s)
        metrics.gauge("run.instructions").set(instructions)
        metrics.gauge("run.measured_energy_j").set(measured_energy)
        tel.emit(
            RunFinished(
                time_s=machine.now_s,
                workload=workload_name,
                governor=governor.name,
                duration_s=machine.now_s,
                instructions=instructions,
                measured_energy_j=measured_energy,
                transitions=machine.dvfs.transition_count,
            )
        )
    return RunResult(
        workload=workload_name,
        governor=governor.name,
        duration_s=machine.now_s,
        instructions=instructions,
        measured_energy_j=measured_energy,
        true_energy_j=st.true_energy,
        samples=samples,
        trace=tuple(st.trace),
        residency_s=st.residency,
        transitions=machine.dvfs.transition_count,
        degraded=rt.degraded if rt is not None else False,
        recoveries=dict(rt.recoveries) if rt is not None else {},
    )
