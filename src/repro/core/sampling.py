"""Monitor phase: periodic performance-counter sampling.

The paper's monitoring driver "collects the counters every 10 ms with
negligible performance impact" (§III-B).  :class:`CounterSampler` is that
driver's user-level face: it programs the two physical counters, takes
wrap-aware snapshots, and converts deltas into per-cycle rates.

Because the Pentium M has only two programmable counters, a sampler
monitors at most two events at a time (plus unhalted cycles, which the
snapshot always carries).  PerformanceMaximizer needs one event
(``INST_DECODED``); PowerSave needs two (``INST_RETIRED`` and
``DCU_MISS_OUTSTANDING``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.drivers.pmu import PMU, CounterSnapshot
from repro.errors import PMUError
from repro.platform.events import Event
from repro.telemetry.bus import SampleTaken
from repro.telemetry.recorder import TelemetryRecorder


@dataclass(frozen=True)
class CounterSample:
    """One monitoring interval's worth of counter-derived rates.

    Attributes
    ----------
    interval_s:
        Wall-clock length of the interval.
    cycles:
        Unhalted cycles elapsed (the denominator of all rates).
    rates:
        Per-cycle event rates for the monitored events.
    """

    interval_s: float
    cycles: float
    rates: Mapping[Event, float]

    def rate(self, event: Event) -> float:
        """Per-cycle rate of a monitored event (KeyError if unmonitored)."""
        return self.rates[event]

    @property
    def effective_frequency_mhz(self) -> float:
        """Average clock frequency over the interval (cycles / time)."""
        if self.interval_s <= 0:
            return 0.0
        return self.cycles / self.interval_s / 1e6

    # -- convenience views used by the governors -------------------------------

    @property
    def dpc(self) -> float:
        """Decoded instructions per cycle (PM's model input)."""
        return self.rate(Event.INST_DECODED)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle (PS's performance proxy)."""
        return self.rate(Event.INST_RETIRED)

    @property
    def dcu(self) -> float:
        """DCU-miss-outstanding cycles per cycle."""
        return self.rate(Event.DCU_MISS_OUTSTANDING)

    @property
    def dcu_per_ipc(self) -> float:
        """The paper's memory-boundedness metric (Eq. 3 discriminator).

        Returns +inf for an interval with zero retired instructions (a
        fully-stalled interval is maximally memory-bound).
        """
        if self.ipc <= 0:
            return float("inf")
        return self.dcu / self.ipc


@dataclass(frozen=True)
class CounterSampleBlock:
    """Array-valued counterpart of :class:`CounterSample` for K ticks.

    Produced by :meth:`CounterSampler.consume_block` from a
    :class:`~repro.platform.blockstep.TickBlock`.  Counts and cycles are
    per-tick floats (wrap-aware deltas, like the scalar path's
    ``CounterSnapshot.delta``); :meth:`sample` materializes the exact
    :class:`CounterSample` the scalar path would have produced for one
    tick -- same rate floats, same mapping order.
    """

    events: tuple[Event, ...]
    interval_s: tuple[float, ...]
    cycles: tuple[float, ...]
    counts: tuple[tuple[float, ...], ...]  #: per tick, one count per counter

    def __len__(self) -> int:
        return len(self.interval_s)

    def rates_at(self, index: int) -> dict[Event, float]:
        """Per-cycle rates of tick ``index`` (scalar-identical floats)."""
        cycles = self.cycles[index]
        counts = self.counts[index]
        rates = {}
        for position, event in enumerate(self.events):
            rates[event] = counts[position] / cycles if cycles > 0 else 0.0
        return rates

    def sample(self, index: int) -> CounterSample:
        """The scalar :class:`CounterSample` for tick ``index``."""
        return CounterSample(
            interval_s=self.interval_s[index],
            cycles=self.cycles[index],
            rates=self.rates_at(index),
        )


class CounterSampler:
    """Programs the PMU and produces :class:`CounterSample` streams."""

    def __init__(
        self,
        pmu: PMU,
        events: Sequence[Event],
        telemetry: TelemetryRecorder | None = None,
    ):
        if not events:
            raise PMUError("sampler needs at least one event")
        if len(events) > PMU.NUM_COUNTERS:
            raise PMUError(
                f"{len(events)} events exceed the {PMU.NUM_COUNTERS}-counter "
                "budget; PM/PS were designed to fit (paper §III)"
            )
        if len(set(events)) != len(events):
            raise PMUError(f"duplicate events: {events}")
        self._pmu = pmu
        self._events = tuple(events)
        self._last: CounterSnapshot | None = None
        self._telemetry = telemetry
        self._elapsed_s = 0.0

    @property
    def events(self) -> tuple[Event, ...]:
        """The monitored events."""
        return self._events

    def bind_telemetry(self, telemetry: TelemetryRecorder | None) -> None:
        """Reattach a recorder (used after checkpoint restore)."""
        self._telemetry = telemetry

    def __getstate__(self):
        # The recorder holds open exporter file handles; it is process
        # state, not run state, and is rebound on resume.
        state = self.__dict__.copy()
        state["_telemetry"] = None
        return state

    def start(self) -> None:
        """Program the counters and take the baseline snapshot."""
        self._pmu.program_events(self._events)
        self._last = self._pmu.snapshot()

    def sample(self, interval_s: float) -> CounterSample:
        """Close the current interval and return its rates.

        ``interval_s`` is supplied by the caller (the controller knows
        the tick length); the PMU itself provides cycle and event deltas.
        """
        if self._last is None:
            raise PMUError("sampler not started; call start() first")
        current = self._pmu.snapshot()
        c0, c1, cycles = self._last.delta(current)
        self._last = current
        counts = (c0, c1)
        rates = {}
        for index, event in enumerate(self._events):
            rates[event] = counts[index] / cycles if cycles > 0 else 0.0
        sample = CounterSample(
            interval_s=interval_s, cycles=cycles, rates=rates
        )
        self._elapsed_s += interval_s
        tel = self._telemetry
        if tel is not None and tel.enabled:
            tel.emit(
                SampleTaken(
                    time_s=self._elapsed_s,
                    interval_s=interval_s,
                    cycles=cycles,
                    effective_frequency_mhz=sample.effective_frequency_mhz,
                    rates={event.name: rate for event, rate in rates.items()},
                )
            )
        return sample

    def consume_block(self, block) -> CounterSampleBlock:
        """Turn a :class:`~repro.platform.blockstep.TickBlock` into samples.

        The block carries per-tick wrap-masked counter deltas measured
        against the PMU state at the start of each tick, i.e. exactly
        what per-tick :meth:`sample` calls would have seen.  After
        consuming a block the sampler re-baselines against the live PMU
        (the block kernel syncs hardware state back on exit), so scalar
        :meth:`sample` calls may resume seamlessly.
        """
        if self._last is None:
            raise PMUError("sampler not started; call start() first")
        # The block reports both physical counter slots (unused ones as
        # None); the sampler's events must fill the leading slots.
        slots = tuple(block.events)
        mine = len(self._events)
        if slots[:mine] != self._events or any(
            event is not None for event in slots[mine:]
        ):
            raise PMUError(
                f"block monitored {block.events}, sampler expects "
                f"{self._events}; reprogramming mid-run is unsupported"
            )
        n = len(block)
        intervals = tuple(block.duration_s)
        cycles_seq = tuple(block.cycles_delta)
        counts_seq = tuple(
            (block.counter0_delta[i], block.counter1_delta[i])
            for i in range(n)
        )
        out = CounterSampleBlock(
            events=self._events,
            interval_s=intervals,
            cycles=cycles_seq,
            counts=counts_seq,
        )
        self._last = self._pmu.snapshot()
        tel = self._telemetry
        emit = tel is not None and tel.enabled
        for i in range(n):
            self._elapsed_s += intervals[i]
            if emit:
                sample = out.sample(i)
                tel.emit(
                    SampleTaken(
                        time_s=self._elapsed_s,
                        interval_s=intervals[i],
                        cycles=sample.cycles,
                        effective_frequency_mhz=(
                            sample.effective_frequency_mhz
                        ),
                        rates={
                            event.name: rate
                            for event, rate in sample.rates.items()
                        },
                    )
                )
        return out


class MultiplexedCounterSampler:
    """Rotates event groups through the two counters, one group per tick.

    Extension utility for policies that need more events than the PMU
    has counters (the Isci-style component power model).  Each
    :meth:`sample` call closes the interval for the *currently
    programmed* group, then programs the next group for the following
    interval.  Consumers keep their own last-known value per event;
    rates for unprogrammed events are simply absent from the sample.
    """

    def __init__(
        self,
        pmu: PMU,
        groups: Sequence[Sequence[Event]],
        telemetry: TelemetryRecorder | None = None,
    ):
        if not groups:
            raise PMUError("multiplexed sampler needs at least one group")
        # Inner samplers stay un-instrumented; the rotation emits its own
        # sample events so timestamps cover every tick, not every Nth.
        self._samplers = [CounterSampler(pmu, group) for group in groups]
        self._index = 0
        self._telemetry = telemetry
        self._elapsed_s = 0.0

    @property
    def groups(self) -> tuple[tuple[Event, ...], ...]:
        """The rotation's event groups."""
        return tuple(s.events for s in self._samplers)

    def bind_telemetry(self, telemetry: TelemetryRecorder | None) -> None:
        """Reattach a recorder (used after checkpoint restore)."""
        self._telemetry = telemetry

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_telemetry"] = None
        return state

    def start(self) -> None:
        """Program the first group and take its baseline snapshot."""
        self._index = 0
        self._samplers[0].start()

    def sample(self, interval_s: float) -> CounterSample:
        """Close the current group's interval and rotate to the next."""
        sample = self._samplers[self._index].sample(interval_s)
        self._index = (self._index + 1) % len(self._samplers)
        self._samplers[self._index].start()
        self._elapsed_s += interval_s
        tel = self._telemetry
        if tel is not None and tel.enabled:
            tel.emit(
                SampleTaken(
                    time_s=self._elapsed_s,
                    interval_s=interval_s,
                    cycles=sample.cycles,
                    effective_frequency_mhz=sample.effective_frequency_mhz,
                    rates={
                        event.name: rate
                        for event, rate in sample.rates.items()
                    },
                )
            )
        return sample
