"""Fault-tolerance policy for the monitor -> estimate -> control loop.

:class:`ResilienceConfig` collects every defensive knob the hardened
:class:`~repro.core.controller.PowerManagementController` uses:

* **sample validation + holdover** -- a counter sample that is missing
  (dropped read) or implausible (NaN/negative/absurd rates from garble
  or wraparound) is replaced by the last good sample; with no good
  sample yet the decision is skipped and the p-state held;
* **power validation** -- a measured power reading that is non-finite,
  below the dropout floor or wildly above the recent median is rejected
  and the last good reading held for the governor feedback path;
* **watchdog** -- too many *consecutive* sampler faults mean the monitor
  is stalled, not merely noisy; the watchdog trips and the loop degrades;
* **retry with exponential backoff** -- a failed p-state transition is
  retried up to ``max_transition_retries`` times, each retry charging
  real (simulated) backoff dead time;
* **fail-safe governor** -- after ``degrade_after_faults`` unrecovered
  actuation faults (or a watchdog trip) the controller abandons
  closed-loop control and pins a configurable safe static p-state for
  the rest of the run, completing it rather than crashing.

:class:`PowerReadingFilter` implements the rolling-median outlier
rejection reused by tests and by the controller.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import ResilienceError


@dataclass(frozen=True)
class ResilienceConfig:
    """Defensive-control knobs for a hardened controller run."""

    #: Transition retries after the initial attempt fails.
    max_transition_retries: int = 3
    #: Dead time charged for the first retry backoff (doubles per retry).
    retry_backoff_s: float = 0.0005
    #: Multiplier applied to the backoff after each failed retry.
    retry_backoff_factor: float = 2.0
    #: Consecutive sampler faults before the watchdog declares a stall.
    watchdog_fault_ticks: int = 10
    #: Unrecovered actuation faults before entering degraded mode.
    degrade_after_faults: int = 3
    #: Fail-safe frequency; None = the table's slowest (always safe).
    safe_frequency_mhz: float | None = None
    #: Rolling window used for measured-power outlier rejection.
    power_window: int = 10
    #: A reading above ``factor x`` the window median is an outlier.
    power_outlier_factor: float = 3.0
    #: Readings at or below this are meter dropout (the platform always
    #: draws several watts when powered).
    power_floor_w: float = 0.5
    #: Per-cycle event rates above this are physically impossible.
    max_plausible_rate: float = 100.0
    #: Identical consecutive temperature readings before the sensor is
    #: declared stuck and its readings masked.
    stuck_temperature_ticks: int = 25

    def __post_init__(self) -> None:
        if self.max_transition_retries < 0:
            raise ResilienceError("max_transition_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ResilienceError("retry_backoff_s must be non-negative")
        if self.retry_backoff_factor < 1.0:
            raise ResilienceError("retry_backoff_factor must be >= 1")
        if self.watchdog_fault_ticks < 1:
            raise ResilienceError("watchdog_fault_ticks must be >= 1")
        if self.degrade_after_faults < 1:
            raise ResilienceError("degrade_after_faults must be >= 1")
        if self.power_window < 1:
            raise ResilienceError("power_window must be >= 1")
        if self.power_outlier_factor <= 1.0:
            raise ResilienceError("power_outlier_factor must be > 1")
        if self.power_floor_w < 0:
            raise ResilienceError("power_floor_w must be non-negative")
        if self.max_plausible_rate <= 0:
            raise ResilienceError("max_plausible_rate must be positive")
        if self.stuck_temperature_ticks < 2:
            raise ResilienceError("stuck_temperature_ticks must be >= 2")


def sample_is_plausible(sample, max_rate: float) -> bool:
    """Cheap physical-plausibility check for one counter sample.

    Rejects NaN/inf/negative cycles or rates and rates no real event can
    reach per cycle (garble and wraparound artifacts land here).
    """
    if not math.isfinite(sample.cycles) or sample.cycles < 0:
        return False
    for rate in sample.rates.values():
        if not math.isfinite(rate) or rate < 0 or rate > max_rate:
            return False
    return True


class PowerReadingFilter:
    """Rolling-median validation of measured power readings.

    ``accept(watts)`` returns True and admits the reading to the window
    when it is plausible; an implausible reading (non-finite, at/below
    the dropout floor, or more than ``outlier_factor`` times the window
    median) is rejected and the window left untouched, so one spike
    cannot drag the median toward itself.
    """

    def __init__(
        self,
        window: int,
        outlier_factor: float,
        floor_w: float,
    ):
        if window < 1:
            raise ResilienceError("window must be >= 1")
        self._values: deque[float] = deque(maxlen=window)
        self._factor = outlier_factor
        self._floor = floor_w

    @property
    def last_good(self) -> float | None:
        """The most recent accepted reading (None before any)."""
        return self._values[-1] if self._values else None

    def median(self) -> float | None:
        """Median of the current window (None when empty)."""
        if not self._values:
            return None
        ordered = sorted(self._values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def accept(self, watts: float) -> bool:
        """Validate ``watts``; admit and return True when plausible."""
        if not math.isfinite(watts) or watts <= self._floor:
            return False
        median = self.median()
        if median is not None and median > 0 and watts > self._factor * median:
            return False
        self._values.append(watts)
        return True
