"""Batched monitor->estimate->control loop (the controller fast path).

``PowerManagementController._run_loop`` pays for generality: every 10 ms
tick builds a ``TickRecord``, a ``ResolvedRates``, a ``CounterSample``
and several dict/dataclass intermediates.  For the common experiment
configuration -- stock :class:`~repro.platform.machine.Machine`, stock
:class:`~repro.core.sampling.CounterSampler`, one inline-able
:class:`~repro.measurement.power_meter.PowerMeter`, no fault injection,
no online adaptation, no constraint schedule, telemetry off -- this
module runs the same loop batched:

* **Dynamic governors** (PerformanceMaximizer, PowerSave,
  DemandBasedSwitching) decide every tick, so their loop fuses the
  machine tick kernel (:func:`repro.platform.blockstep.execute_segment`
  + the inlined meter/PMU updates) with table-driven governor decisions
  (:meth:`PerformanceMaximizer.projection_table` /
  :meth:`PowerSave.projection_table`) entirely in local variables,
  syncing object state only at checkpoint boundaries and loop exit.
* **Static governors** (StaticClocking, FixedFrequency) never change
  their mind, so their loop consumes whole
  :meth:`~repro.platform.machine.Machine.step_block` blocks between
  checkpoint boundaries and converts them with
  :meth:`~repro.core.sampling.CounterSampler.consume_block`.

**Bit-identical contract.**  Both arms replicate the scalar loop's RNG
draws, float operation order and side effects exactly; ``RunResult``
digests and checkpoint contents are indistinguishable from the scalar
path's (``tests/core/test_block_equivalence.py``).  Anything the fast
path cannot replicate exactly -- resilience runtimes, fault injection,
adaptation probation, multiplexed samplers, thermal models, wrapped
drivers/meters, instrumented telemetry, exotic governors -- fails
:func:`eligible` and falls back to the scalar loop.

Kill switches: set module flag ``FAST_LOOP = False`` (tests monkeypatch
this) or export ``REPRO_SCALAR_LOOP=1`` in the environment.
"""

from __future__ import annotations

import math
import os

from repro.core.governors.demand_based import DemandBasedSwitching
from repro.core.governors.performance_maximizer import PerformanceMaximizer
from repro.core.governors.powersave import PowerSave
from repro.core.governors.static import StaticClocking
from repro.core.governors.unconstrained import FixedFrequency
from repro.core.sampling import CounterSampler
from repro.errors import ExperimentError
from repro.drivers.msr import (
    IA32_PMC0,
    IA32_PMC1,
    IA32_TIME_STAMP_COUNTER,
)
from repro.measurement.power_meter import PowerSample
from repro.platform.blockstep import (
    _M40,
    _M64,
    _NEG_INV_P,
    _NEG_P,
    _SELECTOR,
    block_capable,
    inline_meter,
    rate_template,
)
from repro.platform.pipeline import (
    DCU_OUTSTANDING_CAP,
    DECODE_WIDTH,
    _OCCUPANCY_CAP,
)

#: Master switch for the batched loop (tests monkeypatch this).
FAST_LOOP = True

#: Ticks per ``step_block`` call in the static-governor arm; bounded so
#: checkpoint boundaries and the simulated-time limit stay exact.
BLOCK_TICKS = 128

#: Chunked Gaussian pre-draws in the dynamic arm (checkpointer-free
#: runs only; see ``_run_dynamic``).  Module flag for tests/debugging.
BATCH_RNG = True
_RNG_CHUNK = 1024

_INF = float("inf")

#: Governors with an exact table-driven fast decide.  Exact-type checks:
#: subclasses (e.g. AdaptivePerformanceMaximizer) may override anything.
_DYNAMIC = (PerformanceMaximizer, PowerSave, DemandBasedSwitching)
_STATIC = (StaticClocking, FixedFrequency)


def eligible(st, tel) -> bool:
    """Whether ``st`` can run the batched loop bit-identically.

    The conditions mirror everything the fused kernels inline; any
    stateful boundary the batch cannot replicate exactly (resilience,
    injection, adaptation, schedules, telemetry, wrappers, subclasses)
    routes the run back to the scalar loop.
    """
    if not FAST_LOOP or os.environ.get("REPRO_SCALAR_LOOP"):
        return False
    if tel is not None and tel.enabled:
        return False
    if (
        st.rt is not None
        or st.injecting
        or st.adapting
        or st.schedule is not None
    ):
        return False
    machine = st.machine
    if not block_capable(machine):
        return False
    if st.driver is not machine.speedstep:
        return False
    sampler = st.sampler
    if type(sampler) is not CounterSampler:
        return False
    for event in sampler._events:
        if event not in _SELECTOR:
            return False
    governor = st.governor
    gtype = type(governor)
    if gtype not in _DYNAMIC and gtype not in _STATIC:
        return False
    if hasattr(governor, "observe_power"):
        return False
    if tuple(governor.table) != tuple(machine.config.table):
        return False
    if inline_meter(machine) is not st.meter:
        return False
    return True


def run_fast(st, tel, checkpointer=None, resumed=False):
    """Drive ``st`` to completion on the batched path.

    Only call when :func:`eligible` returned True.  Returns the same
    :class:`~repro.core.controller.RunResult` (bit-identical) as the
    scalar loop.
    """
    if type(st.governor) in _STATIC:
        return _run_static(st, tel, checkpointer, resumed)
    return _run_dynamic(st, tel, checkpointer, resumed)


def _run_static(st, tel, checkpointer, resumed):
    """Block-consuming arm for constant-decision governors.

    The governor decides after every tick in the scalar loop but only
    the *first* decision can change the p-state, so the loop runs one
    scalar-equivalent tick, actuates, then consumes
    :meth:`Machine.step_block` blocks sized to never cross a checkpoint
    boundary or the simulated-time limit.
    """
    from repro.core.controller import TraceRow, _finish_run

    machine = st.machine
    governor = st.governor
    meter = st.meter
    sampler = st.sampler
    driver = st.driver
    workload_name = st.workload_name
    max_seconds = st.max_seconds
    keep_trace = st.keep_trace

    target = governor._pstate
    dt = machine.config.tick_s
    meter_samples = meter._samples

    residency = st.residency
    trace = st.trace
    trace_append = trace.append
    instructions = st.instructions
    true_energy = st.true_energy
    sample_index = st.sample_index
    tick_index = st.tick_index

    if checkpointer is not None:
        interval = checkpointer.interval_ticks
        next_checkpoint = (
            tick_index
            if tick_index == 0 and not resumed
            else tick_index + interval
        )

    pending_actuation = target != machine.current_pstate

    while not machine.finished:
        now = machine.now_s
        if now > max_seconds:
            raise ExperimentError(
                f"{workload_name} under {governor.name} exceeded "
                f"{max_seconds}s of simulated time"
            )
        if checkpointer is not None and tick_index >= next_checkpoint:
            st.instructions = instructions
            st.true_energy = true_energy
            st.tick_index = tick_index
            checkpointer.save(tick_index, st, tel)
            next_checkpoint = tick_index + interval
        if pending_actuation:
            # The scalar loop's first decision lands *after* the first
            # tick executes at the initial p-state.
            k = 1
        else:
            k = BLOCK_TICKS
            if checkpointer is not None:
                k = min(k, next_checkpoint - tick_index)
            # Never execute a tick whose start the scalar loop would
            # have refused (simulated-time limit raises at tick start).
            k = min(k, max(1, int((max_seconds - now) / dt)))
        block = machine.step_block(k)
        sblock = sampler.consume_block(block)
        block_freq = block.pstate.frequency_mhz
        duty = block.duty
        counts = block.meter_sample_counts
        times = block.time_s
        durations = block.duration_s
        instrs = block.instructions
        energies = block.energy_j
        means = block.mean_power_w
        for i in range(len(times)):
            instructions += instrs[i]
            true_energy += energies[i]
            residency[block_freq] = (
                residency.get(block_freq, 0.0) + durations[i]
            )
            n_samples = counts[i]
            measured = (
                meter_samples[n_samples - 1].watts
                if n_samples > sample_index
                else means[i]
            )
            if keep_trace:
                trace_append(
                    TraceRow(
                        time_s=times[i],
                        frequency_mhz=block_freq,
                        measured_power_w=measured,
                        true_power_w=means[i],
                        instructions=instrs[i],
                        rates=sblock.rates_at(i),
                        duty=duty,
                        temperature_c=None,
                    )
                )
            tick_index += 1
        if pending_actuation:
            driver.set_pstate(target)
            pending_actuation = False

    st.instructions = instructions
    st.true_energy = true_energy
    st.tick_index = tick_index
    return _finish_run(st, tel)


def _run_dynamic(st, tel, checkpointer, resumed):
    """Fully fused arm for per-tick-deciding governors.

    One Python loop holds the machine tick kernel, the inlined meter
    and PMU updates, the counter-sampler arithmetic and the governor's
    table-driven decision, all in local variables.  The segment math
    and the meter bucket loop are inlined bodily (no function calls on
    the tick path), template fields live in unpacked locals refreshed
    only on phase/p-state change, and ``min``/``max`` builtins are
    replaced by branch expressions with identical float semantics.

    On checkpointer-free runs the three per-tick Gaussian draws
    (jitter innovation, sense-amp noise, ADC noise) come from chunked
    ``standard_normal`` buffers: numpy array draws consume the exact
    same variate stream as repeated scalar calls and
    ``0.0 + scale * z`` is bitwise ``normal(0.0, scale)``, so every
    consumed value is identical -- only the generators' *final* states
    run ahead by the unconsumed tail, which nothing observes without a
    checkpoint.  Runs with a checkpointer keep scalar draws so pickled
    RNG states stay resume-exact.

    Object state is written back (`finally`) before every checkpoint
    save, on the simulated-time-limit raise and at loop exit, so
    checkpoints and error states are indistinguishable from the scalar
    path's.
    """
    from repro.core.controller import TraceRow, _finish_run

    machine = st.machine
    governor = st.governor
    meter = st.meter
    sampler = st.sampler
    driver = st.driver
    workload_name = st.workload_name
    max_seconds = st.max_seconds
    keep_trace = st.keep_trace

    config = machine.config
    cursor = machine._cursor
    workload = cursor._workload
    phases = workload.phases
    n_phases = len(phases)
    total = workload.total_instructions
    finish_line = total - 1e-9
    dt = config.tick_s
    dt_eps = dt - 1e-12
    dvfs = machine.dvfs
    timing = machine._timing
    constants = config.power
    rng_normal = machine._rng.normal
    mach_std = machine._rng.standard_normal
    _exp = math.exp
    _new = object.__new__
    # Constraint schedules are ineligible, so the duty cycle is fixed
    # for the whole run (the scalar loop re-reads an unchanged value).
    duty = machine.throttle.duty

    table = config.table
    states = tuple(table)
    n_states = len(states)
    state_index = {state: i for i, state in enumerate(states)}

    pstate = dvfs.current
    current_index = state_index[pstate]
    freq = pstate.frequency_mhz
    freq_1e6 = freq * 1e6

    # One template row per p-state, filled lazily per phase.
    template_rows = [[None] * n_phases for _ in range(n_states)]
    templates = template_rows[current_index]

    gov_states = tuple(governor.table)
    gtype = type(governor)
    if gtype is PerformanceMaximizer:
        mode = 0
        proj_rows = governor.projection_table().rows
        budget_w = governor._limit - governor._guardband
        raise_window = governor._raise_window
        raise_streak = governor._raise_streak
        pending = governor._pending_raise
        pending_index = (
            state_index[pending] if pending is not None else None
        )
    elif gtype is PowerSave:
        mode = 1
        ps_proj = governor.projection_table()
        floor_plus_eps = governor._floor + 1e-12
        dcu_threshold = governor._model.dcu_threshold
        fastest_mhz = ps_proj.fastest_mhz
        fast_factor = ps_proj.fast_factor
        ascending_rows = ps_proj.ascending
    else:  # DemandBasedSwitching
        mode = 2
        up_threshold = governor._up
        down_threshold = governor._down

    # Machine / PMU state -> locals (written back at sync points).
    time_s = machine._time_s
    jitter_log = machine._jitter_log
    charged = machine._charged_dead_time_s
    dead_total = dvfs.total_dead_time_s
    phase_index = cursor._phase_index
    into_phase = cursor._into_phase
    retired = cursor._retired

    pmu = machine.pmu
    msr = machine.msr
    event0, event1 = pmu._events
    selector0 = _SELECTOR.get(event0)
    selector1 = _SELECTOR.get(event1)
    cycles_int = pmu._cycles
    cycle_res = pmu._cycle_residual
    res0, res1 = pmu._residuals
    pmc0 = msr.rdmsr(IA32_PMC0)
    pmc1 = msr.rdmsr(IA32_PMC1)
    tsc = msr.rdmsr(IA32_TIME_STAMP_COUNTER)

    # Meter state -> locals (PowerMeter.accumulate, inlined bodily).
    m_interval = meter.interval_s
    close_eps = m_interval - 1e-12
    sense = meter._sense
    adc = meter._adc
    supply = meter._supply_v
    realized = sense._realized_ohm
    nominal = sense.resistance_ohm
    amp_noise = sense.amplifier_noise_v
    sense_normal = sense._rng.normal
    sense_std = sense._rng.standard_normal
    adc_normal = adc._rng.normal
    noise_floor = adc.noise_floor_watts
    full_scale = adc.full_scale_watts
    lsb = adc.full_scale_watts / (1 << adc.bits)
    meter_samples = meter._samples
    samples_append = meter_samples.append
    n_samples = len(meter_samples)
    last_measured_w = meter_samples[-1].watts if n_samples else 0.0
    m_time = meter._time_s
    bucket_e = meter._bucket_energy_j
    bucket_t = meter._bucket_time_s

    sampler_elapsed = sampler._elapsed_s

    residency = st.residency
    trace = st.trace
    trace_append = trace.append
    instructions = st.instructions
    true_energy = st.true_energy
    sample_index = st.sample_index
    tick_index = st.tick_index

    # Chunked RNG only when no checkpoint can pickle a generator state.
    # The stock meter hands ONE generator to both front ends, so sense
    # and ADC noise interleave on a single stream: each sample close
    # consumes exactly two variates, in order, from one shared buffer
    # (_RNG_CHUNK is even, keeping refills aligned).  A meter with
    # split generators keeps scalar draws.
    batch_rng = BATCH_RNG and checkpointer is None
    batch_meter = batch_rng and sense._rng is adc._rng
    meter_std = sense_std
    jit_buf = m_buf = None
    jit_i = m_i = _RNG_CHUNK
    jit_refills = m_refills = 0
    if batch_rng:
        # Chunk refills run each generator ahead of the scalar script;
        # the `finally` below rewinds to these states and re-consumes
        # exactly the used counts (one array draw lands the generator
        # in the same state as that many scalar draws), so post-loop
        # consumers (the run-end meter flush) see scalar-exact streams.
        jit_state0 = machine._rng.bit_generator.state
        m_state0 = sense._rng.bit_generator.state

    # Current-p-state residency accumulates in a local; flushed to the
    # dict on p-state change and at every sync point.
    res_acc = residency.get(freq, 0.0)

    # Unpacked fields of the template the loop last touched.
    t_cur = None

    if checkpointer is not None:
        interval = checkpointer.interval_ticks
        next_checkpoint = (
            tick_index
            if tick_index == 0 and not resumed
            else tick_index + interval
        )
    else:
        next_checkpoint = _INF

    try:
        while retired < finish_line:
            if time_s > max_seconds:
                raise ExperimentError(
                    f"{workload_name} under {governor.name} exceeded "
                    f"{max_seconds}s of simulated time"
                )
            if tick_index >= next_checkpoint:
                # Locals -> objects so the pickled _RunState is exactly
                # what the scalar loop would have checkpointed.  (Only
                # reachable with a checkpointer, i.e. batch_rng off.)
                machine._time_s = time_s
                machine._jitter_log = jitter_log
                machine._charged_dead_time_s = charged
                cursor._retired = retired
                cursor._into_phase = into_phase
                cursor._phase_index = phase_index
                pmu._cycles = cycles_int
                pmu._cycle_residual = cycle_res
                pmu._residuals[0] = res0
                pmu._residuals[1] = res1
                msr.poke(IA32_PMC0, pmc0)
                msr.poke(IA32_PMC1, pmc1)
                msr.poke(IA32_TIME_STAMP_COUNTER, tsc)
                meter._time_s = m_time
                meter._bucket_energy_j = bucket_e
                meter._bucket_time_s = bucket_t
                sampler._elapsed_s = sampler_elapsed
                sampler._last = pmu.snapshot()
                residency[freq] = res_acc
                if mode == 0:
                    governor._raise_streak = raise_streak
                    governor._pending_raise = (
                        gov_states[pending_index]
                        if pending_index is not None
                        else None
                    )
                st.instructions = instructions
                st.true_energy = true_energy
                st.tick_index = tick_index
                checkpointer.save(tick_index, st, tel)
                next_checkpoint = tick_index + interval

            # ---- machine tick (mirrors Machine.step / run_block) ----
            start_time = time_s
            energy = 0.0
            tick_instr = 0.0
            elapsed = 0.0
            pmc0_start = pmc0
            pmc1_start = pmc1
            cycles_start = cycles_int

            template = templates[phase_index]
            if template is None:
                template = templates[phase_index] = rate_template(
                    phases[phase_index], pstate, timing, constants
                )
            if template is not t_cur:
                t_cur = template
                t_hz = template.hz
                t_cpi_core = template.cpi_core
                t_l2_stall = template.l2_stall_pi
                t_dram_stall = template.dram_stall_pi
                t_bytes_pi = template.bytes_pi
                t_bw_neg_p = template.bw_neg_p
                t_bus_bw = template.bus_bw
                t_dcu_occ = template.dcu_occupancy_pi
                t_decode = template.decode_ratio
                t_fp_ratio = template.fp_ratio
                t_l2r = template.l2r_coeff
                t_c_base = template.c_base
                t_c_gate = template.c_gate
                t_c_dpc_f = template.c_dpc_f
                t_c_fp = template.c_fp
                t_c_l2 = template.c_l2
                t_c_bus = template.c_bus
                t_v2f = template.v2f
                t_static = template.static_w
                t_idle_w = template.idle_w
                t_freq_mhz = template.freq_mhz
                t_instructions = template.instructions
                t_phase_end = template.phase_end
                t_sigma = template.sigma
                t_rho = template.rho
                t_jitter_scale = template.jitter_scale
                t_half_sig2 = template.half_sig2

            dead = dead_total - charged
            if dead > 0:
                if dead > dt:
                    dead = dt
                charged += dead
                energy += t_idle_w * dead
                # Inlined meter emit(t_idle_w, dead).
                remaining_t = dead
                while remaining_t > 0:
                    room = m_interval - bucket_t
                    chunk = remaining_t if remaining_t < room else room
                    bucket_e += t_idle_w * chunk
                    bucket_t += chunk
                    m_time += chunk
                    remaining_t -= chunk
                    if bucket_t >= close_eps:
                        true_mean = bucket_e / bucket_t
                        true_current = true_mean / supply
                        if batch_meter:
                            if m_i == _RNG_CHUNK:
                                m_buf = meter_std(_RNG_CHUNK).tolist()
                                m_i = 0
                                m_refills += 1
                            s_noise = 0.0 + amp_noise * m_buf[m_i]
                            a_noise = (
                                0.0 + noise_floor * m_buf[m_i + 1]
                            )
                            m_i += 2
                        else:
                            s_noise = sense_normal(0.0, amp_noise)
                            a_noise = adc_normal(0.0, noise_floor)
                        v_sense = true_current * realized + s_noise
                        sensed = (v_sense / nominal) * supply
                        noisy = sensed + a_noise
                        clipped = 0.0 if 0.0 > noisy else noisy
                        if full_scale < clipped:
                            clipped = full_scale
                        measured_w = round(clipped / lsb) * lsb
                        # Frozen-dataclass __init__ goes through
                        # object.__setattr__ four times; filling the
                        # instance dict directly builds an
                        # indistinguishable object at half the cost.
                        sample = _new(PowerSample)
                        sdict = sample.__dict__
                        sdict["time_s"] = m_time
                        sdict["watts"] = measured_w
                        sdict["true_watts"] = true_mean
                        sdict["duration_s"] = bucket_t
                        samples_append(sample)
                        last_measured_w = measured_w
                        n_samples += 1
                        bucket_e = 0.0
                        bucket_t = 0.0
                elapsed += dead

            if t_sigma == 0.0:
                jitter_log = 0.0
                jitter = 1.0
            else:
                if batch_rng:
                    if jit_i == _RNG_CHUNK:
                        jit_buf = mach_std(_RNG_CHUNK).tolist()
                        jit_i = 0
                        jit_refills += 1
                    innovation = 0.0 + t_jitter_scale * jit_buf[jit_i]
                    jit_i += 1
                else:
                    innovation = rng_normal(0.0, t_jitter_scale)
                jitter_log = t_rho * jitter_log + innovation
                jitter = _exp(jitter_log - t_half_sig2)
            jitter_q = jitter**0.25

            while elapsed < dt_eps and retired < finish_line:
                template = templates[phase_index]
                if template is None:
                    template = templates[phase_index] = rate_template(
                        phases[phase_index], pstate, timing, constants
                    )
                if template is not t_cur:
                    t_cur = template
                    t_hz = template.hz
                    t_cpi_core = template.cpi_core
                    t_l2_stall = template.l2_stall_pi
                    t_dram_stall = template.dram_stall_pi
                    t_bytes_pi = template.bytes_pi
                    t_bw_neg_p = template.bw_neg_p
                    t_bus_bw = template.bus_bw
                    t_dcu_occ = template.dcu_occupancy_pi
                    t_decode = template.decode_ratio
                    t_fp_ratio = template.fp_ratio
                    t_l2r = template.l2r_coeff
                    t_c_base = template.c_base
                    t_c_gate = template.c_gate
                    t_c_dpc_f = template.c_dpc_f
                    t_c_fp = template.c_fp
                    t_c_l2 = template.c_l2
                    t_c_bus = template.c_bus
                    t_v2f = template.v2f
                    t_static = template.static_w
                    t_idle_w = template.idle_w
                    t_freq_mhz = template.freq_mhz
                    t_instructions = template.instructions
                    t_phase_end = template.phase_end
                    t_sigma = template.sigma
                    t_rho = template.rho
                    t_jitter_scale = template.jitter_scale
                    t_half_sig2 = template.half_sig2
                remaining = total - retired
                if remaining < 0.0:
                    remaining = 0.0
                budget = t_instructions - into_phase
                if remaining < budget:
                    budget = remaining

                # Inlined execute_segment (bitwise: min(a, b) is
                # ``b if b < a else a`` for the float builtins).
                cpi_latency = (
                    t_cpi_core / jitter + t_l2_stall + t_dram_stall
                )
                ips = t_hz / cpi_latency
                if t_bytes_pi > 0:
                    ips = (ips**_NEG_P + t_bw_neg_p) ** _NEG_INV_P
                    bus = ips * t_bytes_pi / t_bus_bw
                    if bus > _OCCUPANCY_CAP:
                        bus = _OCCUPANCY_CAP
                else:
                    bus = 0.0
                ipc_rate = ips / t_hz
                dcu_rate = t_dcu_occ * ipc_rate
                if dcu_rate > DCU_OUTSTANDING_CAP:
                    dcu_rate = DCU_OUTSTANDING_CAP
                dpc_rate = t_decode * ipc_rate * jitter_q
                if dpc_rate > DECODE_WIDTH:
                    dpc_rate = DECODE_WIDTH
                activity = (
                    t_c_base
                    * (
                        1.0
                        - t_c_gate * (dcu_rate if dcu_rate < 1.0 else 1.0)
                    )
                    + t_c_dpc_f * dpc_rate
                    + t_c_fp * (t_fp_ratio * ipc_rate)
                    + t_c_l2 * (t_l2r * ipc_rate)
                    + t_c_bus * bus
                )
                full_power = t_v2f * activity + t_static
                power = (full_power - t_static) * duty + t_static
                effective_ips = ips * duty
                seg_time = budget / effective_ips
                time_left = dt - elapsed
                if time_left < seg_time:
                    seg_time = time_left
                seg_instr = effective_ips * seg_time
                if budget < seg_instr:
                    seg_instr = budget
                seg_cycles = seg_time * t_freq_mhz * 1e6 * duty

                retired += seg_instr
                into_phase += seg_instr
                if into_phase >= t_phase_end:
                    into_phase = 0.0
                    phase_index = (phase_index + 1) % n_phases
                cycle_res += seg_cycles
                whole = int(cycle_res)
                cycle_res -= whole
                cycles_int += whole
                tsc = (tsc + whole) & _M64
                if selector0 is not None:
                    rate = (
                        dpc_rate
                        if selector0 == 0
                        else (ipc_rate if selector0 == 1 else dcu_rate)
                    )
                    res0 += rate * seg_cycles
                    increment = int(res0)
                    res0 -= increment
                    pmc0 = (pmc0 + increment) & _M40
                if selector1 is not None:
                    rate = (
                        dpc_rate
                        if selector1 == 0
                        else (ipc_rate if selector1 == 1 else dcu_rate)
                    )
                    res1 += rate * seg_cycles
                    increment = int(res1)
                    res1 -= increment
                    pmc1 = (pmc1 + increment) & _M40
                energy += power * seg_time
                # Inlined meter emit(power, seg_time).
                remaining_t = seg_time
                while remaining_t > 0:
                    room = m_interval - bucket_t
                    chunk = remaining_t if remaining_t < room else room
                    bucket_e += power * chunk
                    bucket_t += chunk
                    m_time += chunk
                    remaining_t -= chunk
                    if bucket_t >= close_eps:
                        true_mean = bucket_e / bucket_t
                        true_current = true_mean / supply
                        if batch_meter:
                            if m_i == _RNG_CHUNK:
                                m_buf = meter_std(_RNG_CHUNK).tolist()
                                m_i = 0
                                m_refills += 1
                            s_noise = 0.0 + amp_noise * m_buf[m_i]
                            a_noise = (
                                0.0 + noise_floor * m_buf[m_i + 1]
                            )
                            m_i += 2
                        else:
                            s_noise = sense_normal(0.0, amp_noise)
                            a_noise = adc_normal(0.0, noise_floor)
                        v_sense = true_current * realized + s_noise
                        sensed = (v_sense / nominal) * supply
                        noisy = sensed + a_noise
                        clipped = 0.0 if 0.0 > noisy else noisy
                        if full_scale < clipped:
                            clipped = full_scale
                        measured_w = round(clipped / lsb) * lsb
                        # Frozen-dataclass __init__ goes through
                        # object.__setattr__ four times; filling the
                        # instance dict directly builds an
                        # indistinguishable object at half the cost.
                        sample = _new(PowerSample)
                        sdict = sample.__dict__
                        sdict["time_s"] = m_time
                        sdict["watts"] = measured_w
                        sdict["true_watts"] = true_mean
                        sdict["duration_s"] = bucket_t
                        samples_append(sample)
                        last_measured_w = measured_w
                        n_samples += 1
                        bucket_e = 0.0
                        bucket_t = 0.0
                tick_instr += seg_instr
                elapsed += seg_time

            time_s = start_time + elapsed
            mean_power = energy / elapsed if elapsed > 0 else 0.0

            # ---- sampler (mirrors CounterSampler.sample) ----
            c0 = (pmc0 - pmc0_start) & _M40
            cyc = (cycles_int - cycles_start) & _M40
            r0 = c0 / cyc if cyc > 0 else 0.0
            sampler_elapsed += elapsed

            # ---- accounting (mirrors the scalar loop body) ----
            instructions += tick_instr
            true_energy += energy
            tick_freq = freq
            res_acc += elapsed
            measured = (
                last_measured_w
                if n_samples > sample_index
                else mean_power
            )

            # ---- decide (table-driven, bit-identical to decide()) ----
            if mode == 0:  # PerformanceMaximizer
                row = proj_rows[current_index]
                desired_index = n_states - 1
                for i in range(n_states):
                    scale, alpha, beta = row[i]
                    if alpha * (r0 * scale) + beta <= budget_w:
                        desired_index = i
                        break
                if desired_index > current_index:
                    raise_streak = 0
                    pending_index = None
                    target_index = desired_index
                elif desired_index < current_index:
                    if pending_index is None or desired_index > pending_index:
                        pending_index = desired_index
                    raise_streak += 1
                    if raise_streak >= raise_window:
                        target_index = pending_index
                        raise_streak = 0
                        pending_index = None
                    else:
                        target_index = current_index
                else:
                    raise_streak = 0
                    pending_index = None
                    target_index = current_index
            elif mode == 1:  # PowerSave
                c1 = (pmc1 - pmc1_start) & _M40
                r1 = c1 / cyc if cyc > 0 else 0.0
                dcu_per_ipc = (r1 / r0) if r0 > 0 else _INF
                core_bound = dcu_per_ipc < dcu_threshold
                if core_bound:
                    peak = r0 * fastest_mhz * 1e6
                else:
                    peak = r0 * fast_factor[current_index] * fastest_mhz * 1e6
                target_index = 0
                for to_mhz, factor, candidate in ascending_rows[
                    current_index
                ]:
                    if core_bound:
                        throughput = r0 * to_mhz * 1e6
                    else:
                        throughput = r0 * factor * to_mhz * 1e6
                    relative = throughput / peak if peak > 0 else 1.0
                    if relative > floor_plus_eps:
                        target_index = candidate
                        break
            else:  # DemandBasedSwitching
                if elapsed <= 0:
                    utilization = 1.0
                else:
                    available = freq_1e6 * elapsed
                    utilization = min(1.0, cyc / available)
                if utilization >= up_threshold:
                    target_index = (
                        current_index - 1 if current_index > 0 else 0
                    )
                elif utilization <= down_threshold:
                    target_index = (
                        current_index + 1
                        if current_index < n_states - 1
                        else current_index
                    )
                else:
                    target_index = current_index

            # ---- actuate (through the real driver: MSR writes, DVFS
            # dead time and transition counts stay checkpoint-exact) ----
            if target_index != current_index:
                residency[freq] = res_acc
                driver.set_pstate(gov_states[target_index])
                pstate = dvfs.current
                current_index = state_index[pstate]
                templates = template_rows[current_index]
                freq = pstate.frequency_mhz
                freq_1e6 = freq * 1e6
                dead_total = dvfs.total_dead_time_s
                res_acc = residency.get(freq, 0.0)

            if keep_trace:
                if mode == 1:
                    rates = {event0: r0, event1: r1}
                else:
                    rates = {event0: r0}
                trace_append(
                    TraceRow(
                        time_s=time_s,
                        frequency_mhz=tick_freq,
                        measured_power_w=measured,
                        true_power_w=mean_power,
                        instructions=tick_instr,
                        rates=rates,
                        duty=duty,
                        temperature_c=None,
                    )
                )
            tick_index += 1
    finally:
        # Locals -> objects (also on the max_seconds raise and any
        # unexpected error, so nothing is ever left torn).
        if jit_buf is not None:
            machine._rng.bit_generator.state = jit_state0
            used = (jit_refills - 1) * _RNG_CHUNK + jit_i
            if used:
                mach_std(used)
        if m_buf is not None:
            sense._rng.bit_generator.state = m_state0
            used = (m_refills - 1) * _RNG_CHUNK + m_i
            if used:
                meter_std(used)
        machine._time_s = time_s
        machine._jitter_log = jitter_log
        machine._charged_dead_time_s = charged
        cursor._retired = retired
        cursor._into_phase = into_phase
        cursor._phase_index = phase_index
        pmu._cycles = cycles_int
        pmu._cycle_residual = cycle_res
        pmu._residuals[0] = res0
        pmu._residuals[1] = res1
        msr.poke(IA32_PMC0, pmc0)
        msr.poke(IA32_PMC1, pmc1)
        msr.poke(IA32_TIME_STAMP_COUNTER, tsc)
        meter._time_s = m_time
        meter._bucket_energy_j = bucket_e
        meter._bucket_time_s = bucket_t
        sampler._elapsed_s = sampler_elapsed
        sampler._last = pmu.snapshot()
        residency[freq] = res_acc
        if mode == 0:
            governor._raise_streak = raise_streak
            governor._pending_raise = (
                gov_states[pending_index]
                if pending_index is not None
                else None
            )

    st.instructions = instructions
    st.true_energy = true_energy
    st.tick_index = tick_index
    return _finish_run(st, tel)
