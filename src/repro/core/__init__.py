"""The paper's contribution: application-aware power management.

Three-phase methodology (paper §III, Fig. 3):

* **Monitor** -- :mod:`repro.core.sampling` reads the two PMU counters
  every 10 ms through the driver layer.
* **Estimate/Predict** -- :mod:`repro.core.models` projects power and
  performance at *every* p-state from the current sample (this
  cross-p-state prediction is the paper's key modelling novelty).
* **Control** -- :mod:`repro.core.governors` pick the p-state meeting the
  user's constraint: PerformanceMaximizer (power limit) and PowerSave
  (performance floor), plus the baselines they are evaluated against.

:mod:`repro.core.controller` wires the three phases into the run loop.
"""

from repro.core.sampling import CounterSample, CounterSampler
from repro.core.models import (
    LinearPowerModel,
    PerformanceModel,
    PAPER_TABLE_II,
    project_dpc,
)
from repro.core.governors import (
    Governor,
    PerformanceMaximizer,
    PowerSave,
    StaticClocking,
    FixedFrequency,
    DemandBasedSwitching,
    AdaptivePerformanceMaximizer,
    ComponentPerformanceMaximizer,
    EnergyDelayOptimizer,
    ThermalGuard,
    ThrottlingMaximizer,
    ConfigProjection,
    EnergyOptimalSearch,
    ThreadsFreqGovernor,
)
from repro.core.controller import PowerManagementController, RunResult, TraceRow
from repro.core.resilience import PowerReadingFilter, ResilienceConfig

__all__ = [
    "CounterSample",
    "CounterSampler",
    "LinearPowerModel",
    "PerformanceModel",
    "PAPER_TABLE_II",
    "project_dpc",
    "Governor",
    "PerformanceMaximizer",
    "PowerSave",
    "StaticClocking",
    "FixedFrequency",
    "DemandBasedSwitching",
    "AdaptivePerformanceMaximizer",
    "ComponentPerformanceMaximizer",
    "EnergyDelayOptimizer",
    "ThermalGuard",
    "ThrottlingMaximizer",
    "ConfigProjection",
    "EnergyOptimalSearch",
    "ThreadsFreqGovernor",
    "PowerManagementController",
    "RunResult",
    "TraceRow",
    "ResilienceConfig",
    "PowerReadingFilter",
]
