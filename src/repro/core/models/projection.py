"""DPC projection across p-states (paper Eq. 4).

PerformanceMaximizer monitors only the decode rate at the *current*
frequency; to estimate power at other p-states it must first estimate
what the decode rate would be there.  The paper's Eq. 4::

    DPC(f') = DPC(f) * (f / f')   if f' <= f
    DPC(f') = DPC(f)              if f' >  f

is a deliberately conservative envelope:

* scaling **down** assumes decode throughput per *second* is fixed
  (memory-bound behaviour) so the per-cycle rate rises -- the highest
  per-cycle activity the slower state could exhibit;
* scaling **up** assumes the per-cycle rate is fixed (core-bound
  behaviour) -- again the highest activity the faster state could
  sustain.

Feeding the power model an over-estimate of DPC in both directions makes
PM err on the safe side of the power limit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acpi.pstates import PStateTable
    from repro.core.models.performance import PerformanceModel
    from repro.core.models.power import LinearPowerModel


def project_dpc(dpc: float, from_mhz: float, to_mhz: float) -> float:
    """Project a decoded-instructions-per-cycle rate to another p-state.

    Parameters
    ----------
    dpc:
        Observed DPC at ``from_mhz``.
    from_mhz / to_mhz:
        Current and candidate frequencies.

    Returns
    -------
    float
        The conservative DPC estimate at ``to_mhz`` (paper Eq. 4).
    """
    if dpc < 0:
        raise ModelError(f"DPC cannot be negative, got {dpc}")
    if from_mhz <= 0 or to_mhz <= 0:
        raise ModelError("frequencies must be positive")
    if to_mhz <= from_mhz:
        return dpc * (from_mhz / to_mhz)
    return dpc


def project_rate_conservative(
    rate: float, from_mhz: float, to_mhz: float
) -> float:
    """Eq. 4 generalized to any per-cycle activity rate.

    The same memory-bound-down / core-bound-up envelope applies to other
    activity rates (e.g. DCU occupancy for PS's secondary prediction);
    this alias documents that reuse.
    """
    return project_dpc(rate, from_mhz, to_mhz)


class PowerProjectionTable:
    """Fused Eq. 4 x Eq. 2 rows for PerformanceMaximizer's inner loop.

    Per (current, candidate) p-state pair the projection is affine in
    the observed DPC::

        P_est = alpha(f') * (DPC * scale(f, f')) + beta(f')

    where ``scale`` is Eq. 4's conservative ratio (``f / f'`` when
    stepping down or staying, ``1.0`` when stepping up -- ``DPC * 1.0``
    is bitwise ``DPC``, so one row shape covers both directions).  The
    table is built once per model version and cached process-wide by
    :mod:`repro.exec.cache`; a governor whose model is hot-swapped by
    online adaptation drops its reference and rebuilds against the new
    coefficients.

    Rows are indexed by the *descending* p-state table index (fastest
    first), matching :class:`repro.acpi.pstates.PStateTable` order.
    """

    __slots__ = ("model", "frequencies_mhz", "rows")

    def __init__(self, model: "LinearPowerModel", table: "PStateTable"):
        freqs = table.frequencies_mhz
        rows = []
        for from_mhz in freqs:
            row = []
            for to_mhz in freqs:
                coeff = model.coefficients(to_mhz)
                scale = (from_mhz / to_mhz) if to_mhz <= from_mhz else 1.0
                row.append((scale, coeff.alpha, coeff.beta))
            rows.append(tuple(row))
        self.model = model
        self.frequencies_mhz = freqs
        self.rows = tuple(rows)

    def estimate(
        self, dpc: float, current_index: int, candidate_index: int
    ) -> float:
        """Estimated watts at the candidate, from DPC at the current."""
        scale, alpha, beta = self.rows[current_index][candidate_index]
        return alpha * (dpc * scale) + beta

    def desired_index(
        self, dpc: float, current_index: int, budget_w: float
    ) -> int:
        """Fastest candidate whose estimate fits the budget (Eq. 4 pick).

        Mirrors ``PerformanceMaximizer.decide``'s candidate scan exactly:
        fastest-first, first fit wins, slowest state as the fallback.
        """
        row = self.rows[current_index]
        for index, (scale, alpha, beta) in enumerate(row):
            if alpha * (dpc * scale) + beta <= budget_w:
                return index
        return len(row) - 1


class ThroughputProjectionTable:
    """Precomputed Eq. 3 frequency-sensitivity rows for PowerSave.

    ``project_ipc`` re-derives ``(f / f') ** memory_exponent`` for every
    candidate on every tick; the power factor depends only on the
    (current, candidate) frequency pair and the model's exponent, so it
    is tabulated here.  ``desired_index`` replicates
    ``PowerSave.decide`` operation-for-operation: classify once, scan
    candidates slowest-first, first state clearing the floor wins,
    fastest state as the fallback.

    Indices are *descending* table indices (fastest first); candidate
    rows are stored in the ascending scan order PS uses.
    """

    __slots__ = (
        "model",
        "frequencies_mhz",
        "fastest_mhz",
        "ascending",
        "fast_factor",
    )

    def __init__(self, model: "PerformanceModel", table: "PStateTable"):
        freqs = table.frequencies_mhz
        exponent = model.memory_exponent
        ascending = []
        fast_factor = []
        n = len(freqs)
        for from_mhz in freqs:
            row = []
            for position in range(n - 1, -1, -1):  # slowest-first scan
                to_mhz = freqs[position]
                row.append(
                    (to_mhz, (from_mhz / to_mhz) ** exponent, position)
                )
            ascending.append(tuple(row))
            fast_factor.append((from_mhz / freqs[0]) ** exponent)
        self.model = model
        self.frequencies_mhz = freqs
        self.fastest_mhz = freqs[0]
        self.ascending = tuple(ascending)
        self.fast_factor = tuple(fast_factor)

    def desired_index(
        self,
        ipc: float,
        dcu_per_ipc: float,
        current_index: int,
        floor_plus_eps: float,
    ) -> int:
        """The slowest candidate whose relative performance clears the floor."""
        core_bound = dcu_per_ipc < self.model.dcu_threshold
        if core_bound:
            peak = ipc * self.fastest_mhz * 1e6
        else:
            peak = ipc * self.fast_factor[current_index] * self.fastest_mhz * 1e6
        for to_mhz, factor, index in self.ascending[current_index]:
            if core_bound:
                throughput = ipc * to_mhz * 1e6
            else:
                throughput = ipc * factor * to_mhz * 1e6
            relative = throughput / peak if peak > 0 else 1.0
            if relative > floor_plus_eps:
                return index
        return 0
