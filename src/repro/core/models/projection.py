"""DPC projection across p-states (paper Eq. 4).

PerformanceMaximizer monitors only the decode rate at the *current*
frequency; to estimate power at other p-states it must first estimate
what the decode rate would be there.  The paper's Eq. 4::

    DPC(f') = DPC(f) * (f / f')   if f' <= f
    DPC(f') = DPC(f)              if f' >  f

is a deliberately conservative envelope:

* scaling **down** assumes decode throughput per *second* is fixed
  (memory-bound behaviour) so the per-cycle rate rises -- the highest
  per-cycle activity the slower state could exhibit;
* scaling **up** assumes the per-cycle rate is fixed (core-bound
  behaviour) -- again the highest activity the faster state could
  sustain.

Feeding the power model an over-estimate of DPC in both directions makes
PM err on the safe side of the power limit.
"""

from __future__ import annotations

from repro.errors import ModelError


def project_dpc(dpc: float, from_mhz: float, to_mhz: float) -> float:
    """Project a decoded-instructions-per-cycle rate to another p-state.

    Parameters
    ----------
    dpc:
        Observed DPC at ``from_mhz``.
    from_mhz / to_mhz:
        Current and candidate frequencies.

    Returns
    -------
    float
        The conservative DPC estimate at ``to_mhz`` (paper Eq. 4).
    """
    if dpc < 0:
        raise ModelError(f"DPC cannot be negative, got {dpc}")
    if from_mhz <= 0 or to_mhz <= 0:
        raise ModelError("frequencies must be positive")
    if to_mhz <= from_mhz:
        return dpc * (from_mhz / to_mhz)
    return dpc


def project_rate_conservative(
    rate: float, from_mhz: float, to_mhz: float
) -> float:
    """Eq. 4 generalized to any per-cycle activity rate.

    The same memory-bound-down / core-bound-up envelope applies to other
    activity rates (e.g. DCU occupancy for PS's secondary prediction);
    this alias documents that reuse.
    """
    return project_dpc(rate, from_mhz, to_mhz)
