"""Model training on the MS-Loops microbenchmarks (paper §III-A).

This module re-runs the paper's model-construction procedure on the
simulated platform:

1. **Collect** -- run each of the 12 microbenchmarks (4 loops x 3
   footprints) at every p-state, recording mean DPC, IPC, DCU and
   *measured* power (through the simulated sense-resistor/DAQ rig).
   Because the PMU has only two counters, each point is characterized in
   two passes with different counter programmings -- feasible precisely
   because the loops are stable across runs, which the paper gives as
   the reason for using small well-defined loops as the training set.
2. **Fit power** -- per p-state linear fit ``P = alpha*DPC + beta``
   minimizing *absolute* error (the paper's criterion), via iteratively
   reweighted least squares.
3. **Fit performance** -- grid-optimize the DCU/IPC threshold and the
   memory-class exponent of Eq. 3 against the measured cross-p-state
   IPC ratios.

The reproduced Table II is compared against the published one in the
Table II experiment; the exponent error curve exposes the 0.81/0.59
local-minima story of §IV-B2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.acpi.pstates import PState, PStateTable, pentium_m_755_table
from repro.core.models.performance import PerformanceModel
from repro.core.models.power import LinearPowerModel, PStateCoefficients
from repro.core.sampling import CounterSampler
from repro.errors import TrainingError
from repro.measurement.power_meter import PowerMeter
from repro.platform.events import Event
from repro.platform.machine import Machine, MachineConfig
from repro.workloads.base import Workload
from repro.workloads.microbenchmarks import ms_loops


@dataclass(frozen=True)
class TrainingPoint:
    """One (workload, p-state) characterization."""

    workload: str
    frequency_mhz: float
    dpc: float
    ipc: float
    dcu: float
    measured_power_w: float

    @property
    def dcu_per_ipc(self) -> float:
        """Memory-boundedness metric of this point."""
        return self.dcu / self.ipc if self.ipc > 0 else float("inf")


def _characterize(
    workload: Workload,
    pstate: PState,
    events: Sequence[Event],
    config: MachineConfig,
    duration_s: float,
    warmup_ticks: int,
) -> tuple[dict[Event, float], float]:
    """Run ``workload`` at ``pstate`` and average rates + measured power."""
    machine = Machine(config)
    meter = PowerMeter(
        interval_s=config.tick_s, rng=np.random.default_rng(config.seed + 7)
    )
    machine.add_power_sink(meter.accumulate)
    machine.load(workload, initial_pstate=pstate)
    sampler = CounterSampler(machine.pmu, events)
    sampler.start()

    sums: dict[Event, float] = {e: 0.0 for e in events}
    count = 0
    tick = 0
    while machine.now_s < duration_s and not machine.finished:
        record = machine.step()
        sample = sampler.sample(record.duration_s)
        tick += 1
        if tick <= warmup_ticks:
            continue
        for event in events:
            sums[event] += sample.rate(event)
        count += 1
    if count == 0:
        raise TrainingError(
            f"{workload.name} at {pstate}: no usable samples "
            f"(duration_s={duration_s}, warmup={warmup_ticks})"
        )
    meter.flush()
    power_samples = meter.samples[warmup_ticks:]
    if not power_samples:
        raise TrainingError(f"{workload.name} at {pstate}: no power samples")
    mean_power = float(np.mean([s.watts for s in power_samples]))
    return {e: sums[e] / count for e in events}, mean_power


def collect_training_data(
    workloads: Iterable[Workload] | None = None,
    table: PStateTable | None = None,
    config: MachineConfig | None = None,
    duration_s: float = 0.25,
    warmup_ticks: int = 2,
) -> tuple[TrainingPoint, ...]:
    """Characterize the training set at every p-state (two passes each).

    Returns one :class:`TrainingPoint` per (workload, p-state) with DPC,
    IPC, DCU and measured power -- the paper's 12-points-per-p-state
    training data (§III-A).
    """
    workloads = tuple(workloads) if workloads is not None else ms_loops()
    table = table if table is not None else pentium_m_755_table()
    config = config if config is not None else MachineConfig()

    points: list[TrainingPoint] = []
    for workload in workloads:
        for pstate in table:
            # Pass 1: decode + retire rates, and the power measurement.
            rates1, power = _characterize(
                workload,
                pstate,
                (Event.INST_DECODED, Event.INST_RETIRED),
                config,
                duration_s,
                warmup_ticks,
            )
            # Pass 2: DCU occupancy (re-measures IPC as a cross-check).
            rates2, _ = _characterize(
                workload,
                pstate,
                (Event.DCU_MISS_OUTSTANDING, Event.INST_RETIRED),
                config,
                duration_s,
                warmup_ticks,
            )
            points.append(
                TrainingPoint(
                    workload=workload.name,
                    frequency_mhz=pstate.frequency_mhz,
                    dpc=rates1[Event.INST_DECODED],
                    ipc=rates1[Event.INST_RETIRED],
                    dcu=rates2[Event.DCU_MISS_OUTSTANDING],
                    measured_power_w=power,
                )
            )
    return tuple(points)


def _l1_linear_fit(
    x: np.ndarray, y: np.ndarray, iterations: int = 60, eps: float = 1e-6
) -> tuple[float, float]:
    """Least-absolute-error line fit via iteratively reweighted LS.

    The paper minimizes absolute-value error between measured and
    estimated power (§III-A1); IRLS with 1/|residual| weights converges
    to that L1 solution for clean data like the training set.
    """
    if len(x) < 2:
        raise TrainingError("need at least two points for a linear fit")
    design = np.column_stack([x, np.ones_like(x)])
    weights = np.ones_like(y)
    slope, intercept = 0.0, float(np.median(y))
    for _ in range(iterations):
        w_design = design * weights[:, None]
        w_y = y * weights
        slope, intercept = np.linalg.lstsq(w_design, w_y, rcond=None)[0]
        residuals = np.abs(y - (slope * x + intercept))
        weights = 1.0 / np.sqrt(np.maximum(residuals, eps))
    return float(slope), float(intercept)


def fit_power_model(points: Sequence[TrainingPoint]) -> LinearPowerModel:
    """Fit the per-p-state linear power model (reproduces Table II)."""
    if not points:
        raise TrainingError("empty training set")
    by_freq: dict[float, list[TrainingPoint]] = {}
    for point in points:
        by_freq.setdefault(point.frequency_mhz, []).append(point)
    coefficients: dict[float, PStateCoefficients] = {}
    for freq, group in by_freq.items():
        if len(group) < 3:
            raise TrainingError(
                f"{freq} MHz has only {len(group)} training points; "
                "the fit needs the full loop/footprint spread"
            )
        x = np.array([p.dpc for p in group])
        y = np.array([p.measured_power_w for p in group])
        alpha, beta = _l1_linear_fit(x, y)
        coefficients[freq] = PStateCoefficients(alpha=alpha, beta=beta)
    return LinearPowerModel(coefficients)


def _performance_error(
    points: Sequence[TrainingPoint],
    model: PerformanceModel,
) -> float:
    """Mean relative |error| of cross-p-state IPC prediction.

    For every workload and every ordered pair of p-states, predict the
    IPC at the target state from the source-state sample and compare to
    the measured IPC there -- the quantity the paper optimized threshold
    and exponent against.
    """
    by_workload: dict[str, list[TrainingPoint]] = {}
    for point in points:
        by_workload.setdefault(point.workload, []).append(point)
    errors: list[float] = []
    for group in by_workload.values():
        for src in group:
            for dst in group:
                if src.frequency_mhz == dst.frequency_mhz:
                    continue
                predicted = model.project_ipc(
                    src.ipc, src.dcu_per_ipc, src.frequency_mhz, dst.frequency_mhz
                )
                if dst.ipc > 0:
                    errors.append(abs(predicted - dst.ipc) / dst.ipc)
    if not errors:
        raise TrainingError("no cross-p-state pairs in the training set")
    return float(np.mean(errors))


def fit_performance_model(
    points: Sequence[TrainingPoint],
    thresholds: Sequence[float] | None = None,
    exponents: Sequence[float] | None = None,
) -> PerformanceModel:
    """Grid-optimize Eq. 3's threshold and exponent on the training set."""
    thresholds = (
        tuple(thresholds)
        if thresholds is not None
        else tuple(np.round(np.arange(0.4, 3.01, 0.05), 4))
    )
    exponents = (
        tuple(exponents)
        if exponents is not None
        else tuple(np.round(np.arange(0.30, 1.001, 0.01), 4))
    )
    best: tuple[float, PerformanceModel] | None = None
    for threshold in thresholds:
        for exponent in exponents:
            model = PerformanceModel(
                dcu_threshold=float(threshold), memory_exponent=float(exponent)
            )
            error = _performance_error(points, model)
            if best is None or error < best[0]:
                best = (error, model)
    assert best is not None
    return best[1]


def exponent_error_curve(
    points: Sequence[TrainingPoint],
    threshold: float = 1.21,
    exponents: Sequence[float] | None = None,
) -> tuple[tuple[float, float], ...]:
    """(exponent, error) curve at a fixed threshold.

    The paper reports *two* local minima of this curve -- 0.81 (used as
    primary) and 0.59 (the alternative that fixes art/mcf) -- so the
    curve itself is an experiment artifact (§IV-B2).
    """
    exponents = (
        tuple(exponents)
        if exponents is not None
        else tuple(np.round(np.arange(0.30, 1.001, 0.01), 4))
    )
    curve = []
    for exponent in exponents:
        model = PerformanceModel(
            dcu_threshold=threshold, memory_exponent=exponent
        )
        curve.append((float(exponent), _performance_error(points, model)))
    return tuple(curve)


def local_minima(curve: Sequence[tuple[float, float]]) -> tuple[float, ...]:
    """Exponents at local minima of an error curve (including endpoints)."""
    minima = []
    for i, (exponent, error) in enumerate(curve):
        left = curve[i - 1][1] if i > 0 else float("inf")
        right = curve[i + 1][1] if i + 1 < len(curve) else float("inf")
        if error <= left and error <= right:
            minima.append(exponent)
    return tuple(minima)


def summarize_points(
    points: Sequence[TrainingPoint],
) -> Mapping[float, tuple[float, float]]:
    """Per-frequency (min DPC, max DPC) spread -- fit-quality diagnostics."""
    by_freq: dict[float, list[float]] = {}
    for point in points:
        by_freq.setdefault(point.frequency_mhz, []).append(point.dpc)
    return {
        freq: (min(vals), max(vals)) for freq, vals in sorted(by_freq.items())
    }
