"""The two-class IPC projection model (paper Eq. 3).

Workloads respond to frequency changes along a spectrum (paper Fig. 2);
the paper approximates the spectrum with two classes split on the
DCU/IPC memory-boundedness metric::

    IPC' = IPC                      if DCU/IPC <  1.21   (core-bound)
    IPC' = IPC * (f/f')^e           if DCU/IPC >= 1.21   (memory-bound)

with ``e = 0.81`` (the paper's primary fit) or ``e = 0.59`` (the other
local minimum, which the paper shows repairs the art/mcf floor
violations, §IV-B2).

Interpretation: core-bound code keeps its per-cycle rate, so throughput
scales with frequency; memory-bound code keeps (approximately) its
per-second rate, so the per-cycle rate rises as frequency drops.  The
exponent interpolates toward the perfectly-memory-bound limit ``e = 1``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ModelError


class WorkloadClass(enum.Enum):
    """The model's two behaviour classes."""

    CORE_BOUND = "core"
    MEMORY_BOUND = "memory"


@dataclass(frozen=True)
class PerformanceModel:
    """Eq. 3 with configurable threshold and exponent.

    Attributes
    ----------
    dcu_threshold:
        DCU/IPC boundary between the classes (paper: 1.21).
    memory_exponent:
        Frequency-dependence exponent for the memory class (paper: 0.81
        primary, 0.59 alternative).
    """

    dcu_threshold: float = 1.21
    memory_exponent: float = 0.81

    def __post_init__(self) -> None:
        if self.dcu_threshold <= 0:
            raise ModelError("DCU/IPC threshold must be positive")
        if not 0.0 <= self.memory_exponent <= 1.0:
            raise ModelError(
                "memory exponent must lie in [0, 1] (0 = core-like, "
                f"1 = perfectly memory-bound), got {self.memory_exponent}"
            )

    @classmethod
    def paper_primary(cls) -> "PerformanceModel":
        """The paper's main model (threshold 1.21, exponent 0.81)."""
        return cls()

    @classmethod
    def paper_alternative(cls) -> "PerformanceModel":
        """The paper's alternative fit (exponent 0.59, §IV-B2)."""
        return cls(memory_exponent=0.59)

    def classify(self, dcu_per_ipc: float) -> WorkloadClass:
        """Classify a sample by its DCU/IPC ratio."""
        if dcu_per_ipc < 0:
            raise ModelError("DCU/IPC cannot be negative")
        if dcu_per_ipc < self.dcu_threshold:
            return WorkloadClass.CORE_BOUND
        return WorkloadClass.MEMORY_BOUND

    def project_ipc(
        self,
        ipc: float,
        dcu_per_ipc: float,
        from_mhz: float,
        to_mhz: float,
    ) -> float:
        """Predicted IPC at ``to_mhz`` given a sample at ``from_mhz``."""
        if ipc < 0:
            raise ModelError("IPC cannot be negative")
        if from_mhz <= 0 or to_mhz <= 0:
            raise ModelError("frequencies must be positive")
        if self.classify(dcu_per_ipc) is WorkloadClass.CORE_BOUND:
            return ipc
        return ipc * (from_mhz / to_mhz) ** self.memory_exponent

    def project_throughput(
        self,
        ipc: float,
        dcu_per_ipc: float,
        from_mhz: float,
        to_mhz: float,
    ) -> float:
        """Predicted instructions per second at ``to_mhz``.

        This is the quantity PS compares against the performance floor:
        throughput = projected IPC x frequency.
        """
        return (
            self.project_ipc(ipc, dcu_per_ipc, from_mhz, to_mhz) * to_mhz * 1e6
        )

    def relative_performance(
        self,
        dcu_per_ipc: float,
        from_mhz: float,
        to_mhz: float,
    ) -> float:
        """Predicted throughput ratio (to / from), independent of IPC.

        Core class: ``f'/f``.  Memory class: ``(f'/f)^(1-e)``.
        """
        if self.classify(dcu_per_ipc) is WorkloadClass.CORE_BOUND:
            return to_mhz / from_mhz
        return (to_mhz / from_mhz) ** (1.0 - self.memory_exponent)
