"""Estimate/Predict phase: online power and performance models.

The distinguishing feature of the paper's models (see its related-work
discussion) is that they predict the effect of moving to *other*
p-states, not just conditions at the current one:

* :mod:`repro.core.models.projection` -- DPC projection across p-states
  (paper Eq. 4);
* :mod:`repro.core.models.power` -- the per-p-state linear DPC power
  model (paper Eq. 2 / Table II);
* :mod:`repro.core.models.performance` -- the two-class IPC projection
  (paper Eq. 3, threshold 1.21, exponent 0.81 with 0.59 as the
  alternative local minimum);
* :mod:`repro.core.models.training` -- re-derives all model parameters
  from the MS-Loops training set, reproducing Table II and the Eq. 3
  constants rather than hard-coding them.
"""

from repro.core.models.power import (
    LinearPowerModel,
    PStateCoefficients,
    PAPER_TABLE_II,
)
from repro.core.models.performance import PerformanceModel, WorkloadClass
from repro.core.models.projection import project_dpc, project_rate_conservative
from repro.core.models.component_power import (
    COMPONENT_EVENTS,
    ComponentPowerModel,
    ComponentTrainingPoint,
    collect_component_training_data,
    fit_component_model,
)
from repro.core.models.training import (
    TrainingPoint,
    collect_training_data,
    fit_power_model,
    fit_performance_model,
    exponent_error_curve,
)

__all__ = [
    "LinearPowerModel",
    "PStateCoefficients",
    "PAPER_TABLE_II",
    "PerformanceModel",
    "WorkloadClass",
    "project_dpc",
    "project_rate_conservative",
    "COMPONENT_EVENTS",
    "ComponentPowerModel",
    "ComponentTrainingPoint",
    "collect_component_training_data",
    "fit_component_model",
    "TrainingPoint",
    "collect_training_data",
    "fit_power_model",
    "fit_performance_model",
    "exponent_error_curve",
]
