"""The per-p-state linear DPC power model (paper Eq. 2 / Table II).

``Power = alpha * DPC + beta`` with distinct ``(alpha, beta)`` per
p-state, because supply voltage and frequency dominate both the dynamic
and static components (paper Eq. 1).  The published coefficients are
available as :data:`PAPER_TABLE_II`; the training pipeline
(:mod:`repro.core.models.training`) re-derives an equivalent model from
the MS-Loops microbenchmarks on the simulated platform, and the Table II
reproduction experiment compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.acpi.pstates import PState
from repro.errors import ModelError


@dataclass(frozen=True)
class PStateCoefficients:
    """Linear model coefficients for one p-state: ``P = alpha*DPC + beta``."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ModelError(
                f"alpha must be non-negative (power rises with activity), "
                f"got {self.alpha}"
            )
        if self.beta <= 0:
            raise ModelError(
                f"beta must be positive (idle power is non-zero), got {self.beta}"
            )

    def estimate(self, dpc: float) -> float:
        """Estimated power in watts at the given decode rate."""
        if dpc < 0:
            raise ModelError(f"DPC cannot be negative, got {dpc}")
        return self.alpha * dpc + self.beta


#: The paper's Table II: DPC-based power model per p-state, as measured
#: and fitted by the authors on the real Pentium M 755.
PAPER_TABLE_II: Mapping[float, PStateCoefficients] = {
    600.0: PStateCoefficients(0.34, 2.58),
    800.0: PStateCoefficients(0.54, 3.56),
    1000.0: PStateCoefficients(0.77, 4.49),
    1200.0: PStateCoefficients(1.06, 5.60),
    1400.0: PStateCoefficients(1.42, 6.95),
    1600.0: PStateCoefficients(1.82, 8.44),
    1800.0: PStateCoefficients(2.36, 10.18),
    2000.0: PStateCoefficients(2.93, 12.11),
}


class LinearPowerModel:
    """A per-p-state linear power model keyed by frequency.

    Instances are immutable mappings ``frequency_mhz -> (alpha, beta)``.
    Use :meth:`paper_model` for the published Table II coefficients or
    :func:`repro.core.models.training.fit_power_model` to train one on
    the simulated platform.
    """

    def __init__(self, coefficients: Mapping[float, PStateCoefficients]):
        if not coefficients:
            raise ModelError("power model needs at least one p-state")
        self._coefficients = dict(coefficients)

    @classmethod
    def paper_model(cls) -> "LinearPowerModel":
        """The model with the paper's published Table II coefficients."""
        return cls(PAPER_TABLE_II)

    @property
    def frequencies_mhz(self) -> tuple[float, ...]:
        """Frequencies the model covers, ascending."""
        return tuple(sorted(self._coefficients))

    def coefficients(self, frequency_mhz: float) -> PStateCoefficients:
        """The (alpha, beta) pair for a p-state."""
        try:
            return self._coefficients[frequency_mhz]
        except KeyError:
            raise ModelError(
                f"no coefficients for {frequency_mhz} MHz; "
                f"model covers {self.frequencies_mhz}"
            ) from None

    def estimate(self, pstate: PState | float, dpc: float) -> float:
        """Estimated power at ``pstate`` for decode rate ``dpc``.

        Accepts a :class:`PState` or a bare frequency in MHz.
        """
        freq = pstate.frequency_mhz if isinstance(pstate, PState) else pstate
        return self.coefficients(freq).estimate(dpc)

    def alpha(self, frequency_mhz: float) -> float:
        """Slope at a p-state (W per DPC)."""
        return self.coefficients(frequency_mhz).alpha

    def beta(self, frequency_mhz: float) -> float:
        """Intercept at a p-state (W)."""
        return self.coefficients(frequency_mhz).beta

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearPowerModel):
            return NotImplemented
        return self._coefficients == other._coefficients

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rows = ", ".join(
            f"{f:.0f}MHz:(a={c.alpha:.2f},b={c.beta:.2f})"
            for f, c in sorted(self._coefficients.items())
        )
        return f"LinearPowerModel({rows})"
