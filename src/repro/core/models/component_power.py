"""Multi-event (component) power model -- the paper's refinement path.

The paper closes with "we expect additional refinements could further
improve both [models]" and its related work cites Isci et al.'s
per-component counter models.  This module provides that refinement: a
per-p-state *multi-linear* power model over decode, FP and L2 activity::

    P = a_dpc*DPC + a_fp*FP + a_l2*L2 + b        (per p-state)

Because the Pentium M has only two counters, both training and runtime
use event rotation: characterization runs one extra pass per event
group, and the online governor multiplexes
(:class:`~repro.core.sampling.MultiplexedCounterSampler`).

The payoff is exactly the galgel failure mode: its packed-FP phases burn
power the DPC-only model cannot see, while the component model's FP term
captures it (see the component-model ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.acpi.pstates import PState, PStateTable, pentium_m_755_table
from repro.core.models.projection import project_dpc
from repro.core.models.training import _characterize
from repro.errors import ModelError, TrainingError
from repro.platform.events import Event
from repro.platform.machine import MachineConfig
from repro.workloads.base import Workload
from repro.workloads.microbenchmarks import ms_loops

#: The activity events the component model regresses on.
COMPONENT_EVENTS: tuple[Event, ...] = (
    Event.INST_DECODED,
    Event.FP_COMP_OPS_EXE,
    Event.L2_RQSTS,
)


@dataclass(frozen=True)
class ComponentTrainingPoint:
    """One (workload, p-state) characterization with component rates."""

    workload: str
    frequency_mhz: float
    rates: Mapping[Event, float]
    measured_power_w: float


def collect_component_training_data(
    workloads: Iterable[Workload] | None = None,
    table: PStateTable | None = None,
    config: MachineConfig | None = None,
    duration_s: float = 0.25,
    warmup_ticks: int = 2,
) -> tuple[ComponentTrainingPoint, ...]:
    """Characterize the training set for the component model.

    Each point needs three event rates; with two counters that is two
    passes per point (decode+FP, then L2) -- feasible, again, because
    the MS-Loops are stable across runs.
    """
    workloads = tuple(workloads) if workloads is not None else ms_loops()
    table = table if table is not None else pentium_m_755_table()
    config = config if config is not None else MachineConfig()
    points: list[ComponentTrainingPoint] = []
    for workload in workloads:
        for pstate in table:
            rates1, power = _characterize(
                workload, pstate,
                (Event.INST_DECODED, Event.FP_COMP_OPS_EXE),
                config, duration_s, warmup_ticks,
            )
            rates2, _ = _characterize(
                workload, pstate,
                (Event.L2_RQSTS, Event.INST_RETIRED),
                config, duration_s, warmup_ticks,
            )
            points.append(
                ComponentTrainingPoint(
                    workload=workload.name,
                    frequency_mhz=pstate.frequency_mhz,
                    rates={
                        Event.INST_DECODED: rates1[Event.INST_DECODED],
                        Event.FP_COMP_OPS_EXE: rates1[Event.FP_COMP_OPS_EXE],
                        Event.L2_RQSTS: rates2[Event.L2_RQSTS],
                    },
                    measured_power_w=power,
                )
            )
    return tuple(points)


@dataclass(frozen=True)
class ComponentCoefficients:
    """Multi-linear coefficients for one p-state."""

    weights: Mapping[Event, float]
    intercept: float

    def estimate(self, rates: Mapping[Event, float]) -> float:
        """Power estimate from per-cycle component rates."""
        total = self.intercept
        for event, weight in self.weights.items():
            rate = rates.get(event, 0.0)
            if rate < 0:
                raise ModelError(f"negative rate for {event.name}")
            total += weight * rate
        return total


class ComponentPowerModel:
    """Per-p-state multi-linear power model over component activities."""

    def __init__(self, coefficients: Mapping[float, ComponentCoefficients]):
        if not coefficients:
            raise ModelError("component model needs at least one p-state")
        self._coefficients = dict(coefficients)

    @property
    def frequencies_mhz(self) -> tuple[float, ...]:
        return tuple(sorted(self._coefficients))

    def coefficients(self, frequency_mhz: float) -> ComponentCoefficients:
        try:
            return self._coefficients[frequency_mhz]
        except KeyError:
            raise ModelError(
                f"no coefficients for {frequency_mhz} MHz"
            ) from None

    def estimate(
        self, pstate: PState | float, rates: Mapping[Event, float]
    ) -> float:
        """Estimated power at ``pstate`` for measured component rates."""
        freq = pstate.frequency_mhz if isinstance(pstate, PState) else pstate
        return self.coefficients(freq).estimate(rates)

    def estimate_projected(
        self,
        from_mhz: float,
        to_mhz: float,
        rates: Mapping[Event, float],
    ) -> float:
        """Estimate at another p-state, projecting each rate via Eq. 4.

        The same conservative envelope PM uses for DPC applies to every
        activity rate (decode, FP, L2 all track instruction flow).
        """
        projected = {
            event: project_dpc(rate, from_mhz, to_mhz)
            for event, rate in rates.items()
        }
        return self.estimate(to_mhz, projected)


def fit_component_model(
    points: Sequence[ComponentTrainingPoint],
) -> ComponentPowerModel:
    """Least-squares multi-linear fit per p-state, weights clipped >= 0.

    Negative activity weights are physically meaningless (more work
    cannot reduce power); clipping keeps extrapolation safe for
    workloads outside the training hull -- the whole point of the model.
    """
    if not points:
        raise TrainingError("empty component training set")
    by_freq: dict[float, list[ComponentTrainingPoint]] = {}
    for point in points:
        by_freq.setdefault(point.frequency_mhz, []).append(point)
    out: dict[float, ComponentCoefficients] = {}
    for freq, group in by_freq.items():
        if len(group) < len(COMPONENT_EVENTS) + 2:
            raise TrainingError(
                f"{freq} MHz: too few points for a "
                f"{len(COMPONENT_EVENTS)}-component fit"
            )
        design = np.array(
            [
                [p.rates[e] for e in COMPONENT_EVENTS] + [1.0]
                for p in group
            ]
        )
        target = np.array([p.measured_power_w for p in group])
        solution = np.linalg.lstsq(design, target, rcond=None)[0]
        weights = {
            event: max(0.0, float(w))
            for event, w in zip(COMPONENT_EVENTS, solution[:-1])
        }
        out[freq] = ComponentCoefficients(
            weights=weights, intercept=float(solution[-1])
        )
    return ComponentPowerModel(out)
