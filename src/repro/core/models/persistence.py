"""Model persistence: save fitted models as JSON, reload them later.

Training takes a characterization run; deployments want to train once
and ship coefficients (exactly what the paper's Table II *is* -- frozen
coefficients).  This module serializes the linear DPC model, the
performance model and the component model to a stable JSON schema with a
format-version field, and reloads them with validation.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.models.component_power import (
    ComponentCoefficients,
    ComponentPowerModel,
)
from repro.core.models.performance import PerformanceModel
from repro.core.models.power import LinearPowerModel, PStateCoefficients
from repro.errors import ModelError
from repro.platform.events import Event

#: Schema version written into every document.
FORMAT_VERSION = 1


def power_model_to_json(model: LinearPowerModel) -> str:
    """Serialize a linear DPC power model."""
    doc = {
        "format": FORMAT_VERSION,
        "kind": "linear_power_model",
        "coefficients": {
            str(freq): {
                "alpha": model.alpha(freq),
                "beta": model.beta(freq),
            }
            for freq in model.frequencies_mhz
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def power_model_from_json(text: str) -> LinearPowerModel:
    """Reload a linear DPC power model (validates kind and schema)."""
    doc = _load(text, "linear_power_model")
    coefficients = {}
    for freq_text, entry in doc["coefficients"].items():
        coefficients[float(freq_text)] = PStateCoefficients(
            alpha=float(entry["alpha"]), beta=float(entry["beta"])
        )
    return LinearPowerModel(coefficients)


def performance_model_to_json(model: PerformanceModel) -> str:
    """Serialize an Eq. 3 performance model."""
    doc = {
        "format": FORMAT_VERSION,
        "kind": "performance_model",
        "dcu_threshold": model.dcu_threshold,
        "memory_exponent": model.memory_exponent,
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def performance_model_from_json(text: str) -> PerformanceModel:
    """Reload an Eq. 3 performance model."""
    doc = _load(text, "performance_model")
    return PerformanceModel(
        dcu_threshold=float(doc["dcu_threshold"]),
        memory_exponent=float(doc["memory_exponent"]),
    )


def component_model_to_json(model: ComponentPowerModel) -> str:
    """Serialize a component power model (events keyed by name)."""
    doc = {
        "format": FORMAT_VERSION,
        "kind": "component_power_model",
        "coefficients": {
            str(freq): {
                "intercept": model.coefficients(freq).intercept,
                "weights": {
                    event.name: weight
                    for event, weight in model.coefficients(
                        freq
                    ).weights.items()
                },
            }
            for freq in model.frequencies_mhz
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def component_model_from_json(text: str) -> ComponentPowerModel:
    """Reload a component power model; unknown event names are errors."""
    doc = _load(text, "component_power_model")
    coefficients = {}
    for freq_text, entry in doc["coefficients"].items():
        weights = {}
        for event_name, weight in entry["weights"].items():
            try:
                event = Event[event_name]
            except KeyError:
                raise ModelError(
                    f"unknown event {event_name!r} in component model"
                ) from None
            weights[event] = float(weight)
        coefficients[float(freq_text)] = ComponentCoefficients(
            weights=weights, intercept=float(entry["intercept"])
        )
    return ComponentPowerModel(coefficients)


def _load(text: str, expected_kind: str) -> dict[str, Any]:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as error:
        raise ModelError(f"not valid model JSON: {error}") from None
    if not isinstance(doc, dict):
        raise ModelError("model document must be a JSON object")
    if doc.get("format") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format {doc.get('format')!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    if doc.get("kind") != expected_kind:
        raise ModelError(
            f"expected a {expected_kind}, found {doc.get('kind')!r}"
        )
    return doc
