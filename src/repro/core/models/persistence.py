"""Model persistence: save fitted models as JSON, reload them later.

Training takes a characterization run; deployments want to train once
and ship coefficients (exactly what the paper's Table II *is* -- frozen
coefficients).  This module serializes the linear DPC model, the
performance model and the component model to a stable JSON schema with a
format-version field, and reloads them with validation.

Format history
--------------

* **v1** -- ``format``/``kind`` plus the model payload.
* **v2** -- adds an optional ``provenance`` object (who fitted the
  model, from what data, with what residual statistics) used by the
  online-adaptation :class:`~repro.adaptation.registry.ModelRegistry`
  to version models with full lineage.  v1 documents remain loadable;
  writers emit v2.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping

from repro.core.models.component_power import (
    ComponentCoefficients,
    ComponentPowerModel,
)
from repro.core.models.performance import PerformanceModel
from repro.core.models.power import LinearPowerModel, PStateCoefficients
from repro.errors import ModelError
from repro.platform.events import Event

#: Schema version written into every document.
FORMAT_VERSION = 2

#: Formats this build can still read (v1 documents predate provenance).
SUPPORTED_FORMATS = (1, 2)


def _document(kind: str, provenance: Mapping[str, Any] | None) -> dict:
    doc: dict = {"format": FORMAT_VERSION, "kind": kind}
    if provenance is not None:
        doc["provenance"] = dict(provenance)
    return doc


def power_model_to_json(
    model: LinearPowerModel,
    provenance: Mapping[str, Any] | None = None,
) -> str:
    """Serialize a linear DPC power model (v2; provenance optional)."""
    doc = _document("linear_power_model", provenance)
    doc["coefficients"] = {
        str(freq): {
            "alpha": model.alpha(freq),
            "beta": model.beta(freq),
        }
        for freq in model.frequencies_mhz
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def power_model_from_json(text: str) -> LinearPowerModel:
    """Reload a linear DPC power model (validates kind and schema)."""
    doc = _load(text, "linear_power_model")
    coefficients = {}
    for freq_text, entry in doc["coefficients"].items():
        coefficients[float(freq_text)] = PStateCoefficients(
            alpha=float(entry["alpha"]), beta=float(entry["beta"])
        )
    return LinearPowerModel(coefficients)


def performance_model_to_json(
    model: PerformanceModel,
    provenance: Mapping[str, Any] | None = None,
) -> str:
    """Serialize an Eq. 3 performance model (v2; provenance optional)."""
    doc = _document("performance_model", provenance)
    doc["dcu_threshold"] = model.dcu_threshold
    doc["memory_exponent"] = model.memory_exponent
    return json.dumps(doc, indent=2, sort_keys=True)


def performance_model_from_json(text: str) -> PerformanceModel:
    """Reload an Eq. 3 performance model."""
    doc = _load(text, "performance_model")
    return PerformanceModel(
        dcu_threshold=float(doc["dcu_threshold"]),
        memory_exponent=float(doc["memory_exponent"]),
    )


def component_model_to_json(
    model: ComponentPowerModel,
    provenance: Mapping[str, Any] | None = None,
) -> str:
    """Serialize a component power model (events keyed by name)."""
    doc = _document("component_power_model", provenance)
    doc["coefficients"] = {
        str(freq): {
            "intercept": model.coefficients(freq).intercept,
            "weights": {
                event.name: weight
                for event, weight in model.coefficients(
                    freq
                ).weights.items()
            },
        }
        for freq in model.frequencies_mhz
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def component_model_from_json(text: str) -> ComponentPowerModel:
    """Reload a component power model; unknown event names are errors."""
    doc = _load(text, "component_power_model")
    coefficients = {}
    for freq_text, entry in doc["coefficients"].items():
        weights = {}
        for event_name, weight in entry["weights"].items():
            try:
                event = Event[event_name]
            except KeyError:
                raise ModelError(
                    f"unknown event {event_name!r} in component model"
                ) from None
            weights[event] = float(weight)
        coefficients[float(freq_text)] = ComponentCoefficients(
            weights=weights, intercept=float(entry["intercept"])
        )
    return ComponentPowerModel(coefficients)


#: Loader per document kind, for generic (registry) reloading.
_LOADERS: Mapping[str, Callable[[str], Any]] = {
    "linear_power_model": power_model_from_json,
    "performance_model": performance_model_from_json,
    "component_power_model": component_model_from_json,
}


def model_from_json(text: str):
    """Reload *any* supported model document, dispatching on ``kind``.

    The registry stores heterogeneous model documents; this is its
    single reload path.
    """
    doc = _parse(text)
    kind = doc.get("kind")
    loader = _LOADERS.get(kind)
    if loader is None:
        raise ModelError(
            f"unknown model kind {kind!r}; "
            f"supported: {', '.join(sorted(_LOADERS))}"
        )
    return loader(text)


def model_provenance(text: str) -> dict[str, Any]:
    """The ``provenance`` object of a model document ({} for v1 docs)."""
    doc = _parse(text)
    provenance = doc.get("provenance", {})
    if not isinstance(provenance, dict):
        raise ModelError("model provenance must be a JSON object")
    return provenance


def _parse(text: str) -> dict[str, Any]:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as error:
        raise ModelError(f"not valid model JSON: {error}") from None
    if not isinstance(doc, dict):
        raise ModelError("model document must be a JSON object")
    if doc.get("format") not in SUPPORTED_FORMATS:
        raise ModelError(
            f"unsupported model format {doc.get('format')!r}; "
            f"this build reads versions "
            f"{', '.join(str(v) for v in SUPPORTED_FORMATS)}"
        )
    return doc


def _load(text: str, expected_kind: str) -> dict[str, Any]:
    doc = _parse(text)
    if doc.get("kind") != expected_kind:
        raise ModelError(
            f"expected a {expected_kind}, found {doc.get('kind')!r}"
        )
    return doc
