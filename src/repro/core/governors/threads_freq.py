"""ThreadsFreqGovernor: online walker of the (threads, p-state) space.

Where :class:`~repro.core.governors.energy_optimal.EnergyOptimalSearch`
projects the whole grid from trained tables, this governor *walks* it
online with nothing but the paper's counters:

- the frequency dimension moves one table step per decision, toward
  lower projected energy per instruction, using the Eq. 3 two-class
  classifier (a memory-bound sample makes down-clocking nearly free, a
  core-bound one makes it expensive);
- the thread dimension moves one step per epoch through
  :meth:`recommend_threads`: when the shared bus is saturated *and* the
  sample classifies memory-bound, a thread is parked (it was adding
  power, not throughput); when the bus has headroom, a thread is added.

Both walks are local (one step at a time, hysteresis via the
utilisation dead-band), which is what makes the policy deployable
online -- and what ``experiment multicore`` compares against the
exhaustive search's optimum.
"""

from __future__ import annotations

from typing import Sequence

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.base import Governor
from repro.core.models.performance import PerformanceModel, WorkloadClass
from repro.core.models.power import LinearPowerModel
from repro.core.models.projection import project_dpc
from repro.core.sampling import CounterSample
from repro.errors import GovernorError
from repro.platform.events import Event


class ThreadsFreqGovernor(Governor):
    """One-step-at-a-time (threads, p-state) energy walker."""

    EVENT_GROUPS: tuple[tuple[Event, ...], ...] = (
        (Event.INST_RETIRED, Event.INST_DECODED),
        (Event.INST_RETIRED, Event.DCU_MISS_OUTSTANDING),
    )

    def __init__(
        self,
        table: PStateTable,
        power_model: LinearPowerModel,
        performance_model: PerformanceModel,
        saturation_high: float = 0.9,
        saturation_low: float = 0.6,
    ):
        super().__init__(table)
        if not 0.0 < saturation_low < saturation_high:
            raise GovernorError(
                "need 0 < saturation_low < saturation_high, got "
                f"{saturation_low!r} / {saturation_high!r}"
            )
        self._power = power_model
        self._performance = performance_model
        self.saturation_high = saturation_high
        self.saturation_low = saturation_low
        self._dpc = 0.0
        self._dcu = 0.0

    @property
    def events(self) -> tuple[Event, ...]:
        return self.EVENT_GROUPS[0]

    @property
    def event_groups(self) -> tuple[tuple[Event, ...], ...]:
        return self.EVENT_GROUPS

    def reset(self) -> None:
        self._dpc = 0.0
        self._dcu = 0.0

    def _energy_per_instruction(
        self, ipc: float, current: PState, candidate: PState
    ) -> float:
        dpc = project_dpc(
            self._dpc, current.frequency_mhz, candidate.frequency_mhz
        )
        power = self._power.estimate(candidate, dpc)
        dcu_per_ipc = self._dcu / ipc if ipc > 0 else 0.0
        throughput = self._performance.project_throughput(
            ipc, dcu_per_ipc,
            current.frequency_mhz, candidate.frequency_mhz,
        )
        if throughput <= 0:
            return float("inf")
        return power / throughput

    def decide(self, sample: CounterSample, current: PState) -> PState:
        """Step at most one table entry toward lower projected energy."""
        if Event.INST_DECODED in sample.rates:
            self._dpc = sample.rates[Event.INST_DECODED]
        if Event.DCU_MISS_OUTSTANDING in sample.rates:
            self._dcu = sample.rates[Event.DCU_MISS_OUTSTANDING]
        ipc = sample.rates.get(Event.INST_RETIRED, 0.0)
        if ipc <= 0 or self._dpc <= 0:
            return current
        neighbors = {current, self.table.step_down(current),
                     self.table.step_up(current)}
        return min(
            neighbors,
            key=lambda candidate: self._energy_per_instruction(
                ipc, current, candidate
            ),
        )

    def recommend_threads(
        self,
        samples: Sequence[CounterSample],
        threads: int,
        n_cores: int,
        bus_utilization: float = 0.0,
    ) -> int:
        """One thread-count step from the bus pressure and Eq. 3 class.

        Called by the multicore controller once per epoch with the
        latest per-domain samples and the shared-bus demand/ceiling
        ratio from the contention model.
        """
        memory_bound = any(
            self._performance.classify(sample.dcu_per_ipc)
            is WorkloadClass.MEMORY_BOUND
            for sample in samples
            if sample is not None and sample.ipc > 0
        )
        if bus_utilization >= self.saturation_high and memory_bound:
            # The bus is the bottleneck: an extra thread adds power but
            # no throughput, so park one.
            return max(1, threads - 1)
        if bus_utilization <= self.saturation_low and threads < n_cores:
            return threads + 1
        return threads
