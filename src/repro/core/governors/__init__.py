"""Control phase: p-state governors.

The paper's two new solutions plus the baselines they are compared to:

* :class:`PerformanceMaximizer` -- best performance within a power limit
  (paper §IV-A),
* :class:`PowerSave` -- energy savings above a performance floor
  (paper §IV-B),
* :class:`StaticClocking` -- the conventional worst-case-provisioned
  fixed frequency (paper Tables III/IV, the PM comparison baseline),
* :class:`FixedFrequency` -- unconstrained max/min frequency anchors,
* :class:`DemandBasedSwitching` -- the utilization-driven policy PS is
  positioned against (related work, §II/§IV-B),
* :class:`AdaptivePerformanceMaximizer` -- the measured-power-feedback
  extension the paper sketches for galgel-like workloads (§IV-A2).
"""

from repro.core.governors.base import Governor, GovernorDecision
from repro.core.governors.performance_maximizer import PerformanceMaximizer
from repro.core.governors.powersave import PowerSave
from repro.core.governors.static import StaticClocking, static_frequency_for_limit
from repro.core.governors.unconstrained import FixedFrequency
from repro.core.governors.demand_based import DemandBasedSwitching
from repro.core.governors.adaptive_pm import AdaptivePerformanceMaximizer
from repro.core.governors.thermal_guard import ThermalGuard
from repro.core.governors.throttling_pm import ThrottlingMaximizer
from repro.core.governors.component_pm import ComponentPerformanceMaximizer
from repro.core.governors.energy_efficiency import EnergyDelayOptimizer
from repro.core.governors.energy_optimal import ConfigProjection, EnergyOptimalSearch
from repro.core.governors.threads_freq import ThreadsFreqGovernor

__all__ = [
    "Governor",
    "GovernorDecision",
    "PerformanceMaximizer",
    "PowerSave",
    "StaticClocking",
    "static_frequency_for_limit",
    "FixedFrequency",
    "DemandBasedSwitching",
    "AdaptivePerformanceMaximizer",
    "ThermalGuard",
    "ThrottlingMaximizer",
    "ComponentPerformanceMaximizer",
    "EnergyDelayOptimizer",
    "ConfigProjection",
    "EnergyOptimalSearch",
    "ThreadsFreqGovernor",
]
