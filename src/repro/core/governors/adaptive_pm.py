"""Adaptive PerformanceMaximizer: measured-power feedback extension.

The paper's own future-work sketch for workloads the static model
mispredicts (galgel): "PM could adapt model coefficients on the fly or
scale measured power for p-state changes" (§IV-A2).  This governor
implements the first variant: it keeps an exponentially weighted
per-p-state *offset* between measured and estimated power and adds the
offset to subsequent estimates, so persistent underestimation (galgel's
FP/L2-heavy bursts) is corrected within a few samples.

Requires a measured-power feed -- on the paper's platform this would
mean exposing the DAQ readings to the control loop (the new-hardware
investment their Foxton/ACPC comparisons make); in the reproduction the
controller forwards each 10 ms meter sample via :meth:`observe_power`.
"""

from __future__ import annotations

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.performance_maximizer import (
    DEFAULT_GUARDBAND_W,
    DEFAULT_RAISE_WINDOW,
    PerformanceMaximizer,
)
from repro.core.models.power import LinearPowerModel
from repro.core.sampling import CounterSample
from repro.errors import GovernorError


class AdaptivePerformanceMaximizer(PerformanceMaximizer):
    """PM with an EWMA model-error correction per p-state."""

    def __init__(
        self,
        table: PStateTable,
        model: LinearPowerModel,
        power_limit_w: float,
        guardband_w: float = DEFAULT_GUARDBAND_W,
        raise_window: int = DEFAULT_RAISE_WINDOW,
        adaptation_gain: float = 0.25,
    ):
        super().__init__(
            table, model, power_limit_w, guardband_w, raise_window
        )
        if not 0.0 < adaptation_gain <= 1.0:
            raise GovernorError(
                f"adaptation gain must be in (0, 1], got {adaptation_gain}"
            )
        self._gain = adaptation_gain
        self._offsets: dict[float, float] = {}
        self._last_sample: CounterSample | None = None
        self._last_state: PState | None = None

    def reset(self) -> None:
        super().reset()
        self._offsets.clear()
        self._last_sample = None
        self._last_state = None

    def swap_model(self, model: LinearPowerModel) -> None:
        """Hot-swap the model and drop the learned offsets.

        A recalibrated model already absorbs whatever persistent error
        the offsets were compensating; keeping them would double-count
        the correction.
        """
        super().swap_model(model)
        self._offsets.clear()

    def offset(self, pstate: PState) -> float:
        """Current learned correction for a p-state (W)."""
        return self._offsets.get(pstate.frequency_mhz, 0.0)

    def observe_power(self, measured_w: float) -> None:
        """Feed the measured power for the interval just sampled.

        Must be called after :meth:`decide` for the same tick; updates
        the offset of the p-state that produced the measurement.
        """
        if measured_w < 0:
            raise GovernorError("measured power cannot be negative")
        if self._last_sample is None or self._last_state is None:
            return  # nothing to correlate against yet
        estimated = super().estimate_power(
            self._last_sample, self._last_state, self._last_state
        )
        error = measured_w - estimated
        freq = self._last_state.frequency_mhz
        previous = self._offsets.get(freq, 0.0)
        self._offsets[freq] = previous + self._gain * (error - previous)

    def estimate_power(
        self, sample: CounterSample, current: PState, candidate: PState
    ) -> float:
        base = super().estimate_power(sample, current, candidate)
        # Unvisited p-states borrow the correction of the nearest
        # visited one (the paper's "scale measured power for p-state
        # changes" idea, in its simplest form).
        if self._offsets:
            if candidate.frequency_mhz in self._offsets:
                correction = self._offsets[candidate.frequency_mhz]
            else:
                nearest = min(
                    self._offsets,
                    key=lambda f: abs(f - candidate.frequency_mhz),
                )
                correction = self._offsets[nearest]
        else:
            correction = 0.0
        return base + max(0.0, correction)

    def decide(self, sample: CounterSample, current: PState) -> PState:
        self._last_sample = sample
        self._last_state = current
        return super().decide(sample, current)
