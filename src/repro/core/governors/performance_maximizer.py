"""PerformanceMaximizer (PM): best performance under a power limit.

Paper §IV-A.  Every 10 ms PM:

1. **monitors** DPC (decoded instructions per cycle) -- one counter;
2. **predicts** DPC at every other p-state with Eq. 4, then applies the
   per-p-state linear power model to estimate power at each candidate;
3. **controls** by choosing the highest frequency whose estimated power
   plus a 0.5 W guardband stays within the current power limit.

Two asymmetries from the paper's implementation are preserved:

* **Lower immediately, raise patiently** -- a single bad 10 ms sample
  lowers the frequency at once, but PM "waits for 100 ms worth of
  consecutive samples that indicate frequency may be raised" before
  raising, to minimize violations during hard-to-predict behaviour.
* **Runtime limit changes** -- the prototype accepts a new power limit
  at any instant (delivered as SIGUSR1/SIGUSR2 in the paper); here,
  :meth:`set_power_limit` may be called between ticks.
"""

from __future__ import annotations

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.base import Governor
from repro.core.models.power import LinearPowerModel
from repro.core.models.projection import project_dpc
from repro.core.sampling import CounterSample
from repro.errors import GovernorError
from repro.platform.events import Event

#: Paper: "we add a 0.5 W guardband to the estimated power to
#: accommodate model inaccuracies and system variability."
DEFAULT_GUARDBAND_W = 0.5

#: Paper: raise decisions need 100 ms of consecutive agreeing samples --
#: ten 10 ms samples.
DEFAULT_RAISE_WINDOW = 10


class PerformanceMaximizer(Governor):
    """Power-limit governor driven by the DPC power model."""

    def __init__(
        self,
        table: PStateTable,
        model: LinearPowerModel,
        power_limit_w: float,
        guardband_w: float = DEFAULT_GUARDBAND_W,
        raise_window: int = DEFAULT_RAISE_WINDOW,
    ):
        super().__init__(table)
        if guardband_w < 0:
            raise GovernorError("guardband must be non-negative")
        if raise_window < 1:
            raise GovernorError("raise window must be at least one sample")
        self._model = model
        self._guardband = guardband_w
        self._raise_window = raise_window
        self._limit = 0.0
        self.set_power_limit(power_limit_w)
        self._raise_streak = 0
        self._pending_raise: PState | None = None
        self._projection = None

    # -- configuration ---------------------------------------------------------

    @property
    def power_limit_w(self) -> float:
        """The currently enforced power limit."""
        return self._limit

    def set_power_limit(self, watts: float) -> None:
        """Change the power limit, effective at the next decision.

        Mirrors the paper's signal-driven runtime limit changes.  The
        raise hysteresis is reset so a *lowered* limit acts immediately
        and a *raised* limit still waits out the window.
        """
        if watts <= 0:
            raise GovernorError(f"power limit must be positive, got {watts}")
        self._limit = watts
        self._raise_streak = 0
        self._pending_raise = None

    @property
    def model(self) -> LinearPowerModel:
        """The power model currently driving estimates."""
        return self._model

    def swap_model(self, model: LinearPowerModel) -> None:
        """Hot-swap the power model, effective at the next decision.

        The online-adaptation manager calls this between control
        decisions after a confirmed recalibration or rollback; the
        raise hysteresis is left alone (the streak's evidence is about
        the workload, not the model).
        """
        self._model = model
        self._projection = None  # rebuilt lazily against the new model

    def projection_table(self):
        """The fused Eq. 4 x Eq. 2 projection rows for the batched loop.

        Built once per model *version* (process-wide, value-keyed via
        :func:`repro.exec.cache.pm_projection_table`) and dropped on
        :meth:`swap_model`, so online adaptation's hot-swaps invalidate
        it.  Estimates are bitwise identical to
        :meth:`estimate_power` -- ``tests/core/test_block_equivalence``
        pins this.
        """
        tbl = getattr(self, "_projection", None)
        if tbl is None or tbl.model != self._model:
            from repro.exec.cache import pm_projection_table

            tbl = self._projection = pm_projection_table(
                self._model, self.table
            )
        return tbl

    def __getstate__(self):
        # The projection table is a pure cache; stripping it keeps
        # checkpoints byte-identical whether or not the batched loop
        # ever touched this governor.
        state = self.__dict__.copy()
        state["_projection"] = None
        return state

    @property
    def guardband_w(self) -> float:
        """The estimate guardband currently applied."""
        return self._guardband

    def set_guardband(self, watts: float) -> None:
        """Change the estimate guardband, effective at the next decision.

        The adaptation manager widens it in proportion to the observed
        model-residual spread: a model known to be noisy is trusted
        less.
        """
        if watts < 0:
            raise GovernorError("guardband must be non-negative")
        self._guardband = watts

    @property
    def events(self) -> tuple[Event, ...]:
        """PM needs only the decode counter (paper §IV-A1)."""
        return (Event.INST_DECODED,)

    def reset(self) -> None:
        self._raise_streak = 0
        self._pending_raise = None

    # -- estimation ---------------------------------------------------------------

    def estimate_power(
        self, sample: CounterSample, current: PState, candidate: PState
    ) -> float:
        """Estimated power at ``candidate`` given the current sample."""
        dpc = project_dpc(
            sample.dpc, current.frequency_mhz, candidate.frequency_mhz
        )
        return self._model.estimate(candidate, dpc)

    def _desired(self, sample: CounterSample, current: PState) -> PState:
        """Highest-frequency state whose estimate fits under the limit."""
        budget = self._limit - self._guardband
        for candidate in self.table:  # descending frequency
            if self.estimate_power(sample, current, candidate) <= budget:
                return candidate
        # Nothing fits: degrade as far as the hardware allows (the paper's
        # platform cannot clock below 600 MHz either).
        return self.table.slowest

    # -- control -----------------------------------------------------------------

    def decide(self, sample: CounterSample, current: PState) -> PState:
        desired = self._desired(sample, current)

        if desired.frequency_mhz < current.frequency_mhz:
            # Lower immediately on a single sample (paper §IV-A1).
            self._raise_streak = 0
            self._pending_raise = None
            return desired

        if desired.frequency_mhz > current.frequency_mhz:
            # Track the most conservative raise target seen during the
            # window: every sample in the streak must allow at least the
            # state we finally raise to.
            if (
                self._pending_raise is None
                or desired.frequency_mhz < self._pending_raise.frequency_mhz
            ):
                self._pending_raise = desired
            self._raise_streak += 1
            if self._raise_streak >= self._raise_window:
                target = self._pending_raise
                self._raise_streak = 0
                self._pending_raise = None
                return target
            return current

        # desired == current: the streak is broken.
        self._raise_streak = 0
        self._pending_raise = None
        return current
