"""EnergyOptimalSearch: exhaustive (threads x frequency) energy minimizer.

The HPC energy-configuration literature (PAPERS.md: "Energy-Optimal
Configurations for Single-Node HPC Applications") finds the minimum-
energy operating point of a parallel application by searching the full
frequency x thread-count grid.  This governor reproduces that search on
top of the paper's trained models:

- per-tick it behaves like a pure energy-per-instruction minimizer over
  the p-state table (the frequency dimension, online), using the same
  three-event multiplexed monitoring as
  :class:`~repro.core.governors.energy_efficiency.EnergyDelayOptimizer`;
- :meth:`project_grid` / :meth:`best_configuration` build the full
  (threads, p-state) projection table from one observed sample: Eq. 3
  two-class frequency scaling x Amdahl thread scaling x a shared-bus
  bandwidth cap, with parked cores charged at the power model's
  zero-activity intercept.

The grid projection deliberately ignores the contention *latency*
inflation (only the bandwidth ceiling is applied) -- quantifying the
resulting error against the measured optimum is exactly what
``experiment multicore`` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.base import Governor
from repro.core.models.performance import PerformanceModel
from repro.core.models.power import LinearPowerModel
from repro.core.models.projection import project_dpc
from repro.core.sampling import CounterSample
from repro.errors import GovernorError
from repro.multicore.workload import parallel_efficiency
from repro.platform.events import Event


@dataclass(frozen=True)
class ConfigProjection:
    """Projected behaviour of one (threads, p-state) configuration."""

    threads: int
    pstate: PState
    throughput_ips: float
    power_w: float

    @property
    def energy_per_giga_instruction_j(self) -> float:
        """Projected energy to retire 1e9 instructions."""
        if self.throughput_ips <= 0:
            return float("inf")
        return self.power_w / self.throughput_ips * 1e9


class EnergyOptimalSearch(Governor):
    """Grid-search governor over the (threads, frequency) space."""

    EVENT_GROUPS: tuple[tuple[Event, ...], ...] = (
        (Event.INST_RETIRED, Event.INST_DECODED),
        (Event.INST_RETIRED, Event.DCU_MISS_OUTSTANDING),
    )

    def __init__(
        self,
        table: PStateTable,
        power_model: LinearPowerModel,
        performance_model: PerformanceModel,
        n_cores: int = 1,
        thread_counts: tuple[int, ...] | None = None,
        serial_fraction: float = 0.0,
        sync_overhead: float = 0.0,
        bandwidth_ceiling_bytes_per_s: float = 2.8e9,
    ):
        super().__init__(table)
        if n_cores < 1:
            raise GovernorError(f"n_cores must be >= 1, got {n_cores!r}")
        if thread_counts is None:
            thread_counts = tuple(range(1, n_cores + 1))
        if any(t < 1 or t > n_cores for t in thread_counts):
            raise GovernorError(
                f"thread_counts must lie in 1..{n_cores}, got {thread_counts!r}"
            )
        if bandwidth_ceiling_bytes_per_s <= 0:
            raise GovernorError("bandwidth ceiling must be positive")
        self._power = power_model
        self._performance = performance_model
        self.n_cores = n_cores
        self.thread_counts = tuple(sorted(set(thread_counts)))
        self.serial_fraction = serial_fraction
        self.sync_overhead = sync_overhead
        self.bandwidth_ceiling_bytes_per_s = bandwidth_ceiling_bytes_per_s
        self._dpc = 0.0
        self._dcu = 0.0

    @property
    def events(self) -> tuple[Event, ...]:
        return self.EVENT_GROUPS[0]

    @property
    def event_groups(self) -> tuple[tuple[Event, ...], ...]:
        return self.EVENT_GROUPS

    def reset(self) -> None:
        self._dpc = 0.0
        self._dcu = 0.0

    # -- online frequency control ------------------------------------------------

    def objective(
        self, sample_ipc: float, current: PState, candidate: PState
    ) -> float:
        """Projected energy per instruction at ``candidate`` (single core)."""
        dpc = project_dpc(
            self._dpc, current.frequency_mhz, candidate.frequency_mhz
        )
        power = self._power.estimate(candidate, dpc)
        dcu_per_ipc = self._dcu / sample_ipc if sample_ipc > 0 else 0.0
        throughput = self._performance.project_throughput(
            sample_ipc,
            dcu_per_ipc,
            current.frequency_mhz,
            candidate.frequency_mhz,
        )
        if throughput <= 0:
            return float("inf")
        return power / throughput

    def decide(self, sample: CounterSample, current: PState) -> PState:
        if Event.INST_DECODED in sample.rates:
            self._dpc = sample.rates[Event.INST_DECODED]
        if Event.DCU_MISS_OUTSTANDING in sample.rates:
            self._dcu = sample.rates[Event.DCU_MISS_OUTSTANDING]
        ipc = sample.rates.get(Event.INST_RETIRED, 0.0)
        if ipc <= 0 or self._dpc <= 0:
            return current
        return min(
            self.table,
            key=lambda candidate: self.objective(ipc, current, candidate),
        )

    # -- (threads, frequency) grid projection --------------------------------

    def project_grid(
        self,
        ipc: float,
        dpc: float,
        dcu: float,
        current: PState,
        bytes_per_instruction: float = 0.0,
    ) -> tuple[ConfigProjection, ...]:
        """Project every (threads, p-state) cell from one observed sample.

        ``ipc``/``dpc``/``dcu`` describe one core running one thread at
        ``current``; ``bytes_per_instruction`` is the thread's bus
        traffic (from a trained characterization -- the PMU's two
        counters cannot observe it directly), used to cap aggregate
        throughput at the bandwidth ceiling.
        """
        if ipc <= 0:
            raise GovernorError("need a positive observed IPC to project")
        dcu_per_ipc = dcu / ipc
        cells = []
        for candidate in self.table:
            single_ips = self._performance.project_throughput(
                ipc, dcu_per_ipc,
                current.frequency_mhz, candidate.frequency_mhz,
            )
            dpc_at = project_dpc(
                dpc, current.frequency_mhz, candidate.frequency_mhz
            )
            active_power = self._power.estimate(candidate, dpc_at)
            idle_power = self._power.estimate(candidate, 0.0)
            for threads in self.thread_counts:
                efficiency = parallel_efficiency(
                    threads, self.serial_fraction, self.sync_overhead
                )
                throughput = single_ips * threads * efficiency
                if bytes_per_instruction > 0:
                    demand = throughput * bytes_per_instruction
                    if demand > self.bandwidth_ceiling_bytes_per_s:
                        throughput = (
                            self.bandwidth_ceiling_bytes_per_s
                            / bytes_per_instruction
                        )
                power = (
                    threads * active_power
                    + (self.n_cores - threads) * idle_power
                )
                cells.append(ConfigProjection(
                    threads=threads,
                    pstate=candidate,
                    throughput_ips=throughput,
                    power_w=power,
                ))
        return tuple(cells)

    def best_configuration(
        self,
        ipc: float,
        dpc: float,
        dcu: float,
        current: PState,
        bytes_per_instruction: float = 0.0,
    ) -> ConfigProjection:
        """The grid cell minimizing projected energy per instruction."""
        return min(
            self.project_grid(
                ipc, dpc, dcu, current,
                bytes_per_instruction=bytes_per_instruction,
            ),
            key=lambda cell: cell.energy_per_giga_instruction_j,
        )
