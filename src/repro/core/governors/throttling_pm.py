"""ThrottlingMaximizer: PM's job done with ACPI T-states instead of DVFS.

Comparison actuator (the paper's companion report RC24007 models both
DVFS and clock throttling; the throttling-vs-DVFS ablation bench uses
this governor).  The core stays at one frequency/voltage and the
governor modulates the clock duty cycle to fit the power limit.

Estimation: at duty ``d`` dynamic power scales by ``d`` while leakage
persists, so from the DPC model's full-speed estimate ``E``::

    E(d) = d * (E - L) + L,      L ~= k_leak * V^2

The chosen duty is the largest T-state with ``E(d) + guardband`` within
the limit.  Because voltage never drops, power falls only linearly with
performance -- strictly worse than DVFS's ``~V^2 f`` scaling, which is
exactly what the ablation quantifies.
"""

from __future__ import annotations

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.base import Governor
from repro.core.models.power import LinearPowerModel
from repro.core.sampling import CounterSample
from repro.errors import GovernorError
from repro.platform.events import Event
from repro.platform.throttling import T_STATE_DUTIES, ThrottleController


class ThrottlingMaximizer(Governor):
    """Power-limit governor actuating clock modulation at fixed frequency."""

    def __init__(
        self,
        table: PStateTable,
        model: LinearPowerModel,
        throttle: ThrottleController,
        power_limit_w: float,
        guardband_w: float = 0.5,
        leakage_coefficient_w_per_v2: float = 0.81,
    ):
        super().__init__(table)
        if power_limit_w <= 0:
            raise GovernorError("power limit must be positive")
        if guardband_w < 0:
            raise GovernorError("guardband must be non-negative")
        self._model = model
        self._throttle = throttle
        self._limit = power_limit_w
        self._guardband = guardband_w
        self._k_leak = leakage_coefficient_w_per_v2
        self._pstate = table.fastest

    @property
    def events(self) -> tuple[Event, ...]:
        return (Event.INST_DECODED,)

    @property
    def duty(self) -> float:
        """The duty cycle currently programmed."""
        return self._throttle.duty

    def estimate_power(
        self, sample: CounterSample, pstate: PState, duty: float
    ) -> float:
        """Model estimate at a duty cycle (leakage persists)."""
        full = self._model.estimate(pstate, sample.dpc)
        leakage = self._k_leak * pstate.voltage**2
        return duty * max(0.0, full - leakage) + leakage

    def decide(self, sample: CounterSample, current: PState) -> PState:
        budget = self._limit - self._guardband
        chosen = T_STATE_DUTIES[0]  # deepest throttle as the fallback
        for duty in (*T_STATE_DUTIES, 1.0):
            if self.estimate_power(sample, self._pstate, duty) <= budget:
                chosen = duty
        if chosen != self._throttle.duty:
            self._throttle.set_duty(chosen)
        # Frequency/voltage never move: throttling is the only actuator.
        return self._pstate
