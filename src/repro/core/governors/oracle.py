"""Oracle PM: the upper bound a perfect power model would reach.

Analysis-only governor: instead of the counter-based estimate it reads
the simulator's *ground-truth* power for the executing phase at every
candidate p-state -- information no real system has.  The gap between
OraclePM and PM quantifies what the paper's model inaccuracy plus
guardband cost ("model headroom"), and the gap between OraclePM and the
unconstrained run is the irreducible price of the power limit itself.

The oracle deliberately keeps PM's one asymmetry -- it still cannot see
the future, so bursts can transiently violate until the next decision --
making the comparison about *estimation*, not prediction.
"""

from __future__ import annotations

from typing import Callable

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.base import Governor
from repro.core.sampling import CounterSample
from repro.errors import GovernorError
from repro.platform.events import Event


class OraclePerformanceMaximizer(Governor):
    """Power-limit governor with perfect (ground-truth) power knowledge.

    Parameters
    ----------
    table:
        The p-state table.
    true_power_at:
        Callable mapping a candidate :class:`PState` to the ground-truth
        power the *current* phase would burn there.  Wire it to
        :meth:`repro.platform.machine.Machine.oracle_power`.
    power_limit_w:
        The limit to enforce.
    margin_w:
        Safety margin; the oracle needs none for steady phases (0 by
        default), which is exactly the point of the comparison.
    """

    def __init__(
        self,
        table: PStateTable,
        true_power_at: Callable[[PState], float],
        power_limit_w: float,
        margin_w: float = 0.0,
    ):
        super().__init__(table)
        if power_limit_w <= 0:
            raise GovernorError("power limit must be positive")
        if margin_w < 0:
            raise GovernorError("margin must be non-negative")
        self._true_power_at = true_power_at
        self._limit = power_limit_w
        self._margin = margin_w

    @property
    def power_limit_w(self) -> float:
        return self._limit

    @property
    def events(self) -> tuple[Event, ...]:
        # The oracle needs no counters; one event keeps the loop uniform.
        return (Event.INST_RETIRED,)

    def decide(self, sample: CounterSample, current: PState) -> PState:
        budget = self._limit - self._margin
        for candidate in self.table:  # descending frequency
            if self._true_power_at(candidate) <= budget:
                return candidate
        return self.table.slowest
