"""PowerSave (PS): energy savings above a performance floor.

Paper §IV-B.  Unlike demand-based switching, PS saves energy *at full
load* by letting the user trade a bounded amount of performance.  Every
10 ms PS:

1. **monitors** IPC (retired instructions per cycle) and DCU (data-cache
   -unit miss-outstanding cycles per cycle) -- exactly the two counters
   the Pentium M has;
2. **estimates** IPC at every p-state with the two-class model (Eq. 3),
   classifying the current sample by its DCU/IPC ratio;
3. **controls** by choosing the *lowest* frequency whose projected
   throughput stays at or above ``floor x`` the projected peak
   (max-frequency) throughput.

The floor is a fraction of *peak* performance: a floor of 0.8 permits at
most a 20% performance loss (paper's "80% performance floor").
"""

from __future__ import annotations

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.base import Governor
from repro.core.models.performance import PerformanceModel
from repro.core.sampling import CounterSample
from repro.errors import GovernorError
from repro.platform.events import Event


class PowerSave(Governor):
    """Performance-floor governor driven by the two-class IPC model."""

    def __init__(
        self,
        table: PStateTable,
        model: PerformanceModel,
        floor: float,
    ):
        super().__init__(table)
        self._model = model
        self._floor = 0.0
        self.set_floor(floor)
        self._projection = None

    @property
    def floor(self) -> float:
        """Minimum acceptable fraction of peak performance."""
        return self._floor

    def set_floor(self, floor: float) -> None:
        """Change the performance floor, effective at the next decision."""
        if not 0.0 < floor <= 1.0:
            raise GovernorError(
                f"performance floor must be in (0, 1], got {floor}"
            )
        self._floor = floor

    @property
    def model(self) -> PerformanceModel:
        """The Eq. 3 performance model in use."""
        return self._model

    @property
    def events(self) -> tuple[Event, ...]:
        """PS needs retired instructions + DCU occupancy (paper §IV-B1)."""
        return (Event.INST_RETIRED, Event.DCU_MISS_OUTSTANDING)

    def projection_table(self):
        """Precomputed Eq. 3 sensitivity rows for the batched loop.

        Value-keyed and shared process-wide via
        :func:`repro.exec.cache.ps_projection_table`; picks are bitwise
        identical to :meth:`decide`'s candidate scan.
        """
        tbl = getattr(self, "_projection", None)
        if tbl is None or tbl.model != self._model:
            from repro.exec.cache import ps_projection_table

            tbl = self._projection = ps_projection_table(
                self._model, self.table
            )
        return tbl

    def __getstate__(self):
        # Pure cache -- strip so checkpoints stay path-independent.
        state = self.__dict__.copy()
        state["_projection"] = None
        return state

    def projected_relative_performance(
        self, sample: CounterSample, current: PState, candidate: PState
    ) -> float:
        """Projected throughput at ``candidate`` / projected peak throughput."""
        peak = self._model.project_throughput(
            sample.ipc,
            sample.dcu_per_ipc,
            current.frequency_mhz,
            self.table.fastest.frequency_mhz,
        )
        if peak <= 0:
            return 1.0  # no measurable work: any state "meets" the floor
        candidate_throughput = self._model.project_throughput(
            sample.ipc,
            sample.dcu_per_ipc,
            current.frequency_mhz,
            candidate.frequency_mhz,
        )
        return candidate_throughput / peak

    def decide(self, sample: CounterSample, current: PState) -> PState:
        # Ascending frequency: the first candidate keeping performance
        # strictly *above* the floor is the lowest-power feasible choice.
        # The inequality is strict -- PS keeps "performance above
        # specified requirements", and the paper notes that discretized
        # p-states make it impossible to reach the floor exactly ("using
        # the next lower frequency would push the performance below the
        # floor", §IV-B2).  So at an 80% floor a core-bound workload runs
        # at 1800 MHz (projected 0.90 > 0.80), not 1600 (0.80, not above).
        for candidate in self.table.ascending():
            relative = self.projected_relative_performance(
                sample, current, candidate
            )
            if relative > self._floor + 1e-12:
                return candidate
        # No state is above the floor per the model: run at full speed
        # rather than knowingly violate.
        return self.table.fastest
