"""Governor interface: the Control phase of the three-phase loop.

A governor consumes one :class:`~repro.core.sampling.CounterSample` per
10 ms tick and returns the p-state for the next tick.  It declares which
PMU events it needs so the controller can program the two counters --
keeping each policy honest about the hardware monitoring budget.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.acpi.pstates import PState, PStateTable
from repro.core.sampling import CounterSample
from repro.platform.events import Event


@dataclass(frozen=True)
class GovernorDecision:
    """A governor's output for one tick, with its reasoning attached.

    ``estimates`` maps candidate frequencies to the estimated quantity
    the governor compared against its constraint (power in watts for PM,
    relative performance for PS); kept for tracing and tests.
    """

    target: PState
    estimates: dict[float, float]


class Governor(abc.ABC):
    """Base class for p-state selection policies."""

    def __init__(self, table: PStateTable):
        self.table = table

    @property
    @abc.abstractmethod
    def events(self) -> tuple[Event, ...]:
        """PMU events this governor needs (at most two)."""

    @abc.abstractmethod
    def decide(self, sample: CounterSample, current: PState) -> PState:
        """Choose the p-state for the next interval."""

    def reset(self) -> None:
        """Clear any internal hysteresis/adaptation state between runs."""

    @property
    def name(self) -> str:
        """Display name used in traces and reports."""
        return type(self).__name__
