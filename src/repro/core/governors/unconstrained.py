"""Fixed-frequency anchor governors.

``FixedFrequency(table, 2000)`` is the paper's unconstrained full-speed
reference (the denominator of all normalized-performance numbers);
``FixedFrequency(table, 600)`` is the maximum-savings bound used to sort
the paper's Figs. 10/11.
"""

from __future__ import annotations

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.base import Governor
from repro.core.sampling import CounterSample
from repro.platform.events import Event


class FixedFrequency(Governor):
    """Stays at one p-state forever."""

    def __init__(self, table: PStateTable, frequency_mhz: float):
        super().__init__(table)
        self._pstate = table.by_frequency(frequency_mhz)

    @classmethod
    def fastest(cls, table: PStateTable) -> "FixedFrequency":
        """Unconstrained operation at P0 (the paper's 2000 MHz runs)."""
        return cls(table, table.fastest.frequency_mhz)

    @classmethod
    def slowest(cls, table: PStateTable) -> "FixedFrequency":
        """Minimum frequency (the paper's 600 MHz savings bound)."""
        return cls(table, table.slowest.frequency_mhz)

    @property
    def pstate(self) -> PState:
        """The pinned operating point."""
        return self._pstate

    @property
    def events(self) -> tuple[Event, ...]:
        return (Event.INST_RETIRED,)

    def decide(self, sample: CounterSample, current: PState) -> PState:
        return self._pstate

    @property
    def name(self) -> str:
        return f"Fixed@{self._pstate.frequency_mhz:.0f}MHz"
