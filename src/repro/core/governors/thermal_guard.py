"""Thermal guard: a closed-loop temperature cap over any governor.

Extension (the paper's related work contrasts its open-loop counter
models with Foxton's closed-loop "power and thermal envelopes"; this
composes the two).  The guard wraps an inner governor and, when the
junction temperature approaches the limit, clamps the inner decision to
progressively lower p-states -- one extra step per ``degrees_per_step``
of remaining-headroom deficit.  When the die is cool the inner governor
is untouched, so the guard composes with PM, PS or a fixed policy.

Temperature is read through a supplied callable (on real hardware, the
thermal diode MSR; in the reproduction, the machine's thermal model).
"""

from __future__ import annotations

from typing import Callable

from repro.acpi.pstates import PState
from repro.core.governors.base import Governor
from repro.core.sampling import CounterSample
from repro.errors import GovernorError
from repro.platform.events import Event


class ThermalGuard(Governor):
    """Temperature-capping wrapper around another governor.

    Parameters
    ----------
    inner:
        The wrapped policy (PM, PS, FixedFrequency, ...).
    read_temperature_c:
        Callable returning the current junction temperature.
    t_limit_c:
        Temperature the guard must keep the die below.
    margin_c:
        Control band: the guard starts clamping ``margin_c`` below the
        limit so the (thermally slow) package never overshoots.
    degrees_per_step:
        Proportional gain: one extra p-state step down per this many
        degrees of band penetration.
    """

    def __init__(
        self,
        inner: Governor,
        read_temperature_c: Callable[[], float],
        t_limit_c: float = 100.0,
        margin_c: float = 8.0,
        degrees_per_step: float = 2.0,
    ):
        super().__init__(inner.table)
        if margin_c <= 0 or degrees_per_step <= 0:
            raise GovernorError("margin and gain must be positive")
        self.inner = inner
        self._read_temperature = read_temperature_c
        self.t_limit_c = t_limit_c
        self.margin_c = margin_c
        self.degrees_per_step = degrees_per_step

    @property
    def events(self) -> tuple[Event, ...]:
        return self.inner.events

    def reset(self) -> None:
        self.inner.reset()

    @property
    def name(self) -> str:
        return f"ThermalGuard({self.inner.name})"

    def clamp_steps(self, temperature_c: float) -> int:
        """How many p-state steps the guard forces at a temperature."""
        penetration = temperature_c - (self.t_limit_c - self.margin_c)
        if penetration <= 0:
            return 0
        return 1 + int(penetration / self.degrees_per_step)

    def decide(self, sample: CounterSample, current: PState) -> PState:
        target = self.inner.decide(sample, current)
        steps = self.clamp_steps(self._read_temperature())
        if steps == 0:
            return target
        return self.table.step_down(target, steps)
