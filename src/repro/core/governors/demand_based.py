"""Demand-Based Switching (DBS): the utilization-driven baseline.

The paper positions PowerSave against DBS-style policies ("Demand-Based
Switching and many other techniques capitalize on under-utilized
components or schedule slack", §II; "saving energy only during low
utilization is insufficient", §IV-B).  DBS lowers frequency when CPU
utilization is low and raises it when utilization is high -- it never
trades performance under full load.

Utilization here is the fraction of wall-clock time the core spent
unhalted (cycles / (frequency x interval)); our benchmark workloads are
compute processes that never idle, so DBS pins them at full speed --
which is exactly the comparison point of the PS-vs-DBS ablation: at
100% load DBS saves nothing while PS saves within its floor.
"""

from __future__ import annotations

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.base import Governor
from repro.core.sampling import CounterSample
from repro.errors import GovernorError
from repro.platform.events import Event


class DemandBasedSwitching(Governor):
    """Classic utilization thresholds: raise when busy, lower when idle.

    Parameters
    ----------
    up_threshold:
        Utilization above which frequency is raised (one step per tick).
    down_threshold:
        Utilization below which frequency is lowered (one step per tick).
    """

    def __init__(
        self,
        table: PStateTable,
        up_threshold: float = 0.80,
        down_threshold: float = 0.30,
    ):
        super().__init__(table)
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise GovernorError(
                "thresholds must satisfy 0 < down < up <= 1, got "
                f"down={down_threshold}, up={up_threshold}"
            )
        self._up = up_threshold
        self._down = down_threshold

    @property
    def events(self) -> tuple[Event, ...]:
        return (Event.INST_RETIRED,)

    def utilization(self, sample: CounterSample, current: PState) -> float:
        """Unhalted fraction of the interval at the current frequency."""
        if sample.interval_s <= 0:
            return 1.0
        available = current.frequency_mhz * 1e6 * sample.interval_s
        return min(1.0, sample.cycles / available)

    def decide(self, sample: CounterSample, current: PState) -> PState:
        utilization = self.utilization(sample, current)
        if utilization >= self._up:
            return self.table.step_up(current)
        if utilization <= self._down:
            return self.table.step_down(current)
        return current
