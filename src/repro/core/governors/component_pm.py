"""ComponentPerformanceMaximizer: PM driven by the multi-event model.

Same control law as PerformanceMaximizer (highest feasible frequency,
0.5 W guardband, lower-fast/raise-slow hysteresis) but the estimation
phase uses the per-component power model, fed by *multiplexed* counters:
decode rate is refreshed every tick; FP and L2 rates alternate.  Stale
rates (one tick old at worst) are an explicit accuracy trade the real
two-counter hardware forces.
"""

from __future__ import annotations

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.base import Governor
from repro.core.models.component_power import (
    COMPONENT_EVENTS,
    ComponentPowerModel,
)
from repro.core.sampling import CounterSample
from repro.errors import GovernorError
from repro.platform.events import Event


class ComponentPerformanceMaximizer(Governor):
    """Power-limit governor estimating with component activity rates."""

    #: Counter rotation: decode every tick; FP and L2 alternate.
    EVENT_GROUPS: tuple[tuple[Event, ...], ...] = (
        (Event.INST_DECODED, Event.FP_COMP_OPS_EXE),
        (Event.INST_DECODED, Event.L2_RQSTS),
    )

    def __init__(
        self,
        table: PStateTable,
        model: ComponentPowerModel,
        power_limit_w: float,
        guardband_w: float = 0.5,
        raise_window: int = 10,
    ):
        super().__init__(table)
        if power_limit_w <= 0:
            raise GovernorError("power limit must be positive")
        if guardband_w < 0:
            raise GovernorError("guardband must be non-negative")
        if raise_window < 1:
            raise GovernorError("raise window must be at least one sample")
        self._model = model
        self._limit = power_limit_w
        self._guardband = guardband_w
        self._raise_window = raise_window
        self._known_rates: dict[Event, float] = {
            event: 0.0 for event in COMPONENT_EVENTS
        }
        self._raise_streak = 0
        self._pending_raise: PState | None = None

    @property
    def events(self) -> tuple[Event, ...]:
        """Primary group (the controller prefers :attr:`event_groups`)."""
        return self.EVENT_GROUPS[0]

    @property
    def event_groups(self) -> tuple[tuple[Event, ...], ...]:
        """Multiplexing rotation for the controller's sampler."""
        return self.EVENT_GROUPS

    @property
    def power_limit_w(self) -> float:
        return self._limit

    def set_power_limit(self, watts: float) -> None:
        """Runtime limit change, same semantics as PM."""
        if watts <= 0:
            raise GovernorError("power limit must be positive")
        self._limit = watts
        self._raise_streak = 0
        self._pending_raise = None

    def reset(self) -> None:
        self._known_rates = {event: 0.0 for event in COMPONENT_EVENTS}
        self._raise_streak = 0
        self._pending_raise = None

    def estimate_power(self, current: PState, candidate: PState) -> float:
        """Component-model estimate at ``candidate`` from known rates."""
        return self._model.estimate_projected(
            current.frequency_mhz, candidate.frequency_mhz, self._known_rates
        )

    def _desired(self, current: PState) -> PState:
        budget = self._limit - self._guardband
        for candidate in self.table:
            if self.estimate_power(current, candidate) <= budget:
                return candidate
        return self.table.slowest

    def decide(self, sample: CounterSample, current: PState) -> PState:
        # Absorb whatever events this tick's group measured; the rest
        # keep their last-known values (the multiplexing trade-off).
        for event, rate in sample.rates.items():
            if event in self._known_rates:
                self._known_rates[event] = rate

        desired = self._desired(current)
        if desired.frequency_mhz < current.frequency_mhz:
            self._raise_streak = 0
            self._pending_raise = None
            return desired
        if desired.frequency_mhz > current.frequency_mhz:
            if (
                self._pending_raise is None
                or desired.frequency_mhz < self._pending_raise.frequency_mhz
            ):
                self._pending_raise = desired
            self._raise_streak += 1
            if self._raise_streak >= self._raise_window:
                target = self._pending_raise
                self._raise_streak = 0
                self._pending_raise = None
                return target
            return current
        self._raise_streak = 0
        self._pending_raise = None
        return current
