"""EnergyDelayOptimizer: pick the p-state minimizing predicted EDP.

Extension combining *both* of the paper's models in one policy: PM's
power model tells the governor what each p-state costs, PS's performance
model tells it what each delivers; their ratio selects the operating
point minimizing the energy-delay product

    EDP ∝ P(f') / throughput(f')^2

(or, with ``delay_exponent=2``, ED²P).  ``delay_exponent=0`` degenerates
to pure energy-per-instruction minimization.

Monitoring needs three events (DPC, IPC, DCU) against two counters, so
the governor multiplexes: IPC every tick, DPC and DCU alternating --
a live demonstration of the counter-rotation machinery.
"""

from __future__ import annotations

from repro.acpi.pstates import PState, PStateTable
from repro.core.governors.base import Governor
from repro.core.models.performance import PerformanceModel
from repro.core.models.power import LinearPowerModel
from repro.core.models.projection import project_dpc
from repro.core.sampling import CounterSample
from repro.errors import GovernorError
from repro.platform.events import Event


class EnergyDelayOptimizer(Governor):
    """Model-driven EDP (or ED^nP) minimizer."""

    EVENT_GROUPS: tuple[tuple[Event, ...], ...] = (
        (Event.INST_RETIRED, Event.INST_DECODED),
        (Event.INST_RETIRED, Event.DCU_MISS_OUTSTANDING),
    )

    def __init__(
        self,
        table: PStateTable,
        power_model: LinearPowerModel,
        performance_model: PerformanceModel,
        delay_exponent: float = 1.0,
    ):
        super().__init__(table)
        if delay_exponent < 0:
            raise GovernorError("delay exponent must be non-negative")
        self._power = power_model
        self._performance = performance_model
        self._delay_exponent = delay_exponent
        self._dpc = 0.0
        self._dcu = 0.0

    @property
    def events(self) -> tuple[Event, ...]:
        return self.EVENT_GROUPS[0]

    @property
    def event_groups(self) -> tuple[tuple[Event, ...], ...]:
        return self.EVENT_GROUPS

    def reset(self) -> None:
        self._dpc = 0.0
        self._dcu = 0.0

    def objective(
        self, sample_ipc: float, current: PState, candidate: PState
    ) -> float:
        """Predicted energy x delay^n per unit of work at ``candidate``."""
        dpc = project_dpc(
            self._dpc, current.frequency_mhz, candidate.frequency_mhz
        )
        power = self._power.estimate(candidate, dpc)
        dcu_per_ipc = self._dcu / sample_ipc if sample_ipc > 0 else 0.0
        throughput = self._performance.project_throughput(
            sample_ipc,
            dcu_per_ipc,
            current.frequency_mhz,
            candidate.frequency_mhz,
        )
        if throughput <= 0:
            return float("inf")
        # Energy/instruction = P / throughput; delay/instruction =
        # 1 / throughput: objective = P / throughput^(1 + n).
        return power / throughput ** (1.0 + self._delay_exponent)

    def decide(self, sample: CounterSample, current: PState) -> PState:
        if Event.INST_DECODED in sample.rates:
            self._dpc = sample.rates[Event.INST_DECODED]
        if Event.DCU_MISS_OUTSTANDING in sample.rates:
            self._dcu = sample.rates[Event.DCU_MISS_OUTSTANDING]
        ipc = sample.rates.get(Event.INST_RETIRED, 0.0)
        if ipc <= 0 or self._dpc <= 0:
            return current  # nothing measured yet
        return min(
            self.table,
            key=lambda candidate: self.objective(ipc, current, candidate),
        )
