"""Crash-safe filesystem primitives shared across the package.

A process can be SIGKILLed between any two syscalls, so every file this
package wants to survive a crash is written with the classic
write-to-temp / fsync / :func:`os.replace` dance: readers either see the
complete old content or the complete new content, never a torn mix.
The model registry, the telemetry ``metrics.json`` snapshot and the
checkpoint journal manifests all write through these helpers.
"""

from __future__ import annotations

import os
import tempfile


def fsync_directory(path: str | os.PathLike) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best effort: some platforms/filesystems refuse to open directories
    (or to fsync them); durability of the rename is then up to the OS.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | os.PathLike, data: bytes, fsync: bool = True
) -> None:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + replace).

    The temporary file lives in the destination directory so the final
    :func:`os.replace` is a same-filesystem atomic rename.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(directory)


def atomic_write_text(
    path: str | os.PathLike, text: str, fsync: bool = True
) -> None:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
