"""Multicore scaling: where single-core Eq. 3 breaks, and the
energy-optimal (threads x frequency) configuration per family.

Two questions the single-core paper cannot answer:

* **Projection breakdown.**  Eq. 3 projects throughput across
  frequencies from one core's counters.  On a multicore part the
  shared front-side bus couples the cores: a co-runner's traffic
  inflates effective memory latency, so the projected frequency
  sensitivity drifts from the truth as core count grows.  Part A
  measures that drift per workload family and reports the break
  point -- the core count where the projection error first exceeds
  the threshold over its single-core baseline.

* **Energy-optimal configuration.**  With ``threads`` as a second
  knob next to frequency, the minimum-energy operating point is a
  *(threads, frequency)* pair: core-bound work wants all cores at a
  moderate clock, bandwidth-saturated work wants fewer cores (the
  extra ones only burn power waiting on the bus).  Part B sweeps the
  measured grid on the largest machine and compares the argmin
  against :class:`EnergyOptimalSearch`'s projection-table prediction.

The result is a JSON-safe mapping so the benchmark harness can
archive it as ``BENCH_multicore.json``.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.analysis.report import TextTable
from repro.core.governors.energy_optimal import EnergyOptimalSearch
from repro.core.governors.unconstrained import FixedFrequency
from repro.core.models.performance import PerformanceModel
from repro.core.models.power import LinearPowerModel
from repro.exec.plan import ExperimentConfig
from repro.multicore.contention import ContentionModel
from repro.multicore.controller import MulticoreController, MulticoreRunResult
from repro.multicore.machine import MulticoreConfig, MulticoreMachine
from repro.platform.machine import Machine
from repro.platform.calibration import workload_signature
from repro.workloads.registry import get_workload

#: One representative per workload family (paper suite categories).
FAMILIES: Mapping[str, str] = {
    "core": "crafty",
    "mixed": "ammp",
    "memory": "swim",
}

#: The frequency Part A projects down to from 2000 MHz.
PROJECTION_FREQ_MHZ = 1000.0

#: The frequency axis of Part B's measured grid (every other p-state).
GRID_FREQUENCIES_MHZ = (600.0, 1200.0, 1600.0, 2000.0)

#: A core count breaks the projection when its error exceeds the
#: single-core baseline by this many percentage points.
BREAK_THRESHOLD_PCT = 5.0


def _core_counts(scale: float) -> tuple[int, ...]:
    """Deeper sweeps at larger scales (CI stays on the short one)."""
    return (1, 2, 4) if scale >= 0.4 else (1, 2)


def _run_fixed(
    workload,
    n_cores: int,
    threads: int,
    frequency_mhz: float,
    config: ExperimentConfig,
) -> MulticoreRunResult:
    """One pinned-frequency run on an ``n_cores`` machine."""
    table = config.table
    machine = MulticoreMachine(MulticoreConfig(
        n_cores=n_cores, machine=config.machine_config(),
    ))
    controller = MulticoreController(
        machine, FixedFrequency(table, frequency_mhz), keep_trace=False,
    )
    return controller.run(
        workload,
        threads=threads,
        initial_pstate=table.by_frequency(frequency_mhz),
        max_seconds=config.max_seconds,
    )


def _throughput_ips(out: MulticoreRunResult) -> float:
    return out.result.instructions / out.result.duration_s


def run(config: ExperimentConfig | None = None) -> Mapping[str, Any]:
    """Measure projection breakdown and the energy-optimal grid."""
    config = config or ExperimentConfig(scale=0.1)
    table = config.table
    core_counts = _core_counts(config.scale)
    n_max = max(core_counts)
    thread_counts = tuple(range(1, n_max + 1))
    model = PerformanceModel.paper_primary()
    contention = ContentionModel()
    ceiling = contention.ceiling(config.machine.timing)

    projection: dict[str, list[dict[str, Any]]] = {}
    break_points: dict[str, int | None] = {}
    energy_optimal: dict[str, dict[str, Any]] = {}

    for family, name in FAMILIES.items():
        workload = get_workload(name).scaled(config.scale)
        signature = workload_signature(get_workload(name))
        predicted_ratio = model.project_throughput(
            signature.ipc, signature.dcu_per_ipc,
            2000.0, PROJECTION_FREQ_MHZ,
        ) / (signature.ipc * 2000.0e6)

        # -- Part A: single-core Eq. 3 projection vs measured scaling --
        rows = []
        for n in core_counts:
            hi = _run_fixed(workload, n, n, 2000.0, config)
            lo = _run_fixed(workload, n, n, PROJECTION_FREQ_MHZ, config)
            actual_ratio = _throughput_ips(lo) / _throughput_ips(hi)
            error_pct = 100.0 * abs(
                predicted_ratio - actual_ratio
            ) / actual_ratio
            rows.append({
                "cores": n,
                "actual_ratio": actual_ratio,
                "predicted_ratio": predicted_ratio,
                "error_pct": error_pct,
                "peak_bus_utilization": hi.peak_bus_utilization,
            })
        projection[family] = rows
        baseline = rows[0]["error_pct"]
        break_points[family] = next(
            (
                row["cores"]
                for row in rows
                if row["error_pct"] > baseline + BREAK_THRESHOLD_PCT
            ),
            None,
        )

        # -- Part B: measured (threads x frequency) energy grid --------
        grid = []
        for t in thread_counts:
            for f in GRID_FREQUENCIES_MHZ:
                out = _run_fixed(workload, n_max, t, f, config)
                grid.append({
                    "threads": t,
                    "frequency_mhz": f,
                    "energy_per_gi_j": out.result.true_energy_j
                    / (out.result.instructions / 1e9),
                    "throughput_ips": _throughput_ips(out),
                })
        measured = min(grid, key=lambda cell: cell["energy_per_gi_j"])

        # The governor's prediction from single-core counters alone.
        search = EnergyOptimalSearch(
            table,
            LinearPowerModel.paper_model(),
            model,
            n_cores=n_max,
            thread_counts=thread_counts,
            bandwidth_ceiling_bytes_per_s=ceiling,
        )
        machine = Machine(config.machine_config())
        machine.load(workload)
        rates = machine.peek_rates()
        best = search.best_configuration(
            signature.ipc,
            signature.dpc,
            signature.dcu_per_ipc * signature.ipc,
            table.fastest,
            bytes_per_instruction=rates.bytes_per_s / rates.ips,
        )
        energy_optimal[family] = {
            "workload": name,
            "measured": {
                "threads": measured["threads"],
                "frequency_mhz": measured["frequency_mhz"],
                "energy_per_gi_j": measured["energy_per_gi_j"],
            },
            "predicted": {
                "threads": best.threads,
                "frequency_mhz": best.pstate.frequency_mhz,
                "energy_per_gi_j": best.energy_per_giga_instruction_j,
            },
            "grid": grid,
        }

    return {
        "scale": config.scale,
        "core_counts": list(core_counts),
        "grid_frequencies_mhz": list(GRID_FREQUENCIES_MHZ),
        "projection_freq_mhz": PROJECTION_FREQ_MHZ,
        "break_threshold_pct": BREAK_THRESHOLD_PCT,
        "families": dict(FAMILIES),
        "projection": projection,
        "break_points": break_points,
        "energy_optimal": energy_optimal,
    }


def render(data: Mapping[str, Any]) -> str:
    """Projection-breakdown and energy-optimal tables."""
    proj = TextTable(
        ["family", "cores", "actual 2000->1000",
         "Eq.3 predicted", "error %", "bus util"]
    )
    for family, rows in data["projection"].items():
        for row in rows:
            proj.add_row(
                family, row["cores"], row["actual_ratio"],
                row["predicted_ratio"], row["error_pct"],
                row["peak_bus_utilization"],
            )
    breaks = ", ".join(
        f"{family}: {point if point is not None else 'none'}"
        for family, point in data["break_points"].items()
    )
    optimal = TextTable(
        ["family", "workload", "measured (t, MHz)", "J/Gi",
         "predicted (t, MHz)", "J/Gi "]
    )
    for family, entry in data["energy_optimal"].items():
        measured, predicted = entry["measured"], entry["predicted"]
        optimal.add_row(
            family, entry["workload"],
            f"({measured['threads']}, {measured['frequency_mhz']:.0f})",
            measured["energy_per_gi_j"],
            f"({predicted['threads']}, {predicted['frequency_mhz']:.0f})",
            predicted["energy_per_gi_j"],
        )
    return (
        "Single-core Eq. 3 projection under shared-bus contention "
        f"(threshold {data['break_threshold_pct']:.0f} pp over 1-core)\n"
        + proj.render()
        + f"\nbreak points (cores): {breaks}\n\n"
        + "Energy-optimal (threads, frequency) configurations "
        f"on {max(data['core_counts'])} cores\n"
        + optimal.render()
    )
