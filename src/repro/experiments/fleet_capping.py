"""Fleet-scale capping drill: churn, outage, partition -- and a kill.

The hierarchical fleet's headline claim is *robustness*: a 1k-node (CI)
to 10k-node (full-scale) cluster under diurnal + flash-crowd traffic
from the scenario corpus, with seeded node churn, one whole-rack
outage, and one coordinator-side partition, must keep the fleet-level
budget-violation fraction at or below 1% -- and keep it there even
when the coordinator itself is SIGKILLed mid-run and resumed from its
durable checkpoints.

The experiment has two phases:

1. **Scale run** (in-process): the scenario end-to-end at full node
   count, reporting nodes x ticks/sec, the budget-violation fraction,
   reallocation latency percentiles, and churn/degradation counters.
2. **Chaos run** (subprocess): a smaller checkpointed fleet run as a
   ``repro-power fleet-sim`` child, killed with SIGKILL once its
   manifest shows a durable mid-run checkpoint, resumed with
   ``--resume``, and compared digest-for-digest against an
   uninterrupted reference -- bit-identical, violation bound intact.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Any, Mapping

from repro.errors import DeadlineExceeded, ExperimentError
from repro.exec.plan import ExperimentConfig
from repro.fleet.cluster import (
    FleetSpec,
    fleet_result_digest,
    run_fleet,
)
from repro.fleet.scenario import FleetScenario
from repro.supervise import RetryPolicy, Supervisor

#: The robustness bound the experiment enforces.
MAX_VIOLATION_FRACTION = 0.01

#: Full-scale node count (scale >= 4); CI runs 1000 x scale.
FULL_SCALE_NODES = 10_000

#: Chaos child size: small enough that three subprocess runs stay
#: inside a CI budget, large enough for a multi-rack tree.
CHAOS_NODES = 256
CHAOS_TICKS = 150
CHAOS_INTERVAL_TICKS = 25

#: Wall-clock budget per chaos child.
CHILD_DEADLINE_S = 300.0


def _node_count(scale: float) -> int:
    if scale >= 4.0:
        return FULL_SCALE_NODES
    return max(64, int(round(1000 * scale)))


def _tick_count(scale: float) -> int:
    return max(120, min(720, int(round(360 * min(scale, 2.0)))))


def build_spec(config: ExperimentConfig) -> FleetSpec:
    """The scenario the scale run executes (churn + outage on)."""
    return FleetSpec(
        nodes=_node_count(config.scale),
        seed=config.seed,
        scenario=FleetScenario(ticks=_tick_count(config.scale)),
    )


def _fleet_sim_cmd(extra: list[str]) -> list[str]:
    return [sys.executable, "-m", "repro", "fleet-sim", *extra]


def _wait_and_kill(
    proc: subprocess.Popen,
    manifest_path: str,
    target_tick: int,
    deadline_s: float,
) -> tuple[bool, int]:
    """SIGKILL ``proc`` once its newest durable checkpoint >= target.

    Returns ``(killed, newest_durable_tick)``; raw SIGKILL, no grace.
    """
    start = time.monotonic()
    newest = -1
    while proc.poll() is None:
        if time.monotonic() - start > deadline_s:
            proc.kill()
            proc.wait()
            raise DeadlineExceeded(
                f"fleet chaos child ran past {deadline_s:.0f}s before "
                f"reaching tick {target_tick}"
            )
        if os.path.exists(manifest_path):
            try:
                with open(manifest_path) as handle:
                    newest = int(json.load(handle).get("tick", -1))
            except (OSError, ValueError):
                pass  # mid-replace; atomic rename makes this transient
            if newest >= target_tick:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait()
                return True, newest
        time.sleep(0.005)
    proc.wait()
    return False, newest


def _chaos_drill(config: ExperimentConfig,
                 workdir: str) -> Mapping[str, Any]:
    """Kill the coordinator mid-run, resume, compare digests."""
    spec = FleetSpec(
        nodes=CHAOS_NODES,
        seed=config.seed,
        scenario=FleetScenario(ticks=CHAOS_TICKS),
        checkpoint_interval_ticks=CHAOS_INTERVAL_TICKS,
    )
    spec_path = os.path.join(workdir, "chaos-spec.json")
    with open(spec_path, "w") as handle:
        handle.write(spec.to_json())
    supervisor = Supervisor(
        RetryPolicy(max_attempts=1, deadline_s=CHILD_DEADLINE_S * 4)
    )

    # Uninterrupted reference (checkpointing on: same code path).
    ref_json = os.path.join(workdir, "reference.json")
    supervisor.run_subprocess(
        _fleet_sim_cmd([
            "--spec", spec_path,
            "--checkpoint", os.path.join(workdir, "reference-ck"),
            "--result-json", ref_json,
        ]),
        label="fleet-chaos-reference",
        timeout_s=CHILD_DEADLINE_S,
    )
    with open(ref_json) as handle:
        reference = json.load(handle)

    # The victim: killed at the second durable checkpoint, deep enough
    # that churn, the outage window, and stale episodes are in flight.
    run_dir = os.path.join(workdir, "victim-ck")
    out_json = os.path.join(workdir, "victim.json")
    proc = subprocess.Popen(
        _fleet_sim_cmd([
            "--spec", spec_path,
            "--checkpoint", run_dir,
            "--result-json", out_json,
        ]),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    killed, newest = _wait_and_kill(
        proc,
        os.path.join(run_dir, "manifest.json"),
        target_tick=2 * CHAOS_INTERVAL_TICKS,
        deadline_s=CHILD_DEADLINE_S,
    )
    supervisor.run_subprocess(
        _fleet_sim_cmd(["--resume", run_dir, "--result-json", out_json]),
        label="fleet-chaos-resume",
        timeout_s=CHILD_DEADLINE_S,
    )
    with open(out_json) as handle:
        resumed = json.load(handle)
    return {
        "nodes": CHAOS_NODES,
        "ticks": CHAOS_TICKS,
        "interval_ticks": CHAOS_INTERVAL_TICKS,
        "killed": killed,
        "killed_after_tick": newest,
        "identical": resumed == reference,
        "violation_fraction": resumed["violation_fraction"],
        "reference_power_sha256": reference["power_sha256"],
    }


def run(config: ExperimentConfig | None = None) -> Mapping[str, Any]:
    """Scale run + chaos drill; returns the combined data."""
    config = config or ExperimentConfig(scale=1.0)
    spec = build_spec(config)
    result = run_fleet(spec)
    digest = fleet_result_digest(result)
    violation = result.budget_violation_fraction()
    if violation > MAX_VIOLATION_FRACTION:
        raise ExperimentError(
            f"budget-violation fraction {violation:.2%} exceeds the "
            f"{MAX_VIOLATION_FRACTION:.0%} bound at "
            f"{spec.nodes} nodes"
        )
    workdir = tempfile.mkdtemp(prefix="repro-fleet-chaos-")
    try:
        chaos = _chaos_drill(config, workdir)
    finally:
        import shutil

        shutil.rmtree(workdir, ignore_errors=True)
    if not chaos["killed"]:
        raise ExperimentError(
            "fleet chaos child finished before the SIGKILL landed; "
            "lower the kill target or raise the tick count"
        )
    if not chaos["identical"]:
        raise ExperimentError(
            "resumed fleet run diverged from the uninterrupted "
            "reference (checkpoint state is incomplete)"
        )
    if chaos["violation_fraction"] > MAX_VIOLATION_FRACTION:
        raise ExperimentError(
            f"post-resume violation fraction "
            f"{chaos['violation_fraction']:.2%} exceeds the "
            f"{MAX_VIOLATION_FRACTION:.0%} bound"
        )
    return {
        "nodes": spec.nodes,
        "ticks": spec.scenario.ticks,
        "budget_w": spec.budget_w,
        "violation_fraction": violation,
        "violation_bound": MAX_VIOLATION_FRACTION,
        "mean_fleet_power_w": result.mean_fleet_power_w,
        "demand_satisfaction": result.demand_satisfaction,
        "crashes": result.crashes,
        "restarts": result.restarts,
        "finishes": result.finishes,
        "stale_episodes": result.stale_episodes,
        "infeasible_events": result.infeasible_events,
        "outage_ticks": result.outage_ticks,
        "degraded_ticks": result.degraded_ticks,
        "reallocations": result.reallocations,
        "subtree_reallocations": result.subtree_reallocations,
        "realloc_latency_mean_s": result.realloc_latency_mean_s,
        "realloc_latency_p99_s": result.realloc_latency_p99_s,
        "realloc_latency_max_s": result.realloc_latency_max_s,
        "wall_s": result.wall_s,
        "nodes_x_ticks_per_s": result.nodes_x_ticks_per_s,
        "digest": digest,
        "chaos": chaos,
    }


def render(data: Mapping[str, Any]) -> str:
    chaos = data["chaos"]
    lines = [
        "Fleet power capping under churn "
        "(hierarchical budget tree)",
        "=" * 58,
        f"fleet            : {data['nodes']} nodes x "
        f"{data['ticks']} ticks",
        f"budget           : {data['budget_w']:.0f} W "
        f"(mean draw {data['mean_fleet_power_w']:.0f} W)",
        f"violations       : {data['violation_fraction']:.2%} of "
        f"windows (bound {data['violation_bound']:.0%})",
        f"demand met       : {data['demand_satisfaction']:.1%} of "
        f"uncapped demand",
        f"churn            : {data['crashes']} crashes, "
        f"{data['restarts']} restarts, {data['finishes']} finishes",
        f"telemetry        : {data['stale_episodes']} stale episodes, "
        f"{data['infeasible_events']} infeasible clamps",
        f"degradation      : {data['outage_ticks']} outage ticks, "
        f"{data['degraded_ticks']} partition-degraded ticks",
        f"reallocation     : {data['reallocations']} passes, "
        f"{data['subtree_reallocations']} subtree re-divisions",
        f"realloc latency  : mean "
        f"{data['realloc_latency_mean_s'] * 1e3:.2f} ms, p99 "
        f"{data['realloc_latency_p99_s'] * 1e3:.2f} ms, max "
        f"{data['realloc_latency_max_s'] * 1e3:.2f} ms",
        f"throughput       : {data['nodes_x_ticks_per_s']:,.0f} "
        f"node-ticks/s ({data['wall_s']:.2f} s wall)",
        "",
        "Chaos drill (coordinator SIGKILL + resume)",
        "-" * 58,
        f"child            : {chaos['nodes']} nodes x "
        f"{chaos['ticks']} ticks, checkpoint every "
        f"{chaos['interval_ticks']}",
        f"killed           : after durable tick "
        f"{chaos['killed_after_tick']}",
        f"resume identical : {chaos['identical']}",
        f"violations       : {chaos['violation_fraction']:.2%} "
        f"(bound {data['violation_bound']:.0%})",
    ]
    return "\n".join(lines)
