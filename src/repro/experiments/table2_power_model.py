"""Table II: the per-p-state DPC power model, re-derived.

Runs the paper's model-construction procedure -- characterize the 12
MS-Loops points at every p-state on the (simulated) rig, then fit
``P = alpha*DPC + beta`` per p-state minimizing absolute error -- and
compares the result against the published Table II coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import TextTable
from repro.core.models.power import LinearPowerModel, PAPER_TABLE_II
from repro.core.models.training import (
    TrainingPoint,
    collect_training_data,
    fit_power_model,
)
from repro.exec.plan import ExperimentConfig


@dataclass(frozen=True)
class Table2Result:
    """Fitted model, the training set, and per-coefficient deviations."""

    model: LinearPowerModel
    points: tuple[TrainingPoint, ...]

    def alpha_deviation(self, frequency_mhz: float) -> float:
        """Relative |alpha - paper| / paper at one p-state."""
        fitted = self.model.alpha(frequency_mhz)
        paper = PAPER_TABLE_II[frequency_mhz].alpha
        return abs(fitted - paper) / paper

    def beta_deviation(self, frequency_mhz: float) -> float:
        """Relative |beta - paper| / paper at one p-state."""
        fitted = self.model.beta(frequency_mhz)
        paper = PAPER_TABLE_II[frequency_mhz].beta
        return abs(fitted - paper) / paper

    @property
    def max_deviation(self) -> float:
        """Worst relative deviation across all coefficients."""
        return max(
            max(self.alpha_deviation(f), self.beta_deviation(f))
            for f in self.model.frequencies_mhz
        )


def run(config: ExperimentConfig | None = None) -> Table2Result:
    """Regenerate Table II by training on MS-Loops."""
    config = config or ExperimentConfig()
    points = collect_training_data(
        config=config.machine_config()
    )
    model = fit_power_model(points)
    return Table2Result(model=model, points=points)


def render(result: Table2Result) -> str:
    """Side-by-side fitted vs published coefficients."""
    table = TextTable(
        ["MHz", "alpha", "paper", "dev%", "beta", "paper", "dev%"]
    )
    for freq in result.model.frequencies_mhz:
        coefficient = result.model.coefficients(freq)
        paper = PAPER_TABLE_II[freq]
        table.add_row(
            f"{freq:.0f}",
            coefficient.alpha,
            paper.alpha,
            100 * result.alpha_deviation(freq),
            coefficient.beta,
            paper.beta,
            100 * result.beta_deviation(freq),
        )
    return (
        "Table II -- DPC power model per p-state (refit vs paper)\n"
        + table.render()
        + f"\nmax coefficient deviation: {100 * result.max_deviation:.1f}%"
    )
