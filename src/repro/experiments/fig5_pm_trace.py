"""Fig. 5: PerformanceMaximizer controlling ammp.

The paper's trace figure: ammp runs to completion unconstrained
(2 GHz) and under PM with 14.5 W and 10.5 W limits; frequency visibly
modulates with the workload's compute/memory phase alternation while
power stays under the limit.

This experiment reproduces the three runs with full traces and reports,
per run: completion time, mean power, p-state residency, and the
100 ms-window limit-violation fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.report import TextTable, format_series
from repro.core.controller import RunResult
from repro.exec import (
    ExperimentConfig,
    GovernorSpec,
    RunCell,
    execute_cell,
)
from repro.workloads.registry import get_workload

#: The two power limits shown in the paper's figure.
LIMITS_W = (14.5, 10.5)


@dataclass(frozen=True)
class Fig5Result:
    """Unconstrained run plus one PM run per limit."""

    unconstrained: RunResult
    limited: Mapping[float, RunResult]

    def violation_fraction(self, limit_w: float) -> float:
        """100 ms-window violation fraction for one PM run."""
        return self.limited[limit_w].violation_fraction(limit_w)


def run(config: ExperimentConfig | None = None) -> Fig5Result:
    """Regenerate Fig. 5's three ammp runs (full traces kept)."""
    config = config or ExperimentConfig(scale=1.0, keep_trace=True)
    workload = get_workload("ammp")
    unconstrained = execute_cell(RunCell.fixed(workload, 2000.0), config)
    limited = {
        limit: execute_cell(
            RunCell(workload=workload, governor=GovernorSpec.pm(limit)),
            config,
        )
        for limit in LIMITS_W
    }
    return Fig5Result(unconstrained=unconstrained, limited=limited)


def render(result: Fig5Result) -> str:
    """Run summaries plus downsampled frequency/power traces."""
    table = TextTable(
        ["run", "time s", "mean W", "viol frac", "residency (MHz: s)"]
    )
    runs = [("unconstrained 2000 MHz", result.unconstrained, None)]
    runs += [
        (f"PM @ {limit:.1f} W", result.limited[limit], limit)
        for limit in LIMITS_W
    ]
    for label, run_result, limit in runs:
        residency = ", ".join(
            f"{freq:.0f}:{seconds:.2f}"
            for freq, seconds in sorted(run_result.residency_s.items())
        )
        violation = (
            run_result.violation_fraction(limit) if limit is not None else 0.0
        )
        table.add_row(
            label, run_result.duration_s, run_result.mean_power_w,
            violation, residency,
        )
    lines = ["Fig. 5 -- PM on ammp (unconstrained vs 14.5 W vs 10.5 W)",
             table.render()]
    for label, run_result, _ in runs:
        if run_result.trace:
            freq_series = [
                (row.time_s, row.frequency_mhz) for row in run_result.trace
            ]
            power_series = [
                (row.time_s, row.measured_power_w) for row in run_result.trace
            ]
            lines.append(f"\n{label}:")
            lines.append(format_series(freq_series, "t", "MHz"))
            lines.append(format_series(power_series, "t", "W"))
    return "\n".join(lines)
