"""Table IV: power-limit-determined static frequencies.

For each of the paper's eight power limits (17.5 W down to 10.5 W in
1 W steps), static clocking picks the highest frequency whose worst-case
(FMA-256KB) power fits the limit.  The reproduction must preserve the
paper's crossovers exactly: 17.5-15.5 -> 1800, 14.5-12.5 -> 1600,
11.5-10.5 -> 1400.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.analysis.report import TextTable
from repro.core.governors.static import static_frequency_for_limit
from repro.exec import ExperimentConfig
from repro.exec.cache import worst_case_power_table

#: The paper's eight power limits (watts).
POWER_LIMITS_W: Tuple[float, ...] = (
    17.5, 16.5, 15.5, 14.5, 13.5, 12.5, 11.5, 10.5,
)

#: The paper's Table IV mapping.
PAPER_TABLE_IV: Mapping[float, float] = {
    17.5: 1800.0,
    16.5: 1800.0,
    15.5: 1800.0,
    14.5: 1600.0,
    13.5: 1600.0,
    12.5: 1600.0,
    11.5: 1400.0,
    10.5: 1400.0,
}


@dataclass(frozen=True)
class Table4Result:
    """Limit -> static frequency, from the measured worst-case table."""

    static_mhz: Mapping[float, float]
    worst_case_w: Mapping[float, float]

    @property
    def matches_paper(self) -> bool:
        """True when every crossover matches the published Table IV."""
        return all(
            self.static_mhz[limit] == PAPER_TABLE_IV[limit]
            for limit in POWER_LIMITS_W
        )


def run(config: ExperimentConfig | None = None) -> Table4Result:
    """Derive Table IV from the measured Table III."""
    config = config or ExperimentConfig()
    worst = worst_case_power_table(seed=config.seed)
    static = {
        limit: static_frequency_for_limit(limit, worst)
        for limit in POWER_LIMITS_W
    }
    return Table4Result(static_mhz=static, worst_case_w=worst)


def render(result: Table4Result) -> str:
    """Limit -> frequency table with the paper's column alongside."""
    table = TextTable(["limit W", "static MHz", "paper MHz"])
    for limit in POWER_LIMITS_W:
        table.add_row(
            f"{limit:.1f}",
            f"{result.static_mhz[limit]:.0f}",
            f"{PAPER_TABLE_IV[limit]:.0f}",
        )
    verdict = "all crossovers match" if result.matches_paper else "MISMATCH"
    return (
        "Table IV -- power-limit-determined static frequencies\n"
        + table.render()
        + f"\n{verdict}"
    )
