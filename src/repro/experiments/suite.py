"""SPEC-suite sweep helpers shared by the figure experiments.

Both drivers are *plan builders*: they expand the sweep into a flat
list of :class:`~repro.exec.RunCell` and hand it to
:func:`repro.exec.execute_cells`, so an :func:`repro.exec.open_session`
with ``workers=N`` above them (e.g. the CLI's ``experiment --workers``)
fans the whole suite out over a process pool.  Cell order matches the
historical serial call order, which keeps checkpoint slot numbering --
and therefore resume compatibility -- identical.
"""

from __future__ import annotations

from typing import Dict

from repro.core.controller import RunResult
from repro.errors import ExperimentError
from repro.exec.plan import GovernorSpec, RunCell, as_governor_spec
from repro.exec.session import execute_cells
from repro.exec.plan import ExperimentConfig, GovernorFactory
from repro.experiments.runner import pick_median
from repro.workloads.registry import default_registry


def run_suite_fixed(
    frequency_mhz: float, config: ExperimentConfig
) -> Dict[str, RunResult]:
    """Every SPEC benchmark pinned at one frequency."""
    workloads = default_registry().spec_suite()
    cells = [
        RunCell(
            workload=workload,
            governor=GovernorSpec.fixed(frequency_mhz),
            initial_frequency_mhz=frequency_mhz,
            group=workload.name,
        )
        for workload in workloads
    ]
    results = execute_cells(cells, config)
    return {w.name: r for w, r in zip(workloads, results)}


def run_suite_governed(
    governor_factory: GovernorFactory | GovernorSpec,
    config: ExperimentConfig,
) -> Dict[str, RunResult]:
    """Every SPEC benchmark under a fresh governor instance.

    Uses the paper's median-of-``config.runs`` protocol per benchmark.
    The full benchmark x repetition cross product is one flat cell list
    (so a 4-worker session keeps every worker busy across benchmark
    boundaries); the median pick per benchmark happens afterwards.
    """
    if config.runs < 1:
        raise ExperimentError("need at least one run")
    spec = as_governor_spec(governor_factory)
    workloads = default_registry().spec_suite()
    cells = [
        RunCell(
            workload=workload,
            governor=spec,
            seed_offset=100 * rep,
            group=workload.name,
            rep=rep,
        )
        for workload in workloads
        for rep in range(config.runs)
    ]
    results = execute_cells(cells, config)
    out: Dict[str, RunResult] = {}
    for index, workload in enumerate(workloads):
        reps = results[index * config.runs:(index + 1) * config.runs]
        out[workload.name] = pick_median(reps)
    return out


def suite_order(results: Dict[str, RunResult]) -> tuple[str, ...]:
    """Benchmark names in canonical suite order present in ``results``."""
    return tuple(
        w.name
        for w in default_registry().spec_suite()
        if w.name in results
    )
