"""SPEC-suite sweep helpers shared by the figure experiments."""

from __future__ import annotations

from typing import Dict

from repro.core.controller import RunResult
from repro.experiments.runner import (
    ExperimentConfig,
    GovernorFactory,
    median_run,
    run_fixed,
)
from repro.workloads.registry import default_registry


def run_suite_fixed(
    frequency_mhz: float, config: ExperimentConfig
) -> Dict[str, RunResult]:
    """Every SPEC benchmark pinned at one frequency."""
    results: Dict[str, RunResult] = {}
    for workload in default_registry().spec_suite():
        results[workload.name] = run_fixed(workload, frequency_mhz, config)
    return results


def run_suite_governed(
    governor_factory: GovernorFactory, config: ExperimentConfig
) -> Dict[str, RunResult]:
    """Every SPEC benchmark under a fresh governor instance.

    Uses the paper's median-of-``config.runs`` protocol per benchmark.
    """
    results: Dict[str, RunResult] = {}
    for workload in default_registry().spec_suite():
        results[workload.name] = median_run(workload, governor_factory, config)
    return results


def suite_order(results: Dict[str, RunResult]) -> tuple[str, ...]:
    """Benchmark names in canonical suite order present in ``results``."""
    return tuple(
        w.name
        for w in default_registry().spec_suite()
        if w.name in results
    )
