"""Shared experiment machinery: configured runs and the median protocol.

The paper's protocol: "To account for the variability in workload
execution times, we employ the standard SPEC approach of executing three
times and reporting data from the run with the median execution time"
(§IV).  :func:`median_run` implements that; single-run mode (``runs=1``)
is the fast default for benchmarks since the simulator's variance is
small and seeded.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from repro.acpi.pstates import PStateTable, pentium_m_755_table
from repro.adaptation.context import current_adaptation_config
from repro.adaptation.manager import AdaptationConfig, AdaptationManager
from repro.checkpoint.context import current_checkpoint_session
from repro.core.controller import PowerManagementController, RunResult
from repro.core.governors.base import Governor
from repro.core.governors.unconstrained import FixedFrequency
from repro.core.limits import ConstraintSchedule
from repro.core.models.power import LinearPowerModel
from repro.core.models.training import collect_training_data, fit_power_model
from repro.core.resilience import ResilienceConfig
from repro.errors import ExperimentError
from repro.faults.context import current_fault_plan
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.platform.machine import Machine, MachineConfig
from repro.telemetry.recorder import TelemetryRecorder, current_recorder
from repro.workloads.base import Workload
from repro.workloads.microbenchmarks import worst_case_workload
from repro.workloads.registry import default_registry

#: A governor factory: given the p-state table, build a fresh governor.
GovernorFactory = Callable[[PStateTable], Governor]


@dataclass(frozen=True)
class ExperimentConfig:
    """Common experiment knobs.

    ``scale`` multiplies workload instruction budgets (1.0 = the full
    synthetic budgets; smaller = faster runs with identical rates and
    phase structure).  ``runs`` is the paper's repetition count (3 with
    median selection; 1 for quick sweeps).
    """

    scale: float = 0.5
    runs: int = 1
    seed: int = 0
    keep_trace: bool = False
    max_seconds: float = 600.0
    machine: MachineConfig = field(default_factory=MachineConfig)

    def machine_config(self, seed_offset: int = 0) -> MachineConfig:
        """Machine config with the experiment seed applied."""
        return replace(self.machine, seed=self.seed + seed_offset)

    @property
    def table(self) -> PStateTable:
        """The platform p-state table."""
        return self.machine.table


def run_governed(
    workload: Workload,
    governor_factory: GovernorFactory,
    config: ExperimentConfig,
    schedule: ConstraintSchedule | None = None,
    seed_offset: int = 0,
    initial_frequency_mhz: float | None = None,
    telemetry: TelemetryRecorder | None = None,
    fault_plan: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    adaptation: AdaptationConfig | AdaptationManager | None = None,
) -> RunResult:
    """One (workload, governor) run on a fresh machine.

    ``telemetry`` instruments the run; when omitted the process-local
    recorder installed with :func:`repro.telemetry.recording` (if any)
    is used, so the CLI can observe whole experiment modules without
    threading a recorder through every driver.  Each configured run is
    wrapped in a root ``run`` span.

    ``fault_plan`` drills the run's failure paths; when omitted the
    process-local plan installed with :func:`repro.faults.injecting`
    (if any) is used.  An active plan gets a *fresh* seeded injector per
    run (so repetitions see identical fault sequences) and implies a
    default :class:`ResilienceConfig` unless one is supplied --
    injecting faults into an unhardened loop would just crash it.
    ``resilience`` alone hardens the loop without injecting anything.

    ``adaptation`` turns on online model adaptation; when omitted the
    process-local config installed with :func:`repro.adaptation.
    adapting` (if any) is used.  A config gets a *fresh*
    :class:`AdaptationManager` per run, so repetitions never share
    learned state; pass a prebuilt manager instead to inspect its
    registry and summary after the run.  The manager engages only on
    governors that expose the model-swap interface and is a guaranteed
    no-op otherwise.
    """
    tel = telemetry if telemetry is not None else current_recorder()
    session = current_checkpoint_session()
    if session is not None:
        # Crash-safe experiment execution: completed slots replay from
        # the archive, an interrupted slot resumes from its journal, and
        # fresh slots run with periodic checkpointing.  run_governed is
        # called in deterministic order, so slot indices line up across
        # the original and every resumed invocation.
        slot = session.claim()
        cached = session.archived(slot)
        if cached is not None:
            return cached
        resumed = session.resume_slot(slot, tel)
        if resumed is not None:
            session.finish_slot(slot, resumed, telemetry=tel)
            return resumed
    plan = fault_plan if fault_plan is not None else current_fault_plan()
    adapt = (
        adaptation if adaptation is not None else current_adaptation_config()
    )
    if adapt is not None and not isinstance(adapt, AdaptationManager):
        adapt = AdaptationManager(adapt)
    injector = (
        FaultInjector(plan, telemetry=tel)
        if plan is not None and plan.active
        else None
    )
    if injector is not None and resilience is None:
        resilience = ResilienceConfig()
    machine = Machine(config.machine_config(seed_offset))
    governor = governor_factory(machine.config.table)
    controller = PowerManagementController(
        machine,
        governor,
        keep_trace=config.keep_trace,
        telemetry=tel,
        resilience=resilience,
        injector=injector,
        adaptation=adapt,
    )
    initial = (
        machine.config.table.by_frequency(initial_frequency_mhz)
        if initial_frequency_mhz is not None
        else None
    )
    checkpointer = (
        session.start_slot(slot, workload.name, governor.name)
        if session is not None
        else None
    )
    if tel is not None and tel.enabled:
        with tel.span("run"):
            result = controller.run(
                workload.scaled(config.scale),
                initial_pstate=initial,
                schedule=schedule,
                max_seconds=config.max_seconds,
                checkpointer=checkpointer,
            )
    else:
        result = controller.run(
            workload.scaled(config.scale),
            initial_pstate=initial,
            schedule=schedule,
            max_seconds=config.max_seconds,
            checkpointer=checkpointer,
        )
    if session is not None:
        session.finish_slot(
            slot, result, telemetry=tel, checkpointer=checkpointer
        )
    return result


def run_fixed(
    workload: Workload,
    frequency_mhz: float,
    config: ExperimentConfig,
    seed_offset: int = 0,
    telemetry: TelemetryRecorder | None = None,
) -> RunResult:
    """Run a workload pinned at one frequency (paper's reference runs).

    The run *starts* at the pinned frequency too -- otherwise the first
    tick would execute at P0 and bias short characterization runs.
    """
    return run_governed(
        workload,
        lambda table: FixedFrequency(table, frequency_mhz),
        config,
        seed_offset=seed_offset,
        initial_frequency_mhz=frequency_mhz,
        telemetry=telemetry,
    )


def median_run(
    workload: Workload,
    governor_factory: GovernorFactory,
    config: ExperimentConfig,
    schedule: ConstraintSchedule | None = None,
    telemetry: TelemetryRecorder | None = None,
) -> RunResult:
    """The paper's protocol: ``config.runs`` repetitions, median by time."""
    if config.runs < 1:
        raise ExperimentError("need at least one run")
    results = [
        run_governed(
            workload,
            governor_factory,
            config,
            schedule=schedule,
            seed_offset=100 * i,
            telemetry=telemetry,
        )
        for i in range(config.runs)
    ]
    results.sort(key=lambda r: r.duration_s)
    return results[len(results) // 2]


@functools.lru_cache(maxsize=4)
def trained_power_model(seed: int = 0) -> LinearPowerModel:
    """The power model trained on MS-Loops (cached per process).

    Experiments use the *trained* model by default -- the paper trains
    on the microbenchmarks, then manages SPEC with the result.  The
    published Table II coefficients remain available via
    :meth:`LinearPowerModel.paper_model` for comparisons.
    """
    points = collect_training_data(config=MachineConfig(seed=seed))
    return fit_power_model(points)


@functools.lru_cache(maxsize=4)
def worst_case_power_table(
    scale: float = 3.0, seed: int = 0
) -> Mapping[float, float]:
    """Measured FMA-256KB power per p-state (regenerates Table III).

    This is the worst-case characterization static clocking provisions
    against; it is *measured* (run on the simulated rig), not computed
    from model constants.
    """
    table = pentium_m_755_table()
    workload = worst_case_workload()
    config = ExperimentConfig(scale=scale, seed=seed)
    out: dict[float, float] = {}
    for pstate in table:
        result = run_fixed(workload, pstate.frequency_mhz, config)
        out[pstate.frequency_mhz] = result.mean_power_w
    return out


def spec_suite(config: ExperimentConfig) -> tuple[Workload, ...]:
    """The SPEC CPU2000 suite (unscaled; runs apply ``config.scale``)."""
    return default_registry().spec_suite()
