"""Shared experiment machinery: configured runs and the median protocol.

The paper's protocol: "To account for the variability in workload
execution times, we employ the standard SPEC approach of executing three
times and reporting data from the run with the median execution time"
(§IV).  :func:`median_run` implements that; single-run mode (``runs=1``)
is the fast default for benchmarks since the simulator's variance is
small and seeded.

.. deprecated::
    The execution machinery itself moved to :mod:`repro.exec`:
    :class:`~repro.exec.ExperimentConfig` and the model caches are
    re-exported from their new home, and :func:`run_governed` /
    :func:`run_fixed` are now thin shims over
    :func:`repro.exec.execute_cell`.  New code should describe runs
    declaratively (:class:`~repro.exec.GovernorSpec`,
    :class:`~repro.exec.RunCell`) and execute them through
    :func:`repro.exec.open_session` -- that is the API that
    parallelises.  These shims are kept so existing callers and tests
    keep working unchanged; behaviour (including digests) is identical.
"""

from __future__ import annotations

from repro.adaptation.manager import AdaptationConfig, AdaptationManager
from repro.core.controller import RunResult
from repro.core.limits import ConstraintSchedule
from repro.core.resilience import ResilienceConfig
from repro.errors import ExperimentError
from repro.exec.cache import trained_power_model, worst_case_power_table
from repro.exec.core import execute_cell

# Deprecated aliases: the canonical ExperimentConfig (and the other
# plan types) live in repro.exec.plan; these re-exports keep legacy
# ``from repro.experiments.runner import ExperimentConfig`` working.
# It is the same class object, so isinstance checks cannot diverge.
from repro.exec.plan import (
    ExperimentConfig,
    GovernorFactory,
    GovernorSpec,
    RunCell,
    as_governor_spec,
)
from repro.exec.session import execute_cells
from repro.faults.plan import FaultPlan
from repro.telemetry.recorder import TelemetryRecorder
from repro.workloads.base import Workload
from repro.workloads.registry import default_registry

__all__ = [
    "ExperimentConfig",
    "GovernorFactory",
    "median_run",
    "run_fixed",
    "run_governed",
    "spec_suite",
    "trained_power_model",
    "worst_case_power_table",
]


def run_governed(
    workload: Workload,
    governor_factory: GovernorFactory | GovernorSpec,
    config: ExperimentConfig,
    schedule: ConstraintSchedule | None = None,
    seed_offset: int = 0,
    initial_frequency_mhz: float | None = None,
    telemetry: TelemetryRecorder | None = None,
    fault_plan: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    adaptation: AdaptationConfig | AdaptationManager | None = None,
) -> RunResult:
    """One (workload, governor) run on a fresh machine.

    .. deprecated:: thin shim over :func:`repro.exec.execute_cell`;
       prefer ``open_session().run(workload, spec, config)``.

    ``telemetry`` instruments the run; when omitted the process-local
    recorder installed with :func:`repro.telemetry.recording` (if any)
    is used.  ``fault_plan`` / ``adaptation`` likewise fall back to
    their ambient contexts (:func:`repro.faults.injecting`,
    :func:`repro.adaptation.adapting`), an active fault plan gets a
    fresh seeded injector per run and implies a default
    :class:`ResilienceConfig`, and an ambient checkpoint session
    (:func:`repro.checkpoint.checkpointing`) makes the run crash-safe
    -- all exactly as before the :mod:`repro.exec` refactor, because
    this *is* the same code path.
    """
    cell = RunCell(
        workload=workload,
        governor=as_governor_spec(governor_factory),
        seed_offset=seed_offset,
        schedule=schedule,
        initial_frequency_mhz=initial_frequency_mhz,
    )
    return execute_cell(
        cell,
        config,
        telemetry=telemetry,
        fault_plan=fault_plan,
        adaptation=adaptation,
        resilience=resilience,
    )


def run_fixed(
    workload: Workload,
    frequency_mhz: float,
    config: ExperimentConfig,
    seed_offset: int = 0,
    telemetry: TelemetryRecorder | None = None,
) -> RunResult:
    """Run a workload pinned at one frequency (paper's reference runs).

    The run *starts* at the pinned frequency too -- otherwise the first
    tick would execute at P0 and bias short characterization runs.
    """
    return run_governed(
        workload,
        GovernorSpec.fixed(frequency_mhz),
        config,
        seed_offset=seed_offset,
        initial_frequency_mhz=frequency_mhz,
        telemetry=telemetry,
    )


def median_run(
    workload: Workload,
    governor_factory: GovernorFactory | GovernorSpec,
    config: ExperimentConfig,
    schedule: ConstraintSchedule | None = None,
    telemetry: TelemetryRecorder | None = None,
) -> RunResult:
    """The paper's protocol: ``config.runs`` repetitions, median by time.

    Repetitions are independent cells (seed offsets 100*i), so under a
    parallel :func:`repro.exec.open_session` they fan out over workers;
    the median pick happens on the collected results either way.
    """
    if config.runs < 1:
        raise ExperimentError("need at least one run")
    spec = as_governor_spec(governor_factory)
    cells = [
        RunCell(
            workload=workload,
            governor=spec,
            seed_offset=100 * i,
            schedule=schedule,
            group=workload.name,
            rep=i,
        )
        for i in range(config.runs)
    ]
    if telemetry is not None:
        # An explicit recorder bypasses the session seam (ambient
        # recorders flow through execute_cells unchanged).
        results = [
            execute_cell(cell, config, telemetry=telemetry)
            for cell in cells
        ]
    else:
        results = execute_cells(cells, config)
    return pick_median(results)


def pick_median(results: list[RunResult]) -> RunResult:
    """The median-duration result (paper §IV's selection rule)."""
    ordered = sorted(results, key=lambda r: r.duration_s)
    return ordered[len(ordered) // 2]


def spec_suite(config: ExperimentConfig) -> tuple[Workload, ...]:
    """The SPEC CPU2000 suite (unscaled; runs apply ``config.scale``)."""
    return default_registry().spec_suite()
