"""The paper's measurement protocol: median-of-N selection.

The paper's protocol: "To account for the variability in workload
execution times, we employ the standard SPEC approach of executing three
times and reporting data from the run with the median execution time"
(§IV).  :func:`median_run` implements that; single-run mode (``runs=1``)
is the fast default for benchmarks since the simulator's variance is
small and seeded.

Everything else this module used to host now lives in :mod:`repro.exec`:
runs are described declaratively (:class:`~repro.exec.RunCell` +
:class:`~repro.exec.GovernorSpec`), configured by
:class:`~repro.exec.ExperimentConfig`, and executed through
:func:`~repro.exec.execute_cell` or :func:`~repro.exec.open_session`.
The historical names (``run_governed``, ``run_fixed``, the
``ExperimentConfig``/``GovernorSpec``/``RunCell`` aliases and the model
caches) are importable for one more release through deprecation stubs
that emit a pointed :class:`DeprecationWarning`; they will be removed.
"""

from __future__ import annotations

import warnings

from repro.core.controller import RunResult
from repro.core.limits import ConstraintSchedule
from repro.errors import ExperimentError
from repro.exec.core import execute_cell
from repro.exec.plan import (
    ExperimentConfig as _ExperimentConfig,
    GovernorFactory as _GovernorFactory,
    GovernorSpec as _GovernorSpec,
    RunCell as _RunCell,
    as_governor_spec as _as_governor_spec,
)
from repro.exec.session import execute_cells
from repro.telemetry.recorder import TelemetryRecorder
from repro.workloads.base import Workload
from repro.workloads.registry import default_registry

__all__ = [
    "median_run",
    "pick_median",
    "spec_suite",
]


def median_run(
    workload: Workload,
    governor_factory,
    config: _ExperimentConfig,
    schedule: ConstraintSchedule | None = None,
    telemetry: TelemetryRecorder | None = None,
) -> RunResult:
    """The paper's protocol: ``config.runs`` repetitions, median by time.

    Repetitions are independent cells (seed offsets 100*i), so under a
    parallel :func:`repro.exec.open_session` they fan out over workers;
    the median pick happens on the collected results either way.
    """
    if config.runs < 1:
        raise ExperimentError("need at least one run")
    spec = _as_governor_spec(governor_factory)
    cells = [
        _RunCell(
            workload=workload,
            governor=spec,
            seed_offset=100 * i,
            schedule=schedule,
            group=workload.name,
            rep=i,
        )
        for i in range(config.runs)
    ]
    if telemetry is not None:
        # An explicit recorder bypasses the session seam (ambient
        # recorders flow through execute_cells unchanged).
        results = [
            execute_cell(cell, config, telemetry=telemetry)
            for cell in cells
        ]
    else:
        results = execute_cells(cells, config)
    return pick_median(results)


def pick_median(results: list[RunResult]) -> RunResult:
    """The median-duration result (paper §IV's selection rule)."""
    ordered = sorted(results, key=lambda r: r.duration_s)
    return ordered[len(ordered) // 2]


def spec_suite(config: _ExperimentConfig) -> tuple[Workload, ...]:
    """The SPEC CPU2000 suite (unscaled; runs apply ``config.scale``)."""
    return default_registry().spec_suite()


# -- deprecation stubs (one release; module __getattr__) --------------------


def _run_governed(
    workload,
    governor_factory,
    config,
    schedule=None,
    seed_offset=0,
    initial_frequency_mhz=None,
    telemetry=None,
    fault_plan=None,
    resilience=None,
    adaptation=None,
):
    cell = _RunCell(
        workload=workload,
        governor=_as_governor_spec(governor_factory),
        seed_offset=seed_offset,
        schedule=schedule,
        initial_frequency_mhz=initial_frequency_mhz,
    )
    return execute_cell(
        cell,
        config,
        telemetry=telemetry,
        fault_plan=fault_plan,
        adaptation=adaptation,
        resilience=resilience,
    )


def _run_fixed(
    workload, frequency_mhz, config, seed_offset=0, telemetry=None
):
    return _run_governed(
        workload,
        _GovernorSpec.fixed(frequency_mhz),
        config,
        seed_offset=seed_offset,
        initial_frequency_mhz=frequency_mhz,
        telemetry=telemetry,
    )


def _cached_model(seed=0):
    from repro.exec.cache import trained_power_model

    return trained_power_model(seed=seed)


def _cached_worst_case(scale=3.0, seed=0):
    from repro.exec.cache import worst_case_power_table

    return worst_case_power_table(scale=scale, seed=seed)


#: name -> (replacement hint, object).  Everything here is a pure
#: re-export or shim over :mod:`repro.exec`; the objects are identical,
#: only the import path is deprecated.
_DEPRECATED = {
    "ExperimentConfig": ("repro.exec.ExperimentConfig", _ExperimentConfig),
    "GovernorFactory": ("repro.exec.GovernorFactory", _GovernorFactory),
    "GovernorSpec": ("repro.exec.GovernorSpec", _GovernorSpec),
    "RunCell": ("repro.exec.RunCell", _RunCell),
    "as_governor_spec": ("repro.exec.as_governor_spec", _as_governor_spec),
    "trained_power_model": (
        "repro.exec.cache.trained_power_model",
        _cached_model,
    ),
    "worst_case_power_table": (
        "repro.exec.cache.worst_case_power_table",
        _cached_worst_case,
    ),
    "run_governed": (
        "repro.exec.execute_cell with a RunCell "
        "(or open_session().run(...))",
        _run_governed,
    ),
    "run_fixed": (
        "repro.exec.execute_cell with GovernorSpec.fixed(...) "
        "and initial_frequency_mhz",
        _run_fixed,
    ),
}


def __getattr__(name: str):
    try:
        replacement, obj = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"repro.experiments.runner.{name} is deprecated and will be "
        f"removed in the next release; use {replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return obj
