"""Fig. 11: per-workload performance reduction by PS floor setting.

The mirror of Fig. 10: memory-bound workloads lose the least
performance, core-bound the most, nearly duplicating the energy-savings
ordering.  The paper's model-error finding is reproduced here too:

* with the primary exponent (0.81), **art and mcf violate** their floors
  (art 42.2% and mcf 27.7% reduction at the 80% floor in the paper);
* re-running with the alternative exponent (0.59) repairs mcf (17.9%)
  and brings art close (26.3%), because the in-between (L2-resident)
  region of the training set is sparse (§IV-B2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.report import TextTable
from repro.core.models.performance import PerformanceModel
from repro.exec.plan import GovernorSpec
from repro.experiments.metrics import performance_reduction
from repro.exec.plan import ExperimentConfig
from repro.experiments.suite import run_suite_fixed, run_suite_governed
from repro.experiments.fig9_ps_suite import FLOORS


@dataclass(frozen=True)
class Fig11Result:
    """reduction[floor][benchmark] for both exponents + the 600 MHz bound."""

    reduction: Mapping[float, Mapping[str, float]]
    reduction_alt: Mapping[float, Mapping[str, float]]
    bound_reduction: Mapping[str, float]

    def violations(
        self, floor: float, alternative: bool = False
    ) -> Mapping[str, float]:
        """Benchmarks whose reduction exceeds the allowed loss at a floor."""
        source = self.reduction_alt if alternative else self.reduction
        allowed = 1.0 - floor
        return {
            name: value
            for name, value in source[floor].items()
            if value > allowed + 0.005
        }

    def sorted_names(self) -> tuple[str, ...]:
        """Benchmarks by ascending 600 MHz reduction (paper's x order)."""
        return tuple(
            sorted(self.bound_reduction, key=lambda n: self.bound_reduction[n])
        )


def run(
    config: ExperimentConfig | None = None,
    floors: Sequence[float] = FLOORS,
) -> Fig11Result:
    """Regenerate Fig. 11 with both Eq. 3 exponents."""
    config = config or ExperimentConfig(scale=0.25)
    fullspeed = run_suite_fixed(2000.0, config)
    slowest = run_suite_fixed(600.0, config)
    order = list(fullspeed)

    def sweep(model: PerformanceModel) -> dict[float, dict[str, float]]:
        out: dict[float, dict[str, float]] = {}
        for floor in floors:
            governed = run_suite_governed(
                GovernorSpec.ps(floor, performance_model=model), config
            )
            out[floor] = {
                name: performance_reduction(governed[name], fullspeed[name])
                for name in order
            }
        return out

    primary = sweep(PerformanceModel.paper_primary())
    alternative = sweep(PerformanceModel.paper_alternative())
    bound = {
        name: performance_reduction(slowest[name], fullspeed[name])
        for name in order
    }
    return Fig11Result(
        reduction=primary, reduction_alt=alternative, bound_reduction=bound
    )


def render(result: Fig11Result) -> str:
    """Reduction matrix plus the violation story for both exponents."""
    floors = sorted(result.reduction, reverse=True)
    table = TextTable(
        ["benchmark", *(f"{100 * f:.0f}%" for f in floors), "600MHz"]
    )
    for name in result.sorted_names():
        table.add_row(
            name,
            *(result.reduction[floor][name] for floor in floors),
            result.bound_reduction[name],
        )
    lines = [
        "Fig. 11 -- performance reduction per workload by PS floor "
        "(exponent 0.81)",
        table.render(),
    ]
    for floor in floors:
        primary = result.violations(floor)
        alternative = result.violations(floor, alternative=True)
        if primary or alternative:
            primary_str = (
                ", ".join(
                    f"{n}={100 * v:.1f}%" for n, v in sorted(primary.items())
                )
                or "none"
            )
            alt_str = (
                ", ".join(
                    f"{n}={100 * v:.1f}%"
                    for n, v in sorted(alternative.items())
                )
                or "none"
            )
            lines.append(
                f"floor {100 * floor:.0f}%: violations e=0.81: {primary_str}"
                f" | e=0.59: {alt_str}"
            )
    lines.append(
        "(paper at 80%: art 42.2%, mcf 27.7% with e=0.81; "
        "mcf 17.9%, art 26.3% with e=0.59)"
    )
    return "\n".join(lines)
