"""Corpus characterization: the scenario traces on the paper's map.

Companion to :mod:`repro.experiments.characterization`: where that
module tabulates the 26 SPEC models, this one runs the trace corpus
(bursty web serving, batch ETL, inference serving, idle-heavy desktop)
through the same Eq. 3 classifier and frequency-sensitivity analysis,
so governor results on realistic scenario shapes can be read against
the same axes as the paper's workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec.plan import ExperimentConfig
from repro.traces.characterize import (
    TraceCharacterization,
    characterize_traces,
    render_characterization,
)
from repro.traces.corpus import CORPUS_FAMILIES, generate_corpus


@dataclass(frozen=True)
class CorpusCharacterizationResult:
    """Characterizations for every corpus scenario, Fig. 7-ordered."""

    rows: tuple[TraceCharacterization, ...]

    def by_family(self, family: str) -> tuple[TraceCharacterization, ...]:
        return tuple(c for c in self.rows if c.family == family)

    def memory_class(self) -> tuple[str, ...]:
        return tuple(sorted(c.name for c in self.rows if c.memory_bound))


def run(config: ExperimentConfig | None = None) -> CorpusCharacterizationResult:
    """Characterize the default-seed corpus (analytic; no governed runs)."""
    seed = config.seed if config is not None else 0
    corpus = generate_corpus(seed=seed)
    return CorpusCharacterizationResult(
        rows=characterize_traces(corpus.values())
    )


def render(result: CorpusCharacterizationResult) -> str:
    """The corpus characterization table plus a family summary."""
    families = ", ".join(
        f"{family} ({len(names)})"
        for family, names in sorted(CORPUS_FAMILIES.items())
    )
    return (
        render_characterization(result.rows)
        + f"\nfamilies: {families}"
    )
