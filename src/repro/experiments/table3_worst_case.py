"""Table III: measured power vs frequency for the worst-case workload.

The L2-resident FMA loop is the highest-power MS-Loop; its per-p-state
measured power is the provisioning basis for static clocking.  This
experiment measures it on the simulated rig and compares against the
paper's Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.report import TextTable
from repro.exec import ExperimentConfig, RunCell, execute_cell
from repro.workloads.microbenchmarks import worst_case_workload

#: The paper's Table III (FMA-256KB measured power, watts).
PAPER_TABLE_III: Mapping[float, float] = {
    600.0: 3.86,
    800.0: 5.21,
    1000.0: 6.56,
    1200.0: 8.16,
    1400.0: 10.16,
    1600.0: 12.46,
    1800.0: 15.29,
    2000.0: 17.78,
}


@dataclass(frozen=True)
class Table3Result:
    """Measured worst-case power per frequency."""

    measured_w: Mapping[float, float]

    def deviation(self, frequency_mhz: float) -> float:
        """Relative |measured - paper| / paper at one frequency."""
        paper = PAPER_TABLE_III[frequency_mhz]
        return abs(self.measured_w[frequency_mhz] - paper) / paper


def run(config: ExperimentConfig | None = None) -> Table3Result:
    """Measure FMA-256KB at every p-state."""
    config = config or ExperimentConfig(scale=3.0)
    workload = worst_case_workload()
    measured = {
        pstate.frequency_mhz: execute_cell(
            RunCell.fixed(workload, pstate.frequency_mhz), config
        ).mean_power_w
        for pstate in config.table
    }
    return Table3Result(measured_w=measured)


def render(result: Table3Result) -> str:
    """Side-by-side measured vs published worst-case power."""
    table = TextTable(["MHz", "measured W", "paper W", "dev%"])
    for freq in sorted(result.measured_w):
        table.add_row(
            f"{freq:.0f}",
            result.measured_w[freq],
            PAPER_TABLE_III[freq],
            100 * result.deviation(freq),
        )
    return (
        "Table III -- worst-case (FMA-256KB) power vs frequency\n"
        + table.render()
    )
