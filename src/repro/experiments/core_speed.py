"""Core loop throughput: the batched tick kernel vs the scalar loop.

Not a paper figure -- an engineering experiment for the reproduction
itself.  Campaign-scale sweeps (Fig. 9's 26 benchmarks x 4 floors x 3
seeds) are bounded by how fast the monitor->estimate->control loop
ticks, so this experiment measures exactly that: simulated control
ticks per wall-clock second under the historical scalar loop and under
the fused block kernel (:mod:`repro.core.blockloop`), on the same cell,
with a digest check that the two produced bit-identical results.

A block-size sweep shows where the batching win saturates: most of the
overhead removed is per-tick Python dispatch, so throughput climbs
steeply up to a few dozen ticks per block and flattens once per-block
fixed costs are amortized.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro.analysis.report import TextTable
from repro.checkpoint.digest import run_result_digest
from repro.core import blockloop
from repro.exec import (
    ExperimentConfig,
    GovernorSpec,
    RunCell,
    RunPlan,
    execute_cell,
    open_session,
)

#: Block sizes swept for the sensitivity table (the production kernel
#: uses ``blockloop.BLOCK_TICKS``).
BLOCK_SIZES = (1, 8, 32, 128, 512)

#: The measured cell: PM on ammp -- the paper's trace workload, with
#: the governor archetype whose decide path is the most expensive.
WORKLOAD = "ammp"
LIMIT_W = 14.5


@dataclass(frozen=True)
class CoreSpeedResult:
    """Tick throughput of both loop modes plus the batching sweep."""

    ticks: int
    scalar_ticks_per_s: float
    fast_ticks_per_s: float
    #: run_result_digest equality between the two modes (must be True).
    bit_identical: bool
    #: block size -> ticks/s under the fused kernel.
    block_sensitivity: Mapping[int, float]

    @property
    def speedup(self) -> float:
        return self.fast_ticks_per_s / self.scalar_ticks_per_s


def _cell() -> RunCell:
    return RunCell(
        workload=WORKLOAD,
        governor=GovernorSpec.pm(LIMIT_W, power_model="paper"),
    )


def _timed(config: ExperimentConfig, repeats: int = 3):
    """Best-of-N wall time for one cell; returns (result, seconds)."""
    cell = _cell()
    result = execute_cell(cell, config)  # warm model/template caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = execute_cell(cell, config)
        best = min(best, time.perf_counter() - start)
    return result, best


def run(
    config: ExperimentConfig | None = None, repeats: int = 3
) -> CoreSpeedResult:
    """Measure scalar vs batched tick throughput on one PM cell."""
    config = config or ExperimentConfig(scale=16.0, seed=0)
    saved_fast, saved_block = blockloop.FAST_LOOP, blockloop.BLOCK_TICKS
    try:
        blockloop.FAST_LOOP = False
        scalar_result, scalar_s = _timed(config, repeats)
        ticks = round(scalar_result.duration_s / 0.01)

        blockloop.FAST_LOOP = True
        sensitivity = {}
        for block in BLOCK_SIZES:
            blockloop.BLOCK_TICKS = block
            fast_result, fast_s = _timed(config, repeats)
            sensitivity[block] = ticks / fast_s
        fast_rate = sensitivity[saved_block]
        identical = run_result_digest(fast_result) == run_result_digest(
            scalar_result
        )
    finally:
        blockloop.FAST_LOOP = saved_fast
        blockloop.BLOCK_TICKS = saved_block
    return CoreSpeedResult(
        ticks=ticks,
        scalar_ticks_per_s=ticks / scalar_s,
        fast_ticks_per_s=fast_rate,
        bit_identical=identical,
        block_sensitivity=sensitivity,
    )


# -- campaign-scale measurement (the BENCH_core_speed.json record) ----------


def campaign(
    scale: float = 1.0, seeds: tuple[int, ...] = (0, 100, 200)
) -> dict[str, Any]:
    """Scalar vs batched tick throughput on the Fig. 9 campaign.

    Runs the paper's Fig. 9 sweep shape -- the SPEC suite at the four
    PS floors, three median-protocol reps each -- serially under both
    loop modes, with ``controller._run_loop`` wrapped so only the
    monitor->estimate->control loop is on the clock (workload
    generation, model training and digesting are identical in both
    modes and excluded from the throughput ratio).  Per-cell digests
    must match bit for bit.
    """
    from repro.core import controller
    from repro.experiments.fig9_ps_suite import FLOORS
    from repro.experiments.runner import spec_suite

    config = ExperimentConfig(scale=scale, seed=0)
    plan = RunPlan.sweep(
        (w.name for w in spec_suite(config)),
        [GovernorSpec.ps(floor) for floor in FLOORS],
        config,
        seeds=seeds,
    )

    def timed_pass(fast: bool):
        blockloop.FAST_LOOP = fast
        loop_s = [0.0]
        original = controller._run_loop

        def timed(st, tel, checkpointer=None, resumed=False):
            start = time.perf_counter()
            try:
                return original(
                    st, tel, checkpointer=checkpointer, resumed=resumed
                )
            finally:
                loop_s[0] += time.perf_counter() - start

        controller._run_loop = timed
        try:
            wall = time.perf_counter()
            with open_session() as session:
                results = session.run_plan(plan)
            wall = time.perf_counter() - wall
        finally:
            controller._run_loop = original
        digests = [run_result_digest(r) for r in results]
        ticks = sum(round(r.duration_s / 0.01) for r in results)
        return digests, ticks, loop_s[0], wall

    saved = blockloop.FAST_LOOP
    try:
        s_digests, ticks, s_loop, s_wall = timed_pass(fast=False)
        f_digests, _, f_loop, f_wall = timed_pass(fast=True)
    finally:
        blockloop.FAST_LOOP = saved
    return {
        "cells": len(plan),
        "scale": scale,
        "ticks": ticks,
        "scalar_loop_s": round(s_loop, 3),
        "fast_loop_s": round(f_loop, 3),
        "scalar_wall_s": round(s_wall, 3),
        "fast_wall_s": round(f_wall, 3),
        "scalar_ticks_per_s": round(ticks / s_loop),
        "fast_ticks_per_s": round(ticks / f_loop),
        "speedup": round(s_loop / f_loop, 2),
        "wall_speedup": round(s_wall / f_wall, 2),
        "bit_identical": f_digests == s_digests,
    }


def kill_resume(scale: float = 0.6, interval_ticks: int = 7) -> dict[str, Any]:
    """One real SIGKILL mid-block + resume, checked against scalar.

    A checkpointed child runs under the batched kernel (checkpoint
    cadence well below ``BLOCK_TICKS``, so the durable record the kill
    leaves behind lands in the middle of a fused block), gets a raw
    SIGKILL near the midpoint, and is resumed; the resumed digest must
    match a reference child forced onto the scalar loop via
    ``REPRO_SCALAR_LOOP=1``.
    """
    from repro.checkpoint.journal import JOURNAL_FILENAME
    from repro.experiments.chaos_resume import (
        DEFAULT_CHILD_DEADLINE_S,
        _python_cmd,
        _read_digest,
        _run_flags,
        _wait_and_kill,
    )

    config = ExperimentConfig(scale=scale, seed=0)
    workdir = tempfile.mkdtemp(prefix="repro-core-speed-")
    try:
        ref_json = os.path.join(workdir, "scalar.json")
        subprocess.run(
            _python_cmd(_run_flags(config) + ["--result-json", ref_json]),
            env=dict(os.environ, REPRO_SCALAR_LOOP="1"),
            stdout=subprocess.DEVNULL,
            check=True,
            timeout=DEFAULT_CHILD_DEADLINE_S,
        )
        reference = _read_digest(ref_json)
        target = int(reference["n_samples"]) // 2

        run_dir = os.path.join(workdir, "fast")
        out_json = os.path.join(workdir, "fast.json")
        child = subprocess.Popen(
            _python_cmd(
                _run_flags(config)
                + ["--checkpoint", run_dir,
                   "--checkpoint-interval", str(interval_ticks),
                   "--result-json", out_json]
            ),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        killed, newest = _wait_and_kill(
            child,
            os.path.join(run_dir, JOURNAL_FILENAME),
            target,
            DEFAULT_CHILD_DEADLINE_S,
        )
        subprocess.run(
            _python_cmd(["--resume", run_dir, "--result-json", out_json]),
            stdout=subprocess.DEVNULL,
            check=True,
            timeout=DEFAULT_CHILD_DEADLINE_S,
        )
        return {
            "total_ticks": int(reference["n_samples"]),
            "target_tick": target,
            "killed_after_tick": newest,
            "killed": killed,
            "identical": _read_digest(out_json) == reference,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def render(result: CoreSpeedResult) -> str:
    """Throughput summary plus the block-size sensitivity table."""
    table = TextTable(["loop", "ticks/s"])
    table.add_row("scalar (per-tick)", round(result.scalar_ticks_per_s))
    table.add_row(
        f"batched (K={blockloop.BLOCK_TICKS})",
        round(result.fast_ticks_per_s),
    )
    sweep = TextTable(["block size K", "ticks/s", "vs scalar"])
    for block, rate in sorted(result.block_sensitivity.items()):
        sweep.add_row(
            str(block), round(rate),
            f"{rate / result.scalar_ticks_per_s:.1f}x",
        )
    verdict = (
        "digests bit-identical"
        if result.bit_identical
        else "DIGEST MISMATCH -- batched loop is broken"
    )
    return (
        f"Core loop throughput -- PM on {WORKLOAD} ({result.ticks} ticks)\n"
        + table.render()
        + f"\nspeedup: {result.speedup:.1f}x ({verdict})\n\n"
        + "block-size sensitivity:\n"
        + sweep.render()
    )
