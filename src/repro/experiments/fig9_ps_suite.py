"""Fig. 9: suite performance reduction and energy savings vs PS floor.

PS runs the full suite at floors 80/60/40/20%; the paper's checks:

* floors are respected at the suite level (e.g. at the 60% floor the
  loss is 30.8%, under the allowed 40%);
* the headline trade-off: ~19.2% energy savings for ~10% performance
  reduction at the 80% floor;
* the 600 MHz sweep bounds the achievable savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from repro.analysis.report import TextTable
from repro.core.models.performance import PerformanceModel
from repro.exec.plan import GovernorSpec
from repro.experiments.metrics import (
    suite_energy_savings,
    suite_performance_reduction,
)
from repro.exec.plan import ExperimentConfig
from repro.experiments.suite import run_suite_fixed, run_suite_governed

#: The paper's four floors.
FLOORS: Tuple[float, ...] = (0.80, 0.60, 0.40, 0.20)


@dataclass(frozen=True)
class Fig9Result:
    """Suite reduction/savings per floor, plus the 600 MHz bound."""

    reduction: Mapping[float, float]
    savings: Mapping[float, float]
    bound_reduction: float
    bound_savings: float

    def floor_respected(self, floor: float) -> bool:
        """Whether suite-level loss stayed within the allowed budget."""
        return self.reduction[floor] <= (1.0 - floor) + 1e-9


def run(
    config: ExperimentConfig | None = None,
    floors: Sequence[float] = FLOORS,
    model: PerformanceModel | None = None,
) -> Fig9Result:
    """Regenerate Fig. 9 (optionally with the 0.59-exponent model)."""
    config = config or ExperimentConfig(scale=0.25)
    model = model or PerformanceModel.paper_primary()

    fullspeed = run_suite_fixed(2000.0, config)
    slowest = run_suite_fixed(600.0, config)
    order = list(fullspeed)

    reduction: dict[float, float] = {}
    savings: dict[float, float] = {}
    for floor in floors:
        governed = run_suite_governed(
            GovernorSpec.ps(floor, performance_model=model), config
        )
        reduction[floor] = suite_performance_reduction(
            [governed[n] for n in order], [fullspeed[n] for n in order]
        )
        savings[floor] = suite_energy_savings(
            [governed[n] for n in order], [fullspeed[n] for n in order]
        )
    return Fig9Result(
        reduction=reduction,
        savings=savings,
        bound_reduction=suite_performance_reduction(
            [slowest[n] for n in order], [fullspeed[n] for n in order]
        ),
        bound_savings=suite_energy_savings(
            [slowest[n] for n in order], [fullspeed[n] for n in order]
        ),
    )


def render(result: Fig9Result) -> str:
    """Reduction/savings rows per floor plus the 600 MHz bound."""
    table = TextTable(
        ["floor", "allowed loss", "perf reduction", "energy savings", "ok"]
    )
    for floor in sorted(result.reduction, reverse=True):
        table.add_row(
            f"{100 * floor:.0f}%",
            1.0 - floor,
            result.reduction[floor],
            result.savings[floor],
            "yes" if result.floor_respected(floor) else "VIOLATED",
        )
    table.add_row(
        "600 MHz", "-", result.bound_reduction, result.bound_savings, "-"
    )
    return (
        "Fig. 9 -- suite performance reduction & energy savings vs PS floor\n"
        + table.render()
        + "\n(paper: 19.2% savings at ~10% reduction for the 80% floor; "
        "30.8% loss at the 60% floor)"
    )
