"""Fig. 6: suite performance vs power limit, dynamic vs static clocking.

For each of the eight power limits the suite runs under PM (dynamic
clocking) and at the Table IV static frequency; normalized performance
is total unconstrained time / total constrained time.  The paper's
claims checked here:

* dynamic clocking >= static clocking at every limit;
* the gap grows as the limit tightens (static must provision for the
  worst case; PM exploits per-workload slack);
* PM enforces the limit for every benchmark except galgel, which in the
  worst case spends ~10% of its runtime above the limit (13.5 W being
  the worst in the paper, §IV-A2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.analysis.report import TextTable
from repro.core.controller import RunResult
from repro.core.governors.static import static_frequency_for_limit
from repro.exec import ExperimentConfig, GovernorSpec
from repro.exec.cache import worst_case_power_table
from repro.experiments.metrics import suite_normalized_performance
from repro.experiments.suite import run_suite_fixed, run_suite_governed
from repro.experiments.table4_static_freq import POWER_LIMITS_W


@dataclass(frozen=True)
class Fig6Result:
    """Normalized performance per limit plus violation accounting."""

    dynamic_performance: Mapping[float, float]
    static_performance: Mapping[float, float]
    #: (limit, benchmark) -> fraction of run time the 100 ms moving
    #: average exceeded the limit.
    violations: Mapping[Tuple[float, str], float]

    def worst_violation(self) -> Tuple[float, str, float]:
        """(limit, benchmark, fraction) of the worst violator."""
        (limit, name), fraction = max(
            self.violations.items(), key=lambda kv: kv[1]
        )
        return limit, name, fraction

    def violators(self, threshold: float = 0.02) -> tuple[str, ...]:
        """Benchmarks exceeding ``threshold`` violation at any limit."""
        names = {
            name
            for (_, name), fraction in self.violations.items()
            if fraction > threshold
        }
        return tuple(sorted(names))


def run(
    config: ExperimentConfig | None = None,
    limits: Sequence[float] = POWER_LIMITS_W,
) -> Fig6Result:
    """Regenerate Fig. 6 (plus the §IV-A2 violation analysis)."""
    config = config or ExperimentConfig(scale=0.25)
    worst_case = worst_case_power_table(seed=config.seed)

    unconstrained = run_suite_fixed(2000.0, config)

    # Static runs: one suite sweep per distinct static frequency.
    static_freqs = {
        limit: static_frequency_for_limit(limit, worst_case)
        for limit in limits
    }
    fixed_cache: Dict[float, Dict[str, RunResult]] = {}
    for freq in set(static_freqs.values()):
        fixed_cache[freq] = run_suite_fixed(freq, config)

    dynamic_perf: Dict[float, float] = {}
    static_perf: Dict[float, float] = {}
    violations: Dict[Tuple[float, str], float] = {}
    for limit in limits:
        governed = run_suite_governed(GovernorSpec.pm(limit), config)
        order = list(governed)
        dynamic_perf[limit] = suite_normalized_performance(
            [governed[n] for n in order], [unconstrained[n] for n in order]
        )
        static_runs = fixed_cache[static_freqs[limit]]
        static_perf[limit] = suite_normalized_performance(
            [static_runs[n] for n in order], [unconstrained[n] for n in order]
        )
        for name, result in governed.items():
            violations[(limit, name)] = result.violation_fraction(limit)

    return Fig6Result(
        dynamic_performance=dynamic_perf,
        static_performance=static_perf,
        violations=violations,
    )


def render(result: Fig6Result) -> str:
    """The Fig. 6 series plus the violation summary."""
    table = TextTable(["limit W", "PM dynamic", "static"])
    for limit in sorted(result.dynamic_performance, reverse=True):
        table.add_row(
            f"{limit:.1f}",
            result.dynamic_performance[limit],
            result.static_performance[limit],
        )
    worst_limit, worst_name, worst_fraction = result.worst_violation()
    violators = ", ".join(result.violators()) or "none"
    return (
        "Fig. 6 -- normalized performance vs power limit\n"
        + table.render()
        + f"\nbenchmarks with >2% violation time: {violators}"
        + (
            f"\nworst violator: {worst_name} at {worst_limit:.1f} W "
            f"({100 * worst_fraction:.1f}% of runtime; paper: galgel "
            "~10% at 13.5 W)"
        )
    )
