"""Suite characterization table: the data behind the paper's §IV-A2
explanations.

The paper explains each benchmark's PM/PS behaviour from its counter
signature (DCU miss-outstanding rates, decode rates, frequency
sensitivity).  This experiment tabulates those signatures for the whole
suite so every qualitative claim in the text has a number behind it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.report import TextTable
from repro.exec.plan import ExperimentConfig
from repro.platform.calibration import (
    WorkloadSignature,
    ps_choice_for_signature,
    suite_signatures,
)


@dataclass(frozen=True)
class CharacterizationResult:
    """Per-workload signatures plus the PS decisions they imply."""

    signatures: Mapping[str, WorkloadSignature]

    def memory_class(self) -> tuple[str, ...]:
        """Workloads Eq. 3 classifies as memory-bound at 2 GHz."""
        return tuple(
            sorted(
                name
                for name, s in self.signatures.items()
                if s.classified_memory_bound
            )
        )

    def frequency_sensitivity_order(self) -> tuple[str, ...]:
        """Names sorted by 1800->2000 sensitivity (the Fig. 7 x-axis)."""
        return tuple(
            sorted(
                self.signatures,
                key=lambda n: self.signatures[n].scaling[1800.0],
                reverse=True,
            )
        )


def run(config: ExperimentConfig | None = None) -> CharacterizationResult:
    """Compute analytic signatures for the SPEC suite."""
    del config  # analytic: no runs, no scale; kept for API uniformity
    return CharacterizationResult(signatures=suite_signatures())


def render(result: CharacterizationResult) -> str:
    """The characterization table, Fig. 7-ordered."""
    table = TextTable(
        ["benchmark", "DPC", "IPC", "DCU/IPC", "class", "P@2G W",
         "perf@1800", "perf@800", "PS@80%"]
    )
    for name in result.frequency_sensitivity_order():
        s = result.signatures[name]
        table.add_row(
            name, s.dpc, s.ipc, s.dcu_per_ipc,
            "mem" if s.classified_memory_bound else "core",
            s.mean_power_w,
            s.scaling[1800.0], s.scaling[800.0],
            f"{ps_choice_for_signature(s, 0.8):.0f}",
        )
    memory = ", ".join(result.memory_class())
    return (
        "SPEC CPU2000 characterization on the simulated Pentium M 755\n"
        + table.render()
        + f"\nEq. 3 memory class at 2 GHz: {memory}"
    )
