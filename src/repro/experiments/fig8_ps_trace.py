"""Fig. 8: PowerSave on ammp with an 80% performance floor.

The paper's PS trace: during ammp's memory-bound regions PS drops the
frequency sharply (performance there barely depends on it) and restores
it in compute-bound regions, keeping overall performance above 80% of
peak.  The reproduction reports the frequency/power traces, the phase
residency, and the achieved performance vs the floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import TextTable, format_series
from repro.core.controller import RunResult
from repro.exec import (
    ExperimentConfig,
    GovernorSpec,
    RunCell,
    execute_cell,
)
from repro.experiments.metrics import energy_savings, performance_reduction
from repro.workloads.registry import get_workload

#: The floor shown in the paper's figure.
FLOOR = 0.80


@dataclass(frozen=True)
class Fig8Result:
    """PS run, full-speed reference, and derived metrics."""

    powersave: RunResult
    fullspeed: RunResult

    @property
    def reduction(self) -> float:
        """Achieved performance reduction (must stay below 1 - floor)."""
        return performance_reduction(self.powersave, self.fullspeed)

    @property
    def savings(self) -> float:
        """Measured energy savings vs full speed."""
        return energy_savings(self.powersave, self.fullspeed)


def run(config: ExperimentConfig | None = None) -> Fig8Result:
    """Regenerate Fig. 8 (full trace kept)."""
    config = config or ExperimentConfig(scale=1.0, keep_trace=True)
    workload = get_workload("ammp")
    fullspeed = execute_cell(RunCell.fixed(workload, 2000.0), config)
    powersave = execute_cell(
        RunCell(workload=workload, governor=GovernorSpec.ps(FLOOR)), config
    )
    return Fig8Result(powersave=powersave, fullspeed=fullspeed)


def render(result: Fig8Result) -> str:
    """Summary plus downsampled traces."""
    table = TextTable(["metric", "value"])
    table.add_row("floor", FLOOR)
    table.add_row("performance reduction", result.reduction)
    table.add_row("energy savings", result.savings)
    table.add_row("PS time s", result.powersave.duration_s)
    table.add_row("full-speed time s", result.fullspeed.duration_s)
    residency = ", ".join(
        f"{freq:.0f}:{seconds:.2f}"
        for freq, seconds in sorted(result.powersave.residency_s.items())
    )
    table.add_row("residency (MHz: s)", residency)
    lines = [
        "Fig. 8 -- PowerSave on ammp with an 80% performance floor",
        table.render(),
    ]
    if result.powersave.trace:
        lines.append(
            format_series(
                [(r.time_s, r.frequency_mhz) for r in result.powersave.trace],
                "t", "MHz",
            )
        )
        lines.append(
            format_series(
                [
                    (r.time_s, r.measured_power_w)
                    for r in result.powersave.trace
                ],
                "t", "W",
            )
        )
    return "\n".join(lines)
