"""Chaos drill for the campaign engine: SIGKILL, resume, quarantine.

The campaign layer's three guarantees (README "Resilient campaigns")
are only worth their documentation if they survive a real kill and a
real poison cell.  This drill stages both:

**Part A -- kill and resume.**  A ``repro-power campaign run`` child
(its own session, so the whole process group -- coordinator and
workers -- dies together) executes a multi-cell sweep against a fresh
store.  The harness polls the store's object directory and SIGKILLs
the group the moment the campaign is provably *mid-flight* (some, but
not all, objects durable).  A second, in-process invocation must then
resume from the store: every pre-kill object served as a verified
cache hit, only the remainder executed, nothing lost.  Each surviving
object is additionally re-executed serially and compared by
:func:`~repro.checkpoint.digest.run_result_digest` -- cache hits are
bit-identical to a fresh execution, not just plausibly similar.

**Part B -- poison quarantine.**  One plan carries two deterministic
poison cells -- a *transient* one (an injected hook that raises on
every attempt, exhausting the bounded retry budget) and a *permanent*
one (a ``trace:`` workload pointing at a file that does not exist) --
beside healthy cells.  The campaign must quarantine both with their
failure histories (transient: ``max_attempts`` attempts recorded;
permanent: one attempt, flagged permanent) while every healthy cell
completes, and report the shortfall via ``degraded=True`` instead of
raising.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from typing import Any, List, Mapping

from repro.campaign import ResultStore, cell_digest, run_campaign
from repro.checkpoint.digest import run_result_digest
from repro.errors import DeadlineExceeded
from repro.exec.core import execute_cell
from repro.exec.plan import ExperimentConfig, GovernorSpec, RunCell, RunPlan

#: Workloads x frequencies for the kill-and-resume sweep: enough cells
#: that the store fills over an observable window even though each
#: cell simulates in milliseconds.
_SWEEP_WORKLOADS = (
    "ammp", "applu", "apsi", "art", "bzip2", "crafty", "equake", "mcf",
)
_SWEEP_FREQS_MHZ = (1000.0, 1600.0, 2000.0)

#: Retry budget for the transient poison cell in part B.
_POISON_MAX_ATTEMPTS = 3

#: Cell index the transient-poison hook sabotages (module-level so the
#: hook pickles into spawned workers).
_TRANSIENT_POISON_INDEX = 0

#: Durable objects to wait for before the SIGKILL lands: enough that
#: the bit-identity check covers several survivors, early enough that
#: plenty of the sweep is still unfinished.
_KILL_AFTER_OBJECTS = 3

#: Wall-clock budget for one campaign child.
_CHILD_DEADLINE_S = 300.0

#: Kill cycles attempted before part A concedes the campaign is too
#: fast to catch mid-flight (never observed in practice).
_KILL_TRIES = 3


def _transient_poison_hook(index: int) -> None:
    """Injected per-cell hook: fail every attempt at one fixed index."""
    if index == _TRANSIENT_POISON_INDEX:
        raise RuntimeError("injected transient poison (campaign drill)")


def _sweep_plan(config: ExperimentConfig) -> RunPlan:
    cells = tuple(
        RunCell(workload=workload, governor=GovernorSpec.fixed(freq))
        for workload in _SWEEP_WORKLOADS
        for freq in _SWEEP_FREQS_MHZ
    )
    return RunPlan(config=config, cells=cells)


def _durable_digests(store_dir: str) -> set:
    objects_dir = os.path.join(store_dir, "objects")
    if not os.path.isdir(objects_dir):
        return set()
    return {
        name[: -len(".pkl")]
        for name in os.listdir(objects_dir)
        if name.endswith(".pkl")
    }


def _kill_mid_campaign(
    plan_path: str, store_dir: str
) -> tuple[bool, set]:
    """Run a campaign child; SIGKILL its process group mid-flight.

    Returns ``(killed, digests_durable_at_kill)``.  The kill is a raw
    SIGKILL of the whole group -- coordinator and workers get no
    chance to flush, finalize telemetry, or write anything further.
    """
    total = len(_SWEEP_WORKLOADS) * len(_SWEEP_FREQS_MHZ)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "run",
            "--plan", plan_path, "--store", store_dir,
            "--workers", "1", "--telemetry", "none",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    start = time.monotonic()
    try:
        while proc.poll() is None:
            if time.monotonic() - start > _CHILD_DEADLINE_S:
                raise DeadlineExceeded(
                    f"campaign child ran past {_CHILD_DEADLINE_S:.0f}s"
                )
            durable = _durable_digests(store_dir)
            if _KILL_AFTER_OBJECTS <= len(durable) < total:
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                proc.wait()
                return True, durable
            time.sleep(0.001)
    finally:
        if proc.poll() is None:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    proc.wait()
    return False, _durable_digests(store_dir)


def _part_a(config: ExperimentConfig, workdir: str) -> Mapping[str, Any]:
    plan = _sweep_plan(config)
    digests = [cell_digest(cell, plan) for cell in plan.cells]
    plan_path = os.path.join(workdir, "sweep.json")
    with open(plan_path, "w") as handle:
        handle.write(plan.to_json())

    killed = False
    survivors: set = set()
    store_dir = ""
    for attempt in range(_KILL_TRIES):
        store_dir = os.path.join(workdir, f"store-a{attempt}")
        killed, survivors = _kill_mid_campaign(plan_path, store_dir)
        if killed:
            break

    # Resume in-process against the murdered store.
    store = ResultStore(store_dir)
    result = run_campaign(plan, store, workers=2, backoff_s=0.05)
    cached_digests = {result.digests[i] for i in result.cached}
    executed_digests = {result.digests[i] for i in result.executed}

    # Bit-identity: every object that survived the kill must match a
    # fresh serial execution of the same cell, digest for digest.
    index_of = {digest: i for i, digest in enumerate(digests)}
    identical = 0
    for digest in sorted(survivors):
        fresh = execute_cell(
            plan.cells[index_of[digest]], plan.config, use_ambient=False
        )
        if run_result_digest(fresh) == store.result_digest(digest):
            identical += 1
    return {
        "cells": len(plan.cells),
        "killed": killed,
        "objects_at_kill": len(survivors),
        "resumed": result.resumed,
        "cached_on_resume": len(result.cached),
        "executed_on_resume": len(result.executed),
        "lost": len(result.lost),
        "completed": result.completed,
        "degraded_after_resume": result.degraded,
        "survivors_identical": identical,
        "survivors_total": len(survivors),
        "only_missing_executed": not (executed_digests & survivors),
        "passed": (
            killed
            and result.resumed
            and result.completed == len(plan.cells)
            and not result.degraded
            and survivors <= cached_digests
            and not (executed_digests & survivors)
            and identical == len(survivors)
            and len(result.executed) >= 1
        ),
    }


def _part_b(config: ExperimentConfig, workdir: str) -> Mapping[str, Any]:
    poison_trace = os.path.join(workdir, "missing-poison.csv")
    plan = RunPlan(
        config=config,
        cells=(
            # _TRANSIENT_POISON_INDEX: sabotaged on every attempt.
            RunCell(workload="ammp", governor=GovernorSpec.fixed(1600.0)),
            RunCell(
                workload=f"trace:{poison_trace}",
                governor=GovernorSpec.fixed(1000.0),
            ),
            RunCell(workload="mcf", governor=GovernorSpec.fixed(2000.0)),
            RunCell(workload="equake", governor=GovernorSpec.fixed(1600.0)),
        ),
    )
    store = ResultStore(os.path.join(workdir, "store-b"))
    result = run_campaign(
        plan, store,
        workers=2,
        max_attempts=_POISON_MAX_ATTEMPTS,
        backoff_s=0.02,
        cell_hook=_transient_poison_hook,
    )
    transient = store.quarantine_record(result.digests[0]) or {}
    permanent = store.quarantine_record(result.digests[1]) or {}
    return {
        "cells": len(plan.cells),
        "quarantined": sorted(result.quarantined),
        "completed": result.completed,
        "lost": len(result.lost),
        "degraded": result.degraded,
        "transient_attempts": transient.get("attempts"),
        "transient_permanent": transient.get("permanent"),
        "permanent_attempts": permanent.get("attempts"),
        "permanent_permanent": permanent.get("permanent"),
        "passed": (
            sorted(result.quarantined) == [0, 1]
            and result.completed == 2
            and not result.lost
            and result.degraded
            and not result.interrupted
            and transient.get("attempts") == _POISON_MAX_ATTEMPTS
            and transient.get("permanent") is False
            and permanent.get("attempts") == 1
            and permanent.get("permanent") is True
        ),
    }


def run(config: ExperimentConfig | None = None) -> Mapping[str, Any]:
    """Execute both drill parts; returns the verification data."""
    config = config or ExperimentConfig(scale=0.2, seed=11)
    workdir = tempfile.mkdtemp(prefix="repro-campaign-drill-")
    try:
        part_a = _part_a(config, workdir)
        part_b = _part_b(config, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "scale": config.scale,
        "seed": config.seed,
        "part_a": part_a,
        "part_b": part_b,
        "passed": bool(part_a["passed"] and part_b["passed"]),
    }


def render(data: Mapping[str, Any]) -> str:
    """Human-readable digest of the drill."""
    a = data["part_a"]
    b = data["part_b"]
    lines: List[str] = [
        "campaign chaos drill",
        "====================",
        "",
        f"scale {data['scale']}, seed {data['seed']}",
        "",
        "part A: SIGKILL mid-campaign, resume from the store",
        f"  {a['cells']} cells; killed mid-flight: {a['killed']} "
        f"({a['objects_at_kill']} objects durable at kill)",
        f"  resume: {a['cached_on_resume']} cached + "
        f"{a['executed_on_resume']} executed, {a['lost']} lost "
        f"(resumed={a['resumed']}, degraded={a['degraded_after_resume']})",
        f"  only missing cells executed: {a['only_missing_executed']}",
        f"  survivors bit-identical to fresh execution: "
        f"{a['survivors_identical']}/{a['survivors_total']}",
        f"  {'PASS' if a['passed'] else 'FAIL'}",
        "",
        "part B: poison cells quarantined, rest completes",
        f"  {b['cells']} cells; quarantined {b['quarantined']}, "
        f"completed {b['completed']}, lost {b['lost']} "
        f"(degraded={b['degraded']})",
        f"  transient poison: {b['transient_attempts']} attempts, "
        f"permanent={b['transient_permanent']}",
        f"  permanent poison: {b['permanent_attempts']} attempt(s), "
        f"permanent={b['permanent_permanent']}",
        f"  {'PASS' if b['passed'] else 'FAIL'}",
        "",
        "PASS: kill/resume and poison quarantine both hold"
        if data["passed"]
        else "FAIL: at least one campaign guarantee did not hold",
    ]
    return "\n".join(lines)
