"""Per-sample power-model accuracy across the SPEC suite.

One of the paper's stated differentiators: "Prior power model evaluations
focused on program-average power prediction accuracy ... We focus on
per-sample accuracy for tighter run-time control" (§II).  This
experiment quantifies exactly that on the reproduction: run every SPEC
benchmark at a fixed p-state, estimate power from each 10 ms DPC sample
with the trained model, and compare against the corresponding measured
power sample.

Outputs per workload: mean signed error (bias), mean absolute error,
and the 95th-percentile absolute error -- plus the suite aggregate.
galgel's large positive bias (true power above the estimate) is the
quantitative root of its PM violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.analysis.report import TextTable
from repro.core.controller import PowerManagementController
from repro.core.governors.unconstrained import FixedFrequency
from repro.core.models.power import LinearPowerModel
from repro.core.sampling import CounterSampler  # noqa: F401  (doc reference)
from repro.exec import ExperimentConfig
from repro.exec.cache import trained_power_model
from repro.platform.events import Event
from repro.platform.machine import Machine
from repro.workloads.registry import default_registry


@dataclass(frozen=True)
class SampleErrorStats:
    """Per-sample estimation-error statistics for one workload."""

    workload: str
    samples: int
    bias_w: float          #: mean (measured - estimated)
    mae_w: float           #: mean |measured - estimated|
    p95_abs_w: float       #: 95th percentile |error|

    @property
    def underestimated(self) -> bool:
        """True when the model runs hot (measured above estimate)."""
        return self.bias_w > 0


@dataclass(frozen=True)
class ModelAccuracyResult:
    """Suite-wide per-sample accuracy at one p-state."""

    frequency_mhz: float
    per_workload: Mapping[str, SampleErrorStats]
    suite_mae_w: float
    suite_p95_w: float

    def worst_underestimated(self) -> SampleErrorStats:
        """The workload the model underestimates the most (bias)."""
        return max(self.per_workload.values(), key=lambda s: s.bias_w)


def run(
    config: ExperimentConfig | None = None,
    frequency_mhz: float = 2000.0,
    model: LinearPowerModel | None = None,
) -> ModelAccuracyResult:
    """Measure per-sample model error for every SPEC benchmark."""
    config = config or ExperimentConfig(scale=0.5)
    model = model or trained_power_model(seed=config.seed)

    per_workload: Dict[str, SampleErrorStats] = {}
    all_abs: list[float] = []
    for workload in default_registry().spec_suite():
        machine = Machine(config.machine_config())
        governor = _DpcProbe(machine.config.table, frequency_mhz)
        controller = PowerManagementController(
            machine, governor, keep_trace=True
        )
        result = controller.run(
            workload.scaled(config.scale),
            initial_pstate=machine.config.table.by_frequency(frequency_mhz),
        )
        errors = []
        for row in result.trace:
            dpc = row.rates.get(Event.INST_DECODED)
            if dpc is None:
                continue
            estimated = model.estimate(frequency_mhz, dpc)
            errors.append(row.measured_power_w - estimated)
        errors_arr = np.array(errors)
        abs_errors = np.abs(errors_arr)
        all_abs.extend(abs_errors.tolist())
        per_workload[workload.name] = SampleErrorStats(
            workload=workload.name,
            samples=len(errors),
            bias_w=float(errors_arr.mean()),
            mae_w=float(abs_errors.mean()),
            p95_abs_w=float(np.percentile(abs_errors, 95)),
        )
    all_arr = np.array(all_abs)
    return ModelAccuracyResult(
        frequency_mhz=frequency_mhz,
        per_workload=per_workload,
        suite_mae_w=float(all_arr.mean()),
        suite_p95_w=float(np.percentile(all_arr, 95)),
    )


class _DpcProbe(FixedFrequency):
    """Fixed-frequency governor that also monitors the decode counter."""

    def __init__(self, table, frequency_mhz: float):
        super().__init__(table, frequency_mhz)

    @property
    def events(self):
        return (Event.INST_DECODED,)


def render(result: ModelAccuracyResult) -> str:
    """Per-workload error table, worst underestimation first."""
    table = TextTable(
        ["benchmark", "samples", "bias W", "MAE W", "p95 |err| W"]
    )
    ordered = sorted(
        result.per_workload.values(), key=lambda s: s.bias_w, reverse=True
    )
    for stats in ordered:
        table.add_row(
            stats.workload, stats.samples, stats.bias_w, stats.mae_w,
            stats.p95_abs_w,
        )
    worst = result.worst_underestimated()
    return (
        f"Per-sample power-model accuracy at {result.frequency_mhz:.0f} MHz\n"
        + table.render()
        + f"\nsuite MAE {result.suite_mae_w:.2f} W, "
        f"p95 {result.suite_p95_w:.2f} W; "
        f"worst underestimation: {worst.workload} "
        f"(+{worst.bias_w:.2f} W bias -- the PM-violation mechanism)"
    )
