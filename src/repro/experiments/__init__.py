"""Experiment drivers regenerating every table and figure of the paper.

Each ``figN_*``/``tableN_*`` module exposes a ``run(config) -> result``
function and a ``render(result) -> str`` text renderer producing the
same rows/series the paper reports.  The per-experiment index lives in
DESIGN.md §4; measured-vs-paper comparisons are recorded in
EXPERIMENTS.md.

Shared machinery:

* :mod:`repro.experiments.runner` -- build machines/controllers, run
  (workload, governor) pairs with the paper's median-of-3 protocol;
* :mod:`repro.experiments.metrics` -- normalized performance, energy
  savings, violation accounting, exactly as the paper computes them;
* :mod:`repro.experiments.suite` -- SPEC-suite sweeps.
"""

from repro.exec.plan import ExperimentConfig
from repro.experiments.runner import median_run
from repro.experiments.metrics import (
    normalized_performance,
    performance_reduction,
    energy_savings,
    speedup,
)

__all__ = [
    "ExperimentConfig",
    "median_run",
    "normalized_performance",
    "performance_reduction",
    "energy_savings",
    "speedup",
]
