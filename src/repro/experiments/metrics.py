"""Evaluation metrics, computed exactly as the paper defines them.

* Normalized performance (Fig. 6): "total execution time without power
  constraints divided by the total execution time with the power
  constraint".
* Speedup (Fig. 7): execution-time ratio baseline / candidate.
* Performance reduction (Figs. 9/11): computed "from the increase in
  total execution time compared to running at full-speed"; expressed as
  ``1 - T_fullspeed / T`` so that a 25% time increase is a 20% reduction
  (matching the floor semantics: an 80% floor allows a 20% reduction).
* Energy savings (Figs. 9/10): relative to full-speed execution, from
  10 ms-sample energy sums.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.controller import RunResult
from repro.errors import ExperimentError


def _positive_duration(result: RunResult) -> float:
    if result.duration_s <= 0:
        raise ExperimentError(f"run {result.workload} has zero duration")
    return result.duration_s


def normalized_performance(
    constrained: RunResult, unconstrained: RunResult
) -> float:
    """Paper Fig. 6 metric: T_unconstrained / T_constrained (<= ~1)."""
    return _positive_duration(unconstrained) / _positive_duration(constrained)


def speedup(candidate: RunResult, baseline: RunResult) -> float:
    """Execution-time speedup of ``candidate`` over ``baseline`` (Fig. 7)."""
    return _positive_duration(baseline) / _positive_duration(candidate)


def performance_reduction(result: RunResult, fullspeed: RunResult) -> float:
    """Fractional performance loss vs full speed (Figs. 9/11)."""
    return 1.0 - _positive_duration(fullspeed) / _positive_duration(result)


def energy_savings(result: RunResult, fullspeed: RunResult) -> float:
    """Fractional measured-energy savings vs full speed (Figs. 9/10)."""
    if fullspeed.measured_energy_j <= 0:
        raise ExperimentError("baseline energy is zero")
    return 1.0 - result.measured_energy_j / fullspeed.measured_energy_j


def suite_normalized_performance(
    constrained: Sequence[RunResult], unconstrained: Sequence[RunResult]
) -> float:
    """Suite-level Fig. 6 metric from total execution times."""
    return _total_time(unconstrained) / _total_time(constrained)


def suite_performance_reduction(
    results: Sequence[RunResult], fullspeed: Sequence[RunResult]
) -> float:
    """Suite-level performance reduction (Fig. 9)."""
    return 1.0 - _total_time(fullspeed) / _total_time(results)


def suite_energy_savings(
    results: Sequence[RunResult], fullspeed: Sequence[RunResult]
) -> float:
    """Suite-level energy savings (Fig. 9)."""
    total = sum(r.measured_energy_j for r in results)
    base = sum(r.measured_energy_j for r in fullspeed)
    if base <= 0:
        raise ExperimentError("baseline suite energy is zero")
    return 1.0 - total / base


def achieved_speedup_fraction(
    managed: Sequence[RunResult],
    static: Sequence[RunResult],
    unconstrained: Sequence[RunResult],
) -> float:
    """Fraction of the possible speedup PM captured (the paper's 86%).

    The paper reports PM "reaching 86% of maximum performance based on
    the total execution time of the full benchmark suite": the
    suite-time speedup of PM over static clocking, as a fraction of the
    speedup unconstrained operation would achieve.
    """
    pm_speedup = _total_time(static) / _total_time(managed)
    max_speedup = _total_time(static) / _total_time(unconstrained)
    if max_speedup <= 1.0:
        return 1.0
    return (pm_speedup - 1.0) / (max_speedup - 1.0)


def _total_time(results: Iterable[RunResult]) -> float:
    total = sum(r.duration_s for r in results)
    if total <= 0:
        raise ExperimentError("total suite time is zero")
    return total
