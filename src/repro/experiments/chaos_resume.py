"""Chaos drill: SIGKILL a checkpointed run, resume it, compare results.

The crash-safety claim (README "Crash safety & resume") is only worth
its documentation if it survives a *real* kill: a child ``repro-power
run --checkpoint`` process killed with SIGKILL at an arbitrary point --
no atexit handlers, no flushing, nothing graceful -- must, after
``--resume``, finish with a :class:`~repro.core.controller.RunResult`
bit-identical to an uninterrupted run's.

The harness:

1. runs the workload once, uninterrupted, in a child process and keeps
   its float-exact digest (``--result-json``) as the reference;
2. for each of ``kills`` cycles, starts a fresh checkpointed child,
   polls the journal's durable records, and SIGKILLs the child once the
   newest checkpoint reaches a randomized target tick;
3. resumes each murdered run with ``--resume`` and compares the
   resumed digest (including the SHA-256 over the raw IEEE-754 sample
   and trace series) against the reference.

Child processes run under a :class:`~repro.supervise.Supervisor`
deadline so a wedged child fails the experiment instead of hanging it.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.checkpoint.format import read_records
from repro.checkpoint.journal import JOURNAL_FILENAME
from repro.errors import DeadlineExceeded, ExperimentError
from repro.exec.plan import ExperimentConfig
from repro.supervise import RetryPolicy, Supervisor

#: Workload the drill runs (long enough for many checkpoints at scale).
DEFAULT_WORKLOAD = "ammp"

#: Checkpoint cadence for the children: dense, so randomized kill
#: targets land between many durable records.
DEFAULT_INTERVAL_TICKS = 7

#: Kill/resume cycles.
DEFAULT_KILLS = 5

#: Wall-clock budget per child process.
DEFAULT_CHILD_DEADLINE_S = 300.0


@dataclass(frozen=True)
class KillCycle:
    """Outcome of one SIGKILL + resume cycle."""

    target_tick: int
    #: Tick of the newest durable checkpoint when the kill landed
    #: (-1 when the child finished before the kill could land).
    killed_after_tick: int
    #: True when the child was actually SIGKILLed mid-run.
    killed: bool
    #: True when the resumed digest matches the uninterrupted one.
    identical: bool


def _python_cmd(extra: Sequence[str]) -> list[str]:
    return [sys.executable, "-m", "repro", "run", *extra]


def _run_flags(config: ExperimentConfig) -> list[str]:
    return [
        DEFAULT_WORKLOAD,
        "--scale", str(config.scale),
        "--seed", str(config.seed),
        "--use-paper-model",
        "--governor", "pm",
    ]


def _read_digest(path: str) -> Mapping[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def _wait_and_kill(
    proc: subprocess.Popen,
    journal_path: str,
    target_tick: int,
    deadline_s: float,
) -> tuple[bool, int]:
    """Poll the journal; SIGKILL ``proc`` once ``target_tick`` is durable.

    Returns ``(killed, newest_durable_tick)``.  The kill is a raw
    SIGKILL -- the child gets no chance to flush or clean up, which is
    the whole point.
    """
    start = time.monotonic()
    newest = -1
    while proc.poll() is None:
        if time.monotonic() - start > deadline_s:
            proc.kill()
            proc.wait()
            raise DeadlineExceeded(
                f"chaos child ran past {deadline_s:.0f}s before reaching "
                f"tick {target_tick}"
            )
        if os.path.exists(journal_path):
            records = read_records(journal_path)
            if records:
                newest = records[-1].tick
                if newest >= target_tick:
                    os.kill(proc.pid, signal.SIGKILL)
                    proc.wait()
                    return True, newest
        time.sleep(0.005)
    proc.wait()
    return False, newest


def run(config: ExperimentConfig | None = None) -> Mapping[str, Any]:
    """Execute the kill/resume drill; returns the comparison data."""
    config = config or ExperimentConfig(scale=0.6)
    kills = DEFAULT_KILLS
    rng = np.random.default_rng(config.seed + 1)
    supervisor = Supervisor(
        RetryPolicy(max_attempts=1, deadline_s=DEFAULT_CHILD_DEADLINE_S * 4)
    )
    workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        # 1. The uninterrupted reference run (checkpointing on, so the
        #    reference exercises the identical code path).
        ref_dir = os.path.join(workdir, "reference")
        ref_json = os.path.join(workdir, "reference.json")
        supervisor.run_subprocess(
            _python_cmd(
                _run_flags(config)
                + ["--checkpoint", ref_dir,
                   "--checkpoint-interval", str(DEFAULT_INTERVAL_TICKS),
                   "--result-json", ref_json]
            ),
            label="chaos-reference",
            timeout_s=DEFAULT_CHILD_DEADLINE_S,
        )
        reference = _read_digest(ref_json)
        total_ticks = int(reference["n_samples"])
        if total_ticks < 3 * DEFAULT_INTERVAL_TICKS:
            raise ExperimentError(
                f"reference run too short ({total_ticks} ticks) to place "
                f"randomized kills; raise --scale"
            )

        # 2. Kill/resume cycles at randomized checkpoint depths.
        cycles: list[KillCycle] = []
        for index in range(kills):
            target = int(
                rng.integers(1, max(2, total_ticks - DEFAULT_INTERVAL_TICKS))
            )
            run_dir = os.path.join(workdir, f"kill-{index}")
            out_json = os.path.join(workdir, f"kill-{index}.json")
            proc = subprocess.Popen(
                _python_cmd(
                    _run_flags(config)
                    + ["--checkpoint", run_dir,
                       "--checkpoint-interval", str(DEFAULT_INTERVAL_TICKS),
                       "--result-json", out_json]
                ),
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            killed, newest = _wait_and_kill(
                proc,
                os.path.join(run_dir, JOURNAL_FILENAME),
                target,
                DEFAULT_CHILD_DEADLINE_S,
            )
            # 3. Resume (works for a killed child; also validates that
            #    resuming a journal whose run completed reproduces the
            #    same result).
            supervisor.run_subprocess(
                _python_cmd(
                    ["--resume", run_dir, "--result-json", out_json]
                ),
                label=f"chaos-resume-{index}",
                timeout_s=DEFAULT_CHILD_DEADLINE_S,
            )
            resumed = _read_digest(out_json)
            cycles.append(
                KillCycle(
                    target_tick=target,
                    killed_after_tick=newest,
                    killed=killed,
                    identical=resumed == reference,
                )
            )
        return {
            "workload": DEFAULT_WORKLOAD,
            "scale": config.scale,
            "seed": config.seed,
            "interval_ticks": DEFAULT_INTERVAL_TICKS,
            "total_ticks": total_ticks,
            "reference_samples_sha256": reference["samples_sha256"],
            "cycles": [vars(c) for c in cycles],
            "kills": sum(1 for c in cycles if c.killed),
            "identical": sum(1 for c in cycles if c.identical),
            "all_identical": all(c.identical for c in cycles),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def render(data: Mapping[str, Any]) -> str:
    """Human-readable digest of the drill."""
    lines = [
        "chaos kill/resume drill",
        "=======================",
        "",
        f"workload {data['workload']} (scale {data['scale']}, seed "
        f"{data['seed']}), {data['total_ticks']} ticks, checkpoint "
        f"every {data['interval_ticks']} ticks",
        f"reference samples sha256: {data['reference_samples_sha256'][:16]}...",
        "",
        f"{'cycle':>5} {'target tick':>12} {'killed after':>13} "
        f"{'killed':>7} {'identical':>10}",
    ]
    for index, cycle in enumerate(data["cycles"]):
        lines.append(
            f"{index:>5} {cycle['target_tick']:>12} "
            f"{cycle['killed_after_tick']:>13} "
            f"{str(cycle['killed']):>7} {str(cycle['identical']):>10}"
        )
    lines.append("")
    lines.append(
        f"{data['kills']}/{len(data['cycles'])} children SIGKILLed "
        f"mid-run; {data['identical']}/{len(data['cycles'])} resumed "
        f"bit-identical"
    )
    lines.append(
        "PASS: every resumed run matches the uninterrupted reference"
        if data["all_identical"]
        else "FAIL: at least one resumed run diverged from the reference"
    )
    return "\n".join(lines)
