"""Fig. 7: per-benchmark PM speedup over static clocking at 17.5 W.

At the 17.5 W limit static clocking fixes 1800 MHz; the maximum possible
performance is unconstrained 2000 MHz (which would violate the limit for
some workloads).  PM alternates 1800/2000 as workload behaviour permits.
The paper reports PM "reaching 86% of maximum performance based on the
total execution time of the full benchmark suite", with:

* memory-bound workloads (swim end) gaining ~nothing from 2000 MHz;
* core-bound, lower-power workloads (sixtrack end) gaining fully;
* crafty/perlbmk (and to a lesser degree bzip2) held back by their own
  high power despite being core-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.report import TextTable
from repro.core.governors.static import static_frequency_for_limit
from repro.exec import ExperimentConfig, GovernorSpec
from repro.exec.cache import worst_case_power_table
from repro.experiments.metrics import achieved_speedup_fraction, speedup
from repro.experiments.suite import run_suite_fixed, run_suite_governed

#: The limit the paper's Fig. 7 is drawn at.
LIMIT_W = 17.5


@dataclass(frozen=True)
class Fig7Result:
    """Per-benchmark speedups and the suite-level achieved fraction."""

    #: PM speedup over static clocking, per benchmark.
    pm_speedup: Mapping[str, float]
    #: Unconstrained (2000 MHz) speedup over static, per benchmark.
    unconstrained_speedup: Mapping[str, float]
    #: Fraction of the possible suite speedup PM captured (paper: 0.86).
    achieved_fraction: float
    static_frequency_mhz: float

    def sorted_names(self) -> tuple[str, ...]:
        """Benchmarks in the paper's x-axis order: by unconstrained
        speedup ascending (swim-like left, sixtrack-like right)."""
        return tuple(
            sorted(
                self.unconstrained_speedup,
                key=lambda n: self.unconstrained_speedup[n],
            )
        )


def run(config: ExperimentConfig | None = None) -> Fig7Result:
    """Regenerate Fig. 7's bars at the 17.5 W limit."""
    config = config or ExperimentConfig(scale=0.25)
    worst_case = worst_case_power_table(seed=config.seed)
    static_freq = static_frequency_for_limit(LIMIT_W, worst_case)

    static_runs = run_suite_fixed(static_freq, config)
    unconstrained_runs = run_suite_fixed(2000.0, config)
    pm_runs = run_suite_governed(GovernorSpec.pm(LIMIT_W), config)

    names = list(pm_runs)
    pm_speedups = {
        name: speedup(pm_runs[name], static_runs[name]) for name in names
    }
    unconstrained_speedups = {
        name: speedup(unconstrained_runs[name], static_runs[name])
        for name in names
    }
    fraction = achieved_speedup_fraction(
        [pm_runs[n] for n in names],
        [static_runs[n] for n in names],
        [unconstrained_runs[n] for n in names],
    )
    return Fig7Result(
        pm_speedup=pm_speedups,
        unconstrained_speedup=unconstrained_speedups,
        achieved_fraction=fraction,
        static_frequency_mhz=static_freq,
    )


def render(result: Fig7Result) -> str:
    """Bars as rows, sorted the paper's way."""
    table = TextTable(
        ["benchmark", "PM speedup", "2000 MHz speedup", "gap"]
    )
    for name in result.sorted_names():
        pm = result.pm_speedup[name]
        unconstrained = result.unconstrained_speedup[name]
        table.add_row(name, pm, unconstrained, unconstrained - pm)
    return (
        f"Fig. 7 -- speedup over static {result.static_frequency_mhz:.0f} MHz "
        f"at {LIMIT_W} W\n"
        + table.render()
        + (
            f"\nsuite: PM captured "
            f"{100 * result.achieved_fraction:.1f}% of the possible "
            "speedup (paper: 86%)"
        )
    )
