"""Memory-hierarchy probe: the MS-Loops characterization methodology.

The paper's microbenchmarks exist to "intensively exercise each of the
memory hierarchy levels" (§III-A); this experiment runs that
characterization the way the loop authors would have: sweep the
latency probe (MLOAD_RAND) and the bandwidth streamer (MCOPY) across
footprints from L1-resident to deep DRAM and report the effective
latency and bandwidth plateaus.  It validates that the simulated
hierarchy exposes the same three-level structure the training set's
footprints were chosen against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.report import TextTable
from repro.exec import ExperimentConfig, RunCell, execute_cell
from repro.platform.caches import PENTIUM_M_755_GEOMETRY
from repro.units import KIB, MIB
from repro.workloads.microbenchmarks import build_microbenchmark, get_loop_spec

#: Footprints swept, spanning all three levels of the Dothan hierarchy.
FOOTPRINTS_BYTES: tuple[int, ...] = (
    8 * KIB, 16 * KIB, 64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB, 8 * MIB,
)


@dataclass(frozen=True)
class ProbePoint:
    """One (footprint, level) measurement."""

    footprint_bytes: int
    level: str
    #: Effective latency seen by the dependent-load probe (ns/access).
    load_latency_ns: float
    #: Bandwidth achieved by the copy streamer (GB/s).
    copy_bandwidth_gb_s: float


@dataclass(frozen=True)
class HierarchyProbeResult:
    """The full sweep at one frequency."""

    frequency_mhz: float
    points: Sequence[ProbePoint]

    def by_level(self) -> Mapping[str, list[ProbePoint]]:
        out: dict[str, list[ProbePoint]] = {}
        for point in self.points:
            out.setdefault(point.level, []).append(point)
        return out

    def latency_plateaus_ns(self) -> Mapping[str, float]:
        """Mean probe latency per hierarchy level."""
        return {
            level: sum(p.load_latency_ns for p in pts) / len(pts)
            for level, pts in self.by_level().items()
        }


def run(
    config: ExperimentConfig | None = None,
    frequency_mhz: float = 2000.0,
) -> HierarchyProbeResult:
    """Sweep the probes across footprints at ``frequency_mhz``."""
    config = config or ExperimentConfig(scale=0.2)
    latency_spec = get_loop_spec("MLOAD_RAND")
    bandwidth_spec = get_loop_spec("MCOPY")
    points = []
    for footprint in FOOTPRINTS_BYTES:
        level = PENTIUM_M_755_GEOMETRY.residency_level(footprint)

        probe = build_microbenchmark(latency_spec, footprint)
        probe_run = execute_cell(
            RunCell.fixed(probe, frequency_mhz), config
        )
        # The probe issues `lines_per_instr` dependent loads per
        # instruction; each instruction takes 1/ips seconds, so the
        # per-access latency is the per-instruction time divided by the
        # access rate, minus nothing (the core cost is part of what the
        # loop measures, as on real hardware).
        seconds_per_instr = 1.0 / probe_run.ips
        latency_ns = seconds_per_instr / latency_spec.lines_per_instr * 1e9

        stream = build_microbenchmark(bandwidth_spec, footprint)
        stream_run = execute_cell(
            RunCell.fixed(stream, frequency_mhz), config
        )
        # MCOPY touches (reads + writes) its footprint line by line:
        # lines_per_instr * 64 B of fresh data per instruction.
        bytes_per_s = (
            stream_run.ips * bandwidth_spec.lines_per_instr * 64.0
        )
        points.append(
            ProbePoint(
                footprint_bytes=footprint,
                level=level,
                load_latency_ns=latency_ns,
                copy_bandwidth_gb_s=bytes_per_s / 1e9,
            )
        )
    return HierarchyProbeResult(frequency_mhz=frequency_mhz, points=points)


def render(result: HierarchyProbeResult) -> str:
    """The classic footprint-sweep table."""
    table = TextTable(
        ["footprint", "level", "load latency ns", "copy BW GB/s"]
    )
    for point in result.points:
        label = (
            f"{point.footprint_bytes // MIB}MB"
            if point.footprint_bytes >= MIB
            else f"{point.footprint_bytes // KIB}KB"
        )
        table.add_row(
            label, point.level, point.load_latency_ns,
            point.copy_bandwidth_gb_s,
        )
    plateaus = result.latency_plateaus_ns()
    summary = ", ".join(
        f"{level}: {latency:.1f} ns" for level, latency in plateaus.items()
    )
    return (
        f"Memory-hierarchy probe at {result.frequency_mhz:.0f} MHz\n"
        + table.render()
        + f"\nlatency plateaus -- {summary}"
    )
