"""Ablation studies of the design choices DESIGN.md §5 calls out.

Each function sweeps one mechanism the paper fixes by fiat and
quantifies what it buys:

* :func:`hysteresis_ablation` -- PM's 100 ms raise window (violations vs
  performance on galgel, the hardest workload);
* :func:`guardband_ablation` -- the 0.5 W estimate guardband;
* :func:`adaptive_pm_ablation` -- the paper's future-work sketch:
  measured-power feedback vs the static model on galgel;
* :func:`dbs_ablation` -- PowerSave vs Demand-Based Switching at full
  load (PS's motivating comparison, §IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.report import TextTable
from repro.exec import (
    ExperimentConfig,
    GovernorSpec,
    RunCell,
    execute_cell,
)
from repro.experiments.metrics import (
    energy_savings,
    performance_reduction,
)
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class AblationRow:
    """One configuration's outcome."""

    label: str
    duration_s: float
    mean_power_w: float
    violation_fraction: float
    energy_j: float


def _row(label: str, result, limit_w: float | None) -> AblationRow:
    return AblationRow(
        label=label,
        duration_s=result.duration_s,
        mean_power_w=result.mean_power_w,
        violation_fraction=(
            result.violation_fraction(limit_w) if limit_w else 0.0
        ),
        energy_j=result.measured_energy_j,
    )


def hysteresis_ablation(
    config: ExperimentConfig | None = None,
    windows: Sequence[int] = (1, 5, 10, 20),
    limit_w: float = 13.5,
    workload_name: str = "galgel",
) -> tuple[AblationRow, ...]:
    """Sweep PM's raise window on the paper's hardest workload.

    Shorter windows chase performance into difficult-to-predict bursts
    and pay in violations; the paper's 10-sample (100 ms) choice trades
    a little performance for far fewer violations.
    """
    config = config or ExperimentConfig(scale=1.0)
    workload = get_workload(workload_name)
    rows = []
    for window in windows:
        result = execute_cell(
            RunCell(
                workload=workload,
                governor=GovernorSpec.pm(limit_w, raise_window=window),
            ),
            config,
        )
        rows.append(_row(f"raise_window={window}", result, limit_w))
    return tuple(rows)


def guardband_ablation(
    config: ExperimentConfig | None = None,
    guardbands: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    limit_w: float = 13.5,
    workload_name: str = "galgel",
) -> tuple[AblationRow, ...]:
    """Sweep the estimate guardband: violations vs lost performance."""
    config = config or ExperimentConfig(scale=1.0)
    workload = get_workload(workload_name)
    rows = []
    for guardband in guardbands:
        result = execute_cell(
            RunCell(
                workload=workload,
                governor=GovernorSpec.pm(limit_w, guardband_w=guardband),
            ),
            config,
        )
        rows.append(_row(f"guardband={guardband}W", result, limit_w))
    return tuple(rows)


def adaptive_pm_ablation(
    config: ExperimentConfig | None = None,
    limit_w: float = 13.5,
    workload_name: str = "galgel",
) -> Mapping[str, AblationRow]:
    """Static-model PM vs measured-power-feedback PM on galgel.

    The paper's proposed fix for its one enforcement failure (§IV-A2):
    adapting model coefficients online should cut galgel's violations.
    """
    config = config or ExperimentConfig(scale=1.0)
    workload = get_workload(workload_name)
    static = execute_cell(
        RunCell(workload=workload, governor=GovernorSpec.pm(limit_w)),
        config,
    )
    adaptive = execute_cell(
        RunCell(
            workload=workload, governor=GovernorSpec.adaptive_pm(limit_w)
        ),
        config,
    )
    return {
        "static_model": _row("static model PM", static, limit_w),
        "adaptive": _row("adaptive PM", adaptive, limit_w),
    }


@dataclass(frozen=True)
class DbsComparison:
    """PS vs DBS on an always-busy workload."""

    ps_savings: float
    ps_reduction: float
    dbs_savings: float
    dbs_reduction: float


def dbs_ablation(
    config: ExperimentConfig | None = None,
    floor: float = 0.8,
    workload_name: str = "ammp",
) -> DbsComparison:
    """PS saves energy at 100% load; DBS cannot (paper §IV-B's point)."""
    config = config or ExperimentConfig(scale=0.5)
    workload = get_workload(workload_name)
    fullspeed = execute_cell(RunCell.fixed(workload, 2000.0), config)
    ps = execute_cell(
        RunCell(workload=workload, governor=GovernorSpec.ps(floor)), config
    )
    dbs = execute_cell(
        RunCell(workload=workload, governor=GovernorSpec.dbs()), config
    )
    return DbsComparison(
        ps_savings=energy_savings(ps, fullspeed),
        ps_reduction=performance_reduction(ps, fullspeed),
        dbs_savings=energy_savings(dbs, fullspeed),
        dbs_reduction=performance_reduction(dbs, fullspeed),
    )


def render_rows(title: str, rows: Sequence[AblationRow]) -> str:
    """Shared text rendering for ablation sweeps."""
    table = TextTable(["config", "time s", "mean W", "viol frac", "energy J"])
    for row in rows:
        table.add_row(
            row.label, row.duration_s, row.mean_power_w,
            row.violation_fraction, row.energy_j,
        )
    return f"{title}\n" + table.render()
