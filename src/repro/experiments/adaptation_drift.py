"""Drift drill: frozen-model PM vs online-adaptive PM under meter drift.

The paper's offline models assume the measurement rig stays calibrated
forever; §IV-A2's future-work sketch ("PM could adapt model
coefficients on the fly") is the escape hatch when it does not.  This
experiment injects a *persistent* meter fault -- the sense-resistor /
ADC gain slowly walking upward -- and runs the same workload under the
same power limit twice:

* **frozen**: plain PM with the offline model.  Its estimates stay
  anchored to the stale calibration, so the (drifted) measured power
  climbs through the limit and violations accumulate for the rest of
  the run.
* **adaptive**: PM plus the :class:`~repro.adaptation.manager.
  AdaptationManager`.  The Page-Hinkley detector confirms the residual
  drift, the RLS state recalibrates the per-p-state coefficients
  against the drifted readings, and the hot-swapped model makes PM back
  off to frequencies that hold the limit *as measured*.

The acceptance claim: the adaptive run's violation fraction is strictly
lower than the frozen run's, with at least one drift detection and one
recalibration on the record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.adaptation.context import adapting
from repro.adaptation.manager import AdaptationConfig, AdaptationManager
from repro.analysis.report import TextTable
from repro.core.controller import RunResult
from repro.core.governors.performance_maximizer import PerformanceMaximizer
from repro.exec import (
    ExperimentConfig,
    RunCell,
    as_governor_spec,
    execute_cell,
)
from repro.exec.cache import trained_power_model
from repro.faults.plan import FaultPlan, MeterFaults
from repro.workloads.microbenchmarks import worst_case_workload

#: Power limit both legs enforce (the paper's most violation-prone
#: limit, §IV-A2).
DEFAULT_POWER_LIMIT_W = 13.5

#: Default gain drift: +4%/s of meter gain starting at t=1 s, capped at
#: +35% -- slow enough to pass the resilience spike filter, large
#: enough that the frozen model's guardband cannot absorb it.
DEFAULT_DRIFT = MeterFaults(
    drift_rate_per_s=0.04, drift_start_s=1.0, drift_max_gain=0.35
)


@dataclass(frozen=True)
class LegOutcome:
    """One governor leg's headline numbers."""

    violation_fraction: float
    mean_power_w: float
    duration_s: float

    @classmethod
    def from_run(cls, result: RunResult, limit_w: float) -> "LegOutcome":
        return cls(
            violation_fraction=result.violation_fraction(limit_w),
            mean_power_w=result.mean_power_w,
            duration_s=result.duration_s,
        )


@dataclass(frozen=True)
class DriftResult:
    """Frozen vs adaptive PM under the same drifting meter."""

    power_limit_w: float
    drift_rate_per_s: float
    drift_start_s: float
    frozen: LegOutcome
    adaptive: LegOutcome
    #: :meth:`AdaptationManager.summary` of the adaptive leg.
    adaptation: Mapping[str, Any] = field(default_factory=dict)

    @property
    def adaptation_wins(self) -> bool:
        """True when adaptation strictly reduced violation time."""
        return (
            self.adaptive.violation_fraction < self.frozen.violation_fraction
        )


def run(
    config: ExperimentConfig | None = None,
    power_limit_w: float = DEFAULT_POWER_LIMIT_W,
    drift: MeterFaults = DEFAULT_DRIFT,
    adaptation: AdaptationConfig | None = None,
) -> DriftResult:
    """Run the drift drill (frozen leg, then adaptive leg)."""
    # FMA-256KB needs a large scale to outlast the drift onset: ~10 s
    # of simulated control loop (~1000 ticks) per leg.
    config = config or ExperimentConfig(scale=64.0)
    model = trained_power_model(seed=config.seed)
    workload = worst_case_workload()
    plan = FaultPlan(seed=config.seed, meter=drift)

    def pm_factory(table):
        return PerformanceMaximizer(table, model, power_limit_w)

    # The frozen leg must stay frozen even when the CLI installed an
    # ambient adaptation config (``experiment --adapt``).
    cell = RunCell(workload=workload, governor=as_governor_spec(pm_factory))
    with adapting(None):
        frozen_run = execute_cell(cell, config, fault_plan=plan)

    manager = AdaptationManager(
        adaptation if adaptation is not None else AdaptationConfig()
    )
    adaptive_run = execute_cell(
        cell, config, fault_plan=plan, adaptation=manager
    )

    return DriftResult(
        power_limit_w=power_limit_w,
        drift_rate_per_s=drift.drift_rate_per_s,
        drift_start_s=drift.drift_start_s,
        frozen=LegOutcome.from_run(frozen_run, power_limit_w),
        adaptive=LegOutcome.from_run(adaptive_run, power_limit_w),
        adaptation=dict(manager.summary()),
    )


def render(result: DriftResult) -> str:
    """Side-by-side frozen vs adaptive digest."""
    table = TextTable(["leg", "violation %", "mean W", "duration s"])
    for name, leg in (("frozen", result.frozen), ("adaptive", result.adaptive)):
        table.add_row(
            name,
            100 * leg.violation_fraction,
            leg.mean_power_w,
            leg.duration_s,
        )
    summary = result.adaptation
    verdict = (
        "adaptation held the limit"
        if result.adaptation_wins
        else "adaptation did NOT reduce violations"
    )
    return (
        f"Drift drill -- PM at {result.power_limit_w:.1f} W with meter "
        f"gain drifting +{100 * result.drift_rate_per_s:.1f}%/s from "
        f"t={result.drift_start_s:.1f}s\n"
        + table.render()
        + (
            f"\ndrift detections: {summary.get('drift_detections', 0)}"
            f"  recalibrations: {summary.get('recalibrations', 0)}"
            f"  rollbacks: {summary.get('rollbacks', 0)}"
            f"  registry versions: {summary.get('registered_versions', 0)}"
        )
        + f"\nverdict: {verdict}"
    )
