"""Fig. 1: power variation across SPEC CPU2000 at 2 GHz.

The paper's motivating observation: at a fixed p-state and 100% load,
measured power differs widely across workloads -- "the range spans over
35% of the chip's peak operating power" -- because clock gating makes
power activity-dependent.  This experiment runs every SPEC model at
2000 MHz, summarizes the 10 ms measured-power samples per workload, and
reports the suite-wide spread relative to the peak observed sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import TextTable
from repro.analysis.stats import SeriesSummary, summarize
from repro.exec.plan import ExperimentConfig
from repro.experiments.suite import run_suite_fixed


@dataclass(frozen=True)
class Fig1Result:
    """Per-workload power summaries and the suite-wide spread."""

    summaries: Dict[str, SeriesSummary]
    peak_power_w: float
    spread_w: float

    @property
    def spread_fraction_of_peak(self) -> float:
        """The paper's headline: spread / peak operating power (>0.35)."""
        return self.spread_w / self.peak_power_w


def run(config: ExperimentConfig | None = None) -> Fig1Result:
    """Regenerate Fig. 1's data."""
    config = config or ExperimentConfig(scale=0.25)
    results = run_suite_fixed(2000.0, config)
    summaries = {
        name: summarize([s.watts for s in result.samples])
        for name, result in results.items()
    }
    mean_powers = [s.mean for s in summaries.values()]
    peak = max(s.maximum for s in summaries.values())
    spread = max(mean_powers) - min(mean_powers)
    return Fig1Result(
        summaries=summaries, peak_power_w=peak, spread_w=spread
    )


def render(result: Fig1Result) -> str:
    """Text rendering: per-workload mean/min/max power at 2 GHz."""
    table = TextTable(
        ["benchmark", "mean W", "min W", "max W", "p95 W"]
    )
    ordered = sorted(
        result.summaries.items(), key=lambda kv: kv[1].mean, reverse=True
    )
    for name, summary in ordered:
        table.add_row(
            name, summary.mean, summary.minimum, summary.maximum, summary.p95
        )
    footer = (
        f"\nmean-power spread: {result.spread_w:.2f} W "
        f"({100 * result.spread_fraction_of_peak:.1f}% of the "
        f"{result.peak_power_w:.2f} W peak sample; paper: >35%)"
    )
    return "Fig. 1 -- SPEC CPU2000 power at 2 GHz\n" + table.render() + footer
