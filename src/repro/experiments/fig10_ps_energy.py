"""Fig. 10: per-workload energy savings by PS floor setting.

Workloads are sorted by the maximum benefit available from DVFS (the
600 MHz run); the paper's shape: memory-bound workloads (swim, equake,
mcf, lucas, applu) on the high-savings side, core-bound ones (eon,
sixtrack, crafty, twolf, mesa) on the low side, with the ALLBENCH
aggregate separating above- from below-average savers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.report import TextTable
from repro.core.models.performance import PerformanceModel
from repro.exec.plan import GovernorSpec
from repro.experiments.metrics import energy_savings, suite_energy_savings
from repro.exec.plan import ExperimentConfig
from repro.experiments.suite import run_suite_fixed, run_suite_governed
from repro.experiments.fig9_ps_suite import FLOORS


@dataclass(frozen=True)
class Fig10Result:
    """savings[floor][benchmark], the 600 MHz bound, and ALLBENCH."""

    savings: Mapping[float, Mapping[str, float]]
    bound_savings: Mapping[str, float]
    allbench: Mapping[float, float]

    def sorted_names(self) -> tuple[str, ...]:
        """Benchmarks by descending 600 MHz savings (paper's x order)."""
        return tuple(
            sorted(
                self.bound_savings,
                key=lambda n: self.bound_savings[n],
                reverse=True,
            )
        )


def run(
    config: ExperimentConfig | None = None,
    floors: Sequence[float] = FLOORS,
    model: PerformanceModel | None = None,
) -> Fig10Result:
    """Regenerate Fig. 10."""
    config = config or ExperimentConfig(scale=0.25)
    model = model or PerformanceModel.paper_primary()

    fullspeed = run_suite_fixed(2000.0, config)
    slowest = run_suite_fixed(600.0, config)
    order = list(fullspeed)

    savings: dict[float, dict[str, float]] = {}
    allbench: dict[float, float] = {}
    for floor in floors:
        governed = run_suite_governed(
            GovernorSpec.ps(floor, performance_model=model), config
        )
        savings[floor] = {
            name: energy_savings(governed[name], fullspeed[name])
            for name in order
        }
        allbench[floor] = suite_energy_savings(
            [governed[n] for n in order], [fullspeed[n] for n in order]
        )
    bound = {
        name: energy_savings(slowest[name], fullspeed[name]) for name in order
    }
    return Fig10Result(savings=savings, bound_savings=bound, allbench=allbench)


def render(result: Fig10Result) -> str:
    """Per-benchmark savings matrix, paper-sorted."""
    floors = sorted(result.savings, reverse=True)
    table = TextTable(
        ["benchmark", *(f"{100 * f:.0f}%" for f in floors), "600MHz"]
    )
    for name in result.sorted_names():
        table.add_row(
            name,
            *(result.savings[floor][name] for floor in floors),
            result.bound_savings[name],
        )
    table.add_row(
        "ALLBENCH",
        *(result.allbench[floor] for floor in floors),
        sum(result.bound_savings.values()) / len(result.bound_savings),
    )
    return (
        "Fig. 10 -- energy savings per workload by PS floor\n" + table.render()
    )
