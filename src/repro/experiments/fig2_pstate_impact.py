"""Fig. 2: workload-specific performance impact across three p-states.

The paper's second motivating figure: swim (memory-bound) barely changes
between 1600/1800/2000 MHz, sixtrack (core-bound) scales linearly, and
gap sits in between.  This experiment runs the three benchmarks at the
three p-states and reports performance normalized to the 1600 MHz run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import TextTable
from repro.exec import ExperimentConfig, RunCell, execute_cell
from repro.workloads.registry import get_workload

#: The paper's three exemplars and three p-states.
BENCHMARKS: Tuple[str, ...] = ("swim", "gap", "sixtrack")
FREQUENCIES_MHZ: Tuple[float, ...] = (1600.0, 1800.0, 2000.0)


@dataclass(frozen=True)
class Fig2Result:
    """Normalized performance per (benchmark, frequency).

    ``normalized[name][freq]`` is throughput relative to 1600 MHz; a
    perfectly core-bound workload shows 1.0 / 1.125 / 1.25.
    """

    normalized: Dict[str, Dict[float, float]]

    def frequency_sensitivity(self, name: str) -> float:
        """Speedup from 1600 to 2000 MHz (1.0 = flat, 1.25 = linear)."""
        return self.normalized[name][2000.0]


def run(config: ExperimentConfig | None = None) -> Fig2Result:
    """Regenerate Fig. 2's data."""
    config = config or ExperimentConfig(scale=0.25)
    normalized: Dict[str, Dict[float, float]] = {}
    for name in BENCHMARKS:
        workload = get_workload(name)
        durations = {
            freq: execute_cell(
                RunCell.fixed(workload, freq), config
            ).duration_s
            for freq in FREQUENCIES_MHZ
        }
        base = durations[1600.0]
        normalized[name] = {
            freq: base / duration for freq, duration in durations.items()
        }
    return Fig2Result(normalized=normalized)


def render(result: Fig2Result) -> str:
    """Text rendering of the normalized-performance matrix."""
    table = TextTable(["benchmark", *(f"{f:.0f} MHz" for f in FREQUENCIES_MHZ)])
    for name in BENCHMARKS:
        table.add_row(
            name, *(result.normalized[name][f] for f in FREQUENCIES_MHZ)
        )
    note = (
        "\n(linear scaling would read 1.000 / 1.125 / 1.250; "
        "paper: swim flat, gap in between, sixtrack linear)"
    )
    return (
        "Fig. 2 -- performance across p-states (normalized to 1600 MHz)\n"
        + table.render()
        + note
    )
