"""Process-local ambient fault plan (mirrors ``telemetry.recording``).

The CLI's ``experiment --faults SPEC`` must inject into runs made deep
inside experiment modules without threading an injector through every
driver signature.  :func:`injecting` installs a plan process-locally;
:func:`repro.experiments.runner.run_governed` picks it up and builds a
fresh, identically seeded :class:`~repro.faults.injector.FaultInjector`
per run -- so every run of an experiment sees the same reproducible
fault sequence.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.faults.plan import FaultPlan

_current: FaultPlan | None = None


def current_fault_plan() -> FaultPlan | None:
    """The ambient plan installed by :func:`injecting` (None = no faults)."""
    return _current


def set_fault_plan(plan: FaultPlan | None) -> None:
    """Install (or clear, with ``None``) the ambient fault plan."""
    global _current
    _current = plan


@contextlib.contextmanager
def injecting(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Temporarily install ``plan`` as the ambient fault plan."""
    previous = current_fault_plan()
    set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)
