"""Aggregation of fault activity from an exported telemetry directory.

``repro-power faults-report <dir>`` reconciles what the injector fired
(``fault_injected`` events) against what the hardened consumers absorbed
(``fault_recovered``, ``watchdog``, ``degraded``, ``node_crashed`` /
``node_restarted`` events) and renders an injected-vs-recovered digest.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Mapping

from repro.errors import TelemetryError
from repro.telemetry.exporters import EVENTS_FILENAME
from repro.telemetry.report import load_events


@dataclass
class FaultsReport:
    """Parsed fault/recovery activity of one telemetry directory."""

    directory: str
    injected: Mapping[str, int] = field(default_factory=dict)
    recovered: Mapping[str, int] = field(default_factory=dict)
    watchdog_trips: int = 0
    degradations: List[dict] = field(default_factory=list)
    crashes: List[dict] = field(default_factory=list)
    restarts: List[dict] = field(default_factory=list)
    skipped_lines: int = 0
    #: True when the final event line was torn mid-write (killed run).
    truncated_tail: bool = False

    @property
    def total_injected(self) -> int:
        """Total injected faults across subsystems."""
        return sum(self.injected.values())

    @property
    def total_recovered(self) -> int:
        """Total recovery actions taken by hardened consumers."""
        return sum(self.recovered.values())


def load_faults_report(directory: str | os.PathLike) -> FaultsReport:
    """Aggregate the fault events of a ``--telemetry`` directory."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        raise TelemetryError(f"no such telemetry directory: {directory}")
    events_path = os.path.join(directory, EVENTS_FILENAME)
    if not os.path.exists(events_path):
        raise TelemetryError(
            f"{directory} has no {EVENTS_FILENAME}; was it written with "
            "--telemetry?"
        )
    events, skipped, truncated = load_events(events_path)
    report = FaultsReport(
        directory=directory, skipped_lines=skipped, truncated_tail=truncated
    )
    injected: dict[str, int] = {}
    recovered: dict[str, int] = {}
    for event in events:
        kind = event.get("kind")
        if kind == "fault_injected":
            key = f"{event.get('subsystem', '?')}.{event.get('fault', '?')}"
            injected[key] = injected.get(key, 0) + 1
        elif kind == "fault_recovered":
            key = f"{event.get('subsystem', '?')}.{event.get('action', '?')}"
            recovered[key] = recovered.get(key, 0) + 1
        elif kind == "watchdog":
            report.watchdog_trips += 1
        elif kind == "degraded":
            report.degradations.append(event)
        elif kind == "node_crashed":
            report.crashes.append(event)
        elif kind == "node_restarted":
            report.restarts.append(event)
    report.injected = injected
    report.recovered = recovered
    return report


def render_faults_report(directory: str | os.PathLike) -> str:
    """Human-readable injected-vs-recovered digest of ``directory``."""
    report = load_faults_report(directory)
    lines = [f"faults report: {report.directory}", ""]

    if not report.total_injected and not report.total_recovered:
        lines.append("no fault activity recorded (run with --faults SPEC)")
        return "\n".join(lines)

    lines.append(f"injected ({report.total_injected} total):")
    for key, count in sorted(report.injected.items()):
        lines.append(f"  {key:28} {count}")
    if not report.injected:
        lines.append("  (none)")
    lines.append("")

    lines.append(f"recovered ({report.total_recovered} total):")
    for key, count in sorted(report.recovered.items()):
        lines.append(f"  {key:28} {count}")
    if not report.recovered:
        lines.append("  (none)")
    lines.append("")

    if report.watchdog_trips:
        lines.append(f"watchdog trips: {report.watchdog_trips}")
    for degraded in report.degradations:
        lines.append(
            f"degraded at {degraded.get('time_s', 0.0):.3f} s -> "
            f"{degraded.get('safe_frequency_mhz', 0.0):.0f} MHz "
            f"({degraded.get('reason', '?')})"
        )
    if report.crashes or report.restarts:
        lines.append(
            f"node crashes: {len(report.crashes)}, "
            f"restarts: {len(report.restarts)}"
        )
    if report.skipped_lines:
        lines.append(f"skipped {report.skipped_lines} malformed event lines")
    if report.truncated_tail:
        lines.append("final event line torn mid-write (killed run); ignored")
    return "\n".join(lines)
