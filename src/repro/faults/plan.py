"""Declarative, seeded fault plans.

A :class:`FaultPlan` describes *what can go wrong* during a run as a set
of per-subsystem fault models, each a frozen dataclass of probabilities
and magnitudes.  Plans are pure data: the :class:`~repro.faults.injector.
FaultInjector` owns the seeded RNG that turns a plan into a concrete,
reproducible fault sequence -- the same plan and seed always injects the
same faults at the same ticks.

Plans round-trip through plain dicts (:meth:`FaultPlan.from_dict` /
:meth:`FaultPlan.to_dict`) and load from JSON -- or YAML when PyYAML is
installed -- via :func:`load_fault_plan`, which backs the CLI's
``--faults SPEC`` flag.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field

from repro.errors import FaultPlanError


def _check_probability(name: str, value: float) -> None:
    if not isinstance(value, (int, float)) or not 0.0 <= float(value) <= 1.0:
        raise FaultPlanError(f"{name} must be a probability in [0, 1], got {value!r}")


def _check_non_negative(name: str, value: float) -> None:
    if not isinstance(value, (int, float)) or float(value) < 0.0:
        raise FaultPlanError(f"{name} must be non-negative, got {value!r}")


@dataclass(frozen=True)
class SampleFaults:
    """Counter-sampling fault model (the paper's monitoring driver path).

    Each probability is evaluated independently per 10 ms sample; at
    most one fault fires per sample, in the declared priority order
    ``drop > duplicate > garble > overflow``.
    """

    #: The PMU read is lost; the wrapped sampler raises ``SampleDropped``.
    drop_prob: float = 0.0
    #: The previous sample is returned again (stale driver buffer).
    duplicate_prob: float = 0.0
    #: Rates are corrupted by a large random factor (bus glitch).
    garble_prob: float = 0.0
    #: Log10 span of the multiplicative garble factor.
    garble_magnitude: float = 3.0
    #: A 40-bit wraparound artifact inflates the rates absurdly.
    overflow_prob: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("sample.drop_prob", self.drop_prob)
        _check_probability("sample.duplicate_prob", self.duplicate_prob)
        _check_probability("sample.garble_prob", self.garble_prob)
        _check_probability("sample.overflow_prob", self.overflow_prob)
        _check_non_negative("sample.garble_magnitude", self.garble_magnitude)

    @property
    def any_enabled(self) -> bool:
        """True when any sampling fault can fire."""
        return (
            self.drop_prob > 0
            or self.duplicate_prob > 0
            or self.garble_prob > 0
            or self.overflow_prob > 0
        )


@dataclass(frozen=True)
class MeterFaults:
    """Power-meter fault model (the sense-resistor/DAQ rig path).

    Dropout and spikes are *transient* faults the resilience filter
    absorbs; gain drift is a *persistent* fault -- a sense-resistor /
    ADC calibration slowly walking away from truth -- that only online
    model adaptation can compensate.  Drift is deterministic (no
    randomness consumed), so enabling it never perturbs the dropout /
    spike sequences of an existing plan.
    """

    #: A 10 ms power sample reads zero (dead channel / dropped DAQ frame).
    dropout_prob: float = 0.0
    #: A sample is multiplied by a large spike factor (EMI burst).
    spike_prob: float = 0.0
    #: Upper bound of the uniform spike factor (lower bound is 2x).
    spike_factor: float = 6.0
    #: Fractional gain error added per simulated second once drift
    #: starts (0.01 = the meter reads 1% higher per second).
    drift_rate_per_s: float = 0.0
    #: Simulated time at which the gain starts drifting.
    drift_start_s: float = 0.0
    #: Cap on the total gain error (0.5 = readings at most 1.5x truth).
    drift_max_gain: float = 0.5

    def __post_init__(self) -> None:
        _check_probability("meter.dropout_prob", self.dropout_prob)
        _check_probability("meter.spike_prob", self.spike_prob)
        if self.spike_factor < 2.0:
            raise FaultPlanError(
                f"meter.spike_factor must be >= 2, got {self.spike_factor!r}"
            )
        _check_non_negative("meter.drift_rate_per_s", self.drift_rate_per_s)
        _check_non_negative("meter.drift_start_s", self.drift_start_s)
        _check_non_negative("meter.drift_max_gain", self.drift_max_gain)

    @property
    def any_enabled(self) -> bool:
        """True when any meter fault can fire."""
        return (
            self.dropout_prob > 0
            or self.spike_prob > 0
            or self.drift_enabled
        )

    @property
    def drift_enabled(self) -> bool:
        """True when the gain-drift model is active."""
        return self.drift_rate_per_s > 0 and self.drift_max_gain > 0

    def drift_gain(self, time_s: float) -> float:
        """The multiplicative gain error applied at ``time_s``."""
        if not self.drift_enabled or time_s <= self.drift_start_s:
            return 1.0
        excess = self.drift_rate_per_s * (time_s - self.drift_start_s)
        return 1.0 + min(excess, self.drift_max_gain)


@dataclass(frozen=True)
class TransitionFaults:
    """SpeedStep/DVFS actuation fault model."""

    #: A requested transition fails outright (``InjectedTransitionError``).
    fail_prob: float = 0.0
    #: A transition succeeds but stalls the core for ``stall_s`` extra.
    stall_prob: float = 0.0
    #: Extra dead time charged by a stalled transition.
    stall_s: float = 0.002

    def __post_init__(self) -> None:
        _check_probability("transition.fail_prob", self.fail_prob)
        _check_probability("transition.stall_prob", self.stall_prob)
        _check_non_negative("transition.stall_s", self.stall_s)

    @property
    def any_enabled(self) -> bool:
        """True when any actuation fault can fire."""
        return self.fail_prob > 0 or self.stall_prob > 0


@dataclass(frozen=True)
class ThermalFaults:
    """Thermal-sensor fault model: the reading freezes at its last value."""

    #: Per-observation probability a new stuck episode begins.
    stuck_prob: float = 0.0
    #: Length of a stuck episode in simulated seconds.
    stuck_duration_s: float = 0.5

    def __post_init__(self) -> None:
        _check_probability("thermal.stuck_prob", self.stuck_prob)
        _check_non_negative("thermal.stuck_duration_s", self.stuck_duration_s)

    @property
    def any_enabled(self) -> bool:
        """True when stuck-sensor episodes can fire."""
        return self.stuck_prob > 0


@dataclass(frozen=True)
class NodeFaults:
    """Fleet node crash/restart fault model."""

    #: Per-node, per-tick crash probability.
    crash_prob: float = 0.0
    #: Downtime before an automatic restart; None = permanent failure.
    restart_delay_s: float | None = 1.0
    #: Cap on injected crashes per node (avoids crash-loop flapping).
    max_crashes_per_node: int = 1

    def __post_init__(self) -> None:
        _check_probability("node.crash_prob", self.crash_prob)
        if self.restart_delay_s is not None:
            _check_non_negative("node.restart_delay_s", self.restart_delay_s)
        if self.max_crashes_per_node < 0:
            raise FaultPlanError(
                "node.max_crashes_per_node must be non-negative, got "
                f"{self.max_crashes_per_node!r}"
            )

    @property
    def any_enabled(self) -> bool:
        """True when node crashes can fire."""
        return self.crash_prob > 0 and self.max_crashes_per_node > 0


_SECTION_TYPES = {
    "sample": SampleFaults,
    "meter": MeterFaults,
    "transition": TransitionFaults,
    "thermal": ThermalFaults,
    "node": NodeFaults,
}


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of the faults a run may suffer.

    ``enabled=False`` turns the whole plan into a guaranteed no-op: the
    injector installs no wrappers and consumes no randomness, so a run
    with a disabled plan is bit-for-bit identical to a run with no plan
    at all (the property the acceptance tests pin down).
    """

    seed: int = 0
    enabled: bool = True
    sample: SampleFaults = field(default_factory=SampleFaults)
    meter: MeterFaults = field(default_factory=MeterFaults)
    transition: TransitionFaults = field(default_factory=TransitionFaults)
    thermal: ThermalFaults = field(default_factory=ThermalFaults)
    node: NodeFaults = field(default_factory=NodeFaults)

    @property
    def active(self) -> bool:
        """True when the plan is enabled and at least one model can fire."""
        return self.enabled and (
            self.sample.any_enabled
            or self.meter.any_enabled
            or self.transition.any_enabled
            or self.thermal.any_enabled
            or self.node.any_enabled
        )

    def to_dict(self) -> dict:
        """JSON-safe dict form (the ``--faults`` file schema)."""
        out: dict = {"seed": self.seed, "enabled": self.enabled}
        for name, section_type in _SECTION_TYPES.items():
            section = getattr(self, name)
            if section != section_type():
                out[name] = dataclasses.asdict(section)
        return out

    @classmethod
    def from_dict(cls, data: object) -> "FaultPlan":
        """Build a plan from the ``--faults`` dict schema, validating keys."""
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"fault plan must be a mapping, got {type(data).__name__}"
            )
        known = {"seed", "enabled", *_SECTION_TYPES}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan keys: {', '.join(unknown)} "
                f"(expected some of: {', '.join(sorted(known))})"
            )
        kwargs: dict = {}
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise FaultPlanError(f"seed must be an integer, got {seed!r}")
        kwargs["seed"] = seed
        enabled = data.get("enabled", True)
        if not isinstance(enabled, bool):
            raise FaultPlanError(f"enabled must be a boolean, got {enabled!r}")
        kwargs["enabled"] = enabled
        for name, section_type in _SECTION_TYPES.items():
            if name not in data:
                continue
            section = data[name]
            if not isinstance(section, dict):
                raise FaultPlanError(f"{name} section must be a mapping")
            valid = {f.name for f in dataclasses.fields(section_type)}
            bad = sorted(set(section) - valid)
            if bad:
                raise FaultPlanError(
                    f"unknown {name} fault keys: {', '.join(bad)} "
                    f"(expected some of: {', '.join(sorted(valid))})"
                )
            try:
                kwargs[name] = section_type(**section)
            except TypeError as error:
                raise FaultPlanError(f"bad {name} section: {error}") from None
        return cls(**kwargs)


def load_fault_plan(path: str | os.PathLike) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON (or YAML) spec file.

    YAML is accepted when PyYAML happens to be installed; JSON always
    works, so plans stay loadable on the minimal dependency set.
    """
    path = os.fspath(path)
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as error:
        raise FaultPlanError(f"cannot read fault spec {path}: {error}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as json_error:
        try:
            import yaml  # type: ignore[import-not-found]
        except ImportError:
            raise FaultPlanError(
                f"{path} is not valid JSON ({json_error}); install PyYAML "
                "for YAML fault specs"
            ) from None
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as yaml_error:
            raise FaultPlanError(
                f"{path} is neither valid JSON nor YAML ({yaml_error})"
            ) from None
    return FaultPlan.from_dict(data)
