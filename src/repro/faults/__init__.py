"""Fault injection: deterministic failure drills for the whole loop.

The paper's methodology ran on real hardware where counters glitch, the
sense-resistor/DAQ rig drops samples and SpeedStep transitions
occasionally fail -- failure modes the reproduction's happy path never
exercised.  This subsystem makes those failures a first-class, *seeded*
input so the hardened monitor -> estimate -> control loop can be tested
(and demonstrated) under fire:

* :mod:`repro.faults.plan` -- declarative :class:`FaultPlan` with
  per-subsystem fault models (dropped/duplicated/garbled/overflowed
  counter samples, meter dropout and spikes, failed/stalled p-state
  transitions, stuck thermal sensors, fleet node crash/restart), JSON
  (or YAML) loadable for the CLI's ``--faults SPEC``;
* :mod:`repro.faults.injector` -- the seeded :class:`FaultInjector` and
  its interface-preserving wrappers around the counter sampler, power
  meter and SpeedStep driver;
* :mod:`repro.faults.context` -- the ambient plan used by
  ``experiment --faults`` (mirrors :func:`repro.telemetry.recording`);
* :mod:`repro.faults.report` -- the ``repro-power faults-report``
  injected-vs-recovered aggregation.

The consumer-side defenses live with the consumers: see
:class:`repro.core.resilience.ResilienceConfig` and the hardened
:class:`~repro.core.controller.PowerManagementController` /
:class:`~repro.fleet.controller.FleetController`.
"""

from repro.faults.context import (
    current_fault_plan,
    injecting,
    set_fault_plan,
)
from repro.faults.injector import (
    FaultInjector,
    FaultyPowerMeter,
    FaultySampler,
    FaultySpeedStep,
)
from repro.faults.plan import (
    FaultPlan,
    MeterFaults,
    NodeFaults,
    SampleFaults,
    ThermalFaults,
    TransitionFaults,
    load_fault_plan,
)
from repro.faults.report import (
    FaultsReport,
    load_faults_report,
    render_faults_report,
)

__all__ = [
    "FaultPlan",
    "SampleFaults",
    "MeterFaults",
    "TransitionFaults",
    "ThermalFaults",
    "NodeFaults",
    "load_fault_plan",
    "FaultInjector",
    "FaultySampler",
    "FaultyPowerMeter",
    "FaultySpeedStep",
    "current_fault_plan",
    "set_fault_plan",
    "injecting",
    "FaultsReport",
    "load_faults_report",
    "render_faults_report",
]
