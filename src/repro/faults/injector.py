"""The fault injector: turns a :class:`FaultPlan` into concrete faults.

A :class:`FaultInjector` owns one seeded RNG *stream per subsystem*
(sampler, meter, driver, thermal, node), so enabling a fault model in
one subsystem never perturbs the fault sequence of another -- plans stay
reproducible as they are grown.  Wrapped components keep their existing
interfaces exactly:

* :class:`FaultySampler` wraps a :class:`~repro.core.sampling.
  CounterSampler` (or the multiplexed variant) and injects dropped,
  duplicated, garbled and overflow-corrupted samples;
* :class:`FaultyPowerMeter` wraps a :class:`~repro.measurement.
  power_meter.PowerMeter` and injects dropout (zero) and spike samples;
* :class:`FaultySpeedStep` wraps the :class:`~repro.drivers.speedstep.
  SpeedStepDriver` and injects failed and stalled p-state transitions;
* :meth:`FaultInjector.observe_temperature` freezes thermal readings
  for stuck-sensor episodes;
* :meth:`FaultInjector.node_crashes` drives fleet node crash/restart.

Every injected fault is counted on the injector and -- when a telemetry
recorder is bound -- emitted as a :class:`~repro.telemetry.bus.
FaultInjected` event plus a ``faults.injected.*`` metric, so the
``repro-power faults-report`` aggregation can reconcile injected versus
recovered counts.

When the plan is disabled (or a subsystem's model has nothing to fire)
the ``wrap_*`` helpers return the component *unwrapped* and no
randomness is consumed: a disabled plan is bit-for-bit identical to no
plan at all.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np

from repro.core.sampling import CounterSample
from repro.errors import InjectedTransitionError, SampleDropped
from repro.faults.plan import FaultPlan
from repro.telemetry.bus import FaultInjected
from repro.telemetry.recorder import TelemetryRecorder

#: 40-bit counter span, the wraparound artifact magnitude (matches the
#: simulated Pentium M PMU counter width).
_COUNTER_SPAN = float(1 << 40)

_RNG_STREAMS = ("sample", "meter", "transition", "thermal", "node")


class FaultInjector:
    """Seeded, deterministic fault source for one run (or fleet run)."""

    def __init__(
        self,
        plan: FaultPlan,
        telemetry: TelemetryRecorder | None = None,
    ):
        self.plan = plan
        self._telemetry = telemetry
        self._rngs = {
            name: np.random.default_rng([plan.seed, index])
            for index, name in enumerate(_RNG_STREAMS)
        }
        self._injected: dict[str, int] = {}
        self._stuck_until_s: float | None = None
        self._stuck_value_c: float = 0.0
        self._node_crashes: dict[str, int] = {}
        self._clock = lambda: 0.0

    # -- bookkeeping -----------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when this injector can fire at least one fault."""
        return self.plan.active

    @property
    def injected(self) -> Mapping[str, int]:
        """Injected fault counts keyed ``subsystem.fault``."""
        return dict(self._injected)

    @property
    def total_injected(self) -> int:
        """Total faults injected so far."""
        return sum(self._injected.values())

    def bind_telemetry(self, telemetry: TelemetryRecorder | None) -> None:
        """Attach a recorder after construction (keeps existing one)."""
        if self._telemetry is None:
            self._telemetry = telemetry

    def set_clock(self, clock) -> None:
        """Install the simulated-time source used to stamp fault events."""
        self._clock = clock

    def __getstate__(self):
        # The recorder and clock are process-local (open file handles /
        # a closure over the machine); the controller rebinds both on
        # resume.  Everything else -- including the per-subsystem RNG
        # stream positions -- round-trips exactly.
        state = self.__dict__.copy()
        state["_telemetry"] = None
        state["_clock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._clock = lambda: 0.0

    @property
    def now_s(self) -> float:
        """Current simulated time (0.0 before a clock is bound)."""
        return self._clock()

    def rng(self, stream: str) -> np.random.Generator:
        """The named subsystem's private RNG stream."""
        return self._rngs[stream]

    def record(
        self, subsystem: str, fault: str, time_s: float, detail: str = ""
    ) -> None:
        """Count one injected fault and publish it on the telemetry bus."""
        key = f"{subsystem}.{fault}"
        self._injected[key] = self._injected.get(key, 0) + 1
        tel = self._telemetry
        if tel is not None and tel.enabled:
            tel.metrics.counter(f"faults.injected.{key}").inc()
            tel.emit(
                FaultInjected(
                    time_s=time_s, subsystem=subsystem, fault=fault,
                    detail=detail,
                )
            )

    # -- wrapping --------------------------------------------------------------

    def wrap_sampler(self, sampler):
        """Wrap a counter sampler; returns it unwrapped when inactive."""
        if not (self.plan.enabled and self.plan.sample.any_enabled):
            return sampler
        return FaultySampler(sampler, self)

    def wrap_meter(self, meter):
        """Wrap a power meter; returns it unwrapped when inactive."""
        if not (self.plan.enabled and self.plan.meter.any_enabled):
            return meter
        return FaultyPowerMeter(meter, self)

    def wrap_speedstep(self, driver, dvfs):
        """Wrap the SpeedStep driver; returns it unwrapped when inactive."""
        if not (self.plan.enabled and self.plan.transition.any_enabled):
            return driver
        return FaultySpeedStep(driver, dvfs, self)

    # -- thermal ---------------------------------------------------------------

    def observe_temperature(
        self, raw_c: float | None, now_s: float
    ) -> float | None:
        """Filter one thermal reading through the stuck-sensor model."""
        cfg = self.plan.thermal
        if raw_c is None or not (self.plan.enabled and cfg.any_enabled):
            return raw_c
        if self._stuck_until_s is not None:
            if now_s < self._stuck_until_s:
                return self._stuck_value_c
            self._stuck_until_s = None
        if self._rngs["thermal"].random() < cfg.stuck_prob:
            self._stuck_until_s = now_s + cfg.stuck_duration_s
            self._stuck_value_c = raw_c
            self.record(
                "thermal", "stuck", now_s,
                detail=f"{raw_c:.2f}C for {cfg.stuck_duration_s:.3f}s",
            )
        return raw_c

    # -- fleet nodes -----------------------------------------------------------

    def node_crashes(self, name: str, now_s: float) -> bool:
        """Decide whether node ``name`` crashes this tick (and record it)."""
        cfg = self.plan.node
        if not (self.plan.enabled and cfg.any_enabled):
            return False
        if self._node_crashes.get(name, 0) >= cfg.max_crashes_per_node:
            return False
        if self._rngs["node"].random() >= cfg.crash_prob:
            return False
        self._node_crashes[name] = self._node_crashes.get(name, 0) + 1
        self.record("node", "crash", now_s, detail=name)
        return True

    @property
    def node_restart_delay_s(self) -> float | None:
        """Configured downtime before restart (None = permanent)."""
        return self.plan.node.restart_delay_s


class FaultySampler:
    """A counter sampler with injected sampling faults.

    The inner sampler always advances (its PMU snapshot is taken before
    a fault is decided), so fault-free neighbours of a dropped sample
    still see correct single-interval deltas.
    """

    def __init__(self, inner, injector: FaultInjector):
        self._inner = inner
        self._injector = injector
        self._cfg = injector.plan.sample
        self._rng = injector.rng("sample")
        self._elapsed_s = 0.0
        self._last_returned: CounterSample | None = None

    def __getattr__(self, name):
        return getattr(self._inner, name)

    # Explicit pickle hooks: without them, lookup of __getstate__ /
    # __setstate__ would fall through __getattr__ to the wrapped object
    # (wrong state, and infinite recursion while __dict__ is empty).
    def __getstate__(self):
        return self.__dict__.copy()

    def __setstate__(self, state):
        self.__dict__.update(state)

    def start(self) -> None:
        """Start the wrapped sampler."""
        self._inner.start()

    def sample(self, interval_s: float) -> CounterSample:
        """Sample through the fault models (may raise ``SampleDropped``)."""
        sample = self._inner.sample(interval_s)
        self._elapsed_s += interval_s
        cfg, rng = self._cfg, self._rng
        now = self._injector.now_s or self._elapsed_s
        if cfg.drop_prob and rng.random() < cfg.drop_prob:
            self._injector.record("sampler", "drop", now)
            raise SampleDropped(
                f"injected dropped counter sample at t={now:.3f}s"
            )
        if cfg.duplicate_prob and rng.random() < cfg.duplicate_prob:
            if self._last_returned is not None:
                self._injector.record("sampler", "duplicate", now)
                return self._last_returned
        if cfg.garble_prob and rng.random() < cfg.garble_prob:
            magnitude = cfg.garble_magnitude
            factors = {
                event: 10.0 ** rng.uniform(-magnitude, magnitude)
                for event in sample.rates
            }
            sample = CounterSample(
                interval_s=sample.interval_s,
                cycles=sample.cycles,
                rates={
                    event: rate * factors[event]
                    for event, rate in sample.rates.items()
                },
            )
            self._injector.record("sampler", "garble", now)
        elif cfg.overflow_prob and rng.random() < cfg.overflow_prob:
            # A 40-bit wraparound misread: the delta gains a full counter
            # span, which shows up as an absurd per-cycle rate.
            wrap = _COUNTER_SPAN / max(sample.cycles, 1.0)
            sample = CounterSample(
                interval_s=sample.interval_s,
                cycles=sample.cycles,
                rates={
                    event: rate + wrap
                    for event, rate in sample.rates.items()
                },
            )
            self._injector.record("sampler", "overflow", now)
        self._last_returned = sample
        return sample


class FaultyPowerMeter:
    """A power meter whose closed samples may drop out or spike.

    Wraps by composition and corrupts samples *at close time*, so the
    accumulation arithmetic (and the underlying sense/ADC noise streams)
    stay untouched: disabling injection restores the exact original
    sample sequence.
    """

    def __init__(self, inner, injector: FaultInjector):
        self._inner = inner
        self._injector = injector
        self._cfg = injector.plan.meter
        self._rng = injector.rng("meter")
        self._corrupted = len(inner.samples)
        self._drift_started = False

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __getstate__(self):
        return self.__dict__.copy()

    def __setstate__(self, state):
        self.__dict__.update(state)

    def accumulate(self, power_watts: float, duration_s: float) -> None:
        """Feed the wrapped meter, then corrupt newly closed samples."""
        self._inner.accumulate(power_watts, duration_s)
        self._corrupt_new_samples()

    def flush(self) -> None:
        """Flush the wrapped meter, then corrupt the final sample."""
        self._inner.flush()
        self._corrupt_new_samples()

    def _corrupt_new_samples(self) -> None:
        samples = self._inner._samples  # in-package: corrupt at the source
        cfg, rng = self._cfg, self._rng
        while self._corrupted < len(samples):
            index = self._corrupted
            sample = samples[index]
            # Gain drift is deterministic and applied first, so the
            # dropout/spike RNG draws match a drift-free plan exactly.
            gain = cfg.drift_gain(sample.time_s)
            if gain != 1.0:
                sample = dataclasses.replace(
                    sample, watts=sample.watts * gain
                )
                samples[index] = sample
                if not self._drift_started:
                    self._drift_started = True
                    self._injector.record(
                        "meter", "drift", sample.time_s,
                        detail=f"+{cfg.drift_rate_per_s * 100:.2f}%/s "
                        f"from t={cfg.drift_start_s:.2f}s",
                    )
            if cfg.dropout_prob and rng.random() < cfg.dropout_prob:
                samples[index] = dataclasses.replace(sample, watts=0.0)
                self._injector.record("meter", "dropout", sample.time_s)
            elif cfg.spike_prob and rng.random() < cfg.spike_prob:
                factor = rng.uniform(2.0, cfg.spike_factor)
                samples[index] = dataclasses.replace(
                    sample, watts=sample.watts * factor
                )
                self._injector.record(
                    "meter", "spike", sample.time_s, detail=f"x{factor:.2f}"
                )
            self._corrupted += 1


class FaultySpeedStep:
    """A SpeedStep driver whose transitions may fail or stall."""

    def __init__(self, inner, dvfs, injector: FaultInjector):
        self._inner = inner
        self._dvfs = dvfs
        self._injector = injector
        self._cfg = injector.plan.transition
        self._rng = injector.rng("transition")

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __getstate__(self):
        return self.__dict__.copy()

    def __setstate__(self, state):
        self.__dict__.update(state)

    def set_pstate(self, pstate):
        """Request a p-state; injected failures raise, stalls cost time."""
        cfg, rng = self._cfg, self._rng
        now = self._injector.now_s
        if cfg.fail_prob and rng.random() < cfg.fail_prob:
            self._injector.record(
                "driver", "transition_fail", now,
                detail=f"-> {pstate.frequency_mhz:.0f} MHz",
            )
            raise InjectedTransitionError(
                f"injected transition failure to {pstate.frequency_mhz:.0f} "
                "MHz (PLL failed to relock)"
            )
        result = self._inner.set_pstate(pstate)
        if cfg.stall_prob and rng.random() < cfg.stall_prob:
            self._dvfs.charge_dead_time(cfg.stall_s)
            self._injector.record(
                "driver", "transition_stall", now,
                detail=f"+{cfg.stall_s * 1e3:.1f} ms",
            )
        return result

    def set_frequency(self, frequency_mhz: float):
        """Route through :meth:`set_pstate` so faults apply here too."""
        return self.set_pstate(self._inner.table.by_frequency(frequency_mhz))
