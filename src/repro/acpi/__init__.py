"""ACPI-style processor performance state (p-state) definitions.

The paper drives power management exclusively through ACPI-defined
p-states (voltage/frequency pairs) of a Pentium M 755.  This subpackage
provides the p-state objects and the canonical Dothan table from the
paper's Table II.
"""

from repro.acpi.pstates import (
    PState,
    PStateTable,
    PENTIUM_M_755_PSTATES,
    pentium_m_755_table,
)

__all__ = [
    "PState",
    "PStateTable",
    "PENTIUM_M_755_PSTATES",
    "pentium_m_755_table",
]
