"""ACPI p-state objects and the Pentium M 755 p-state table.

A p-state is a (frequency, voltage) operating point.  The canonical table
for the paper's platform -- an Intel Pentium M 755 "Dothan" with Enhanced
SpeedStep -- is the frequency/voltage column of the paper's Table II:

    ========  =======
    f (MHz)   V (V)
    ========  =======
    600       0.998
    800       1.052
    1000      1.100
    1200      1.148
    1400      1.196
    1600      1.244
    1800      1.292
    2000      1.340
    ========  =======

P-states are indexed the ACPI way: **P0 is the highest-performance state**
(2000 MHz here) and the index increases as frequency drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import PStateError
from repro.units import mhz_to_ghz


@dataclass(frozen=True, order=True)
class PState:
    """One ACPI processor performance state (voltage/frequency pair).

    Ordering is by ``(frequency_mhz, voltage)`` so that ``max(states)``
    yields the fastest state.
    """

    frequency_mhz: float
    voltage: float

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise PStateError(f"non-positive frequency: {self.frequency_mhz}")
        if self.voltage <= 0:
            raise PStateError(f"non-positive voltage: {self.voltage}")

    @property
    def frequency_ghz(self) -> float:
        """Core frequency in GHz."""
        return mhz_to_ghz(self.frequency_mhz)

    @property
    def v2f(self) -> float:
        """The CMOS dynamic-power scale factor ``V^2 * f`` (f in GHz).

        Dynamic power is ``alpha * C * V^2 * f`` (paper Eq. 1); this
        property is the p-state-dependent part of that product.
        """
        return self.voltage**2 * self.frequency_ghz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.frequency_mhz:.0f}MHz@{self.voltage:.3f}V"


class PStateTable:
    """An ordered collection of p-states for one processor.

    The table stores states sorted by *descending* frequency so that index
    0 is P0 (fastest), matching ACPI convention.  It offers the lookups the
    governors need: next state up/down, highest state under a frequency,
    and nearest state to a requested frequency.
    """

    def __init__(self, states: Sequence[PState]):
        if not states:
            raise PStateError("p-state table must contain at least one state")
        ordered = sorted(states, key=lambda s: s.frequency_mhz, reverse=True)
        freqs = [s.frequency_mhz for s in ordered]
        if len(set(freqs)) != len(freqs):
            raise PStateError(f"duplicate frequencies in p-state table: {freqs}")
        for faster, slower in zip(ordered, ordered[1:]):
            if faster.voltage < slower.voltage:
                raise PStateError(
                    "voltage must be non-decreasing with frequency: "
                    f"{slower} vs {faster}"
                )
        self._states: tuple[PState, ...] = tuple(ordered)
        self._by_freq = {s.frequency_mhz: s for s in ordered}

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[PState]:
        return iter(self._states)

    def __getitem__(self, index: int) -> PState:
        return self._states[index]

    def __contains__(self, state: PState) -> bool:
        return state in self._states

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PStateTable):
            return NotImplemented
        return self._states == other._states

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(s) for s in self._states)
        return f"PStateTable([{inner}])"

    # -- lookups -------------------------------------------------------------

    @property
    def fastest(self) -> PState:
        """P0: the highest-frequency state."""
        return self._states[0]

    @property
    def slowest(self) -> PState:
        """Pn: the lowest-frequency state."""
        return self._states[-1]

    @property
    def frequencies_mhz(self) -> tuple[float, ...]:
        """All frequencies, descending (P0 first)."""
        return tuple(s.frequency_mhz for s in self._states)

    def index_of(self, state: PState) -> int:
        """ACPI index of ``state`` (0 is fastest)."""
        try:
            return self._states.index(state)
        except ValueError:
            raise PStateError(f"{state} is not in this table") from None

    def by_frequency(self, frequency_mhz: float) -> PState:
        """Exact-frequency lookup."""
        try:
            return self._by_freq[frequency_mhz]
        except KeyError:
            raise PStateError(
                f"no p-state at {frequency_mhz} MHz; "
                f"available: {sorted(self._by_freq)}"
            ) from None

    def nearest(self, frequency_mhz: float) -> PState:
        """The state whose frequency is closest to ``frequency_mhz``."""
        return min(
            self._states, key=lambda s: abs(s.frequency_mhz - frequency_mhz)
        )

    def highest_not_above(self, frequency_mhz: float) -> PState:
        """Fastest state with frequency <= ``frequency_mhz``.

        This implements the static-clocking rule of the paper's Table IV:
        for a power limit, the static frequency is the fastest p-state whose
        worst-case power fits under the limit, found by frequency capping.
        Falls back to the slowest state when every state is above the cap.
        """
        for state in self._states:
            if state.frequency_mhz <= frequency_mhz:
                return state
        return self.slowest

    def step_down(self, state: PState, steps: int = 1) -> PState:
        """Return the state ``steps`` positions slower, clamped at Pn."""
        if steps < 0:
            raise PStateError(f"steps must be non-negative, got {steps}")
        idx = min(self.index_of(state) + steps, len(self._states) - 1)
        return self._states[idx]

    def step_up(self, state: PState, steps: int = 1) -> PState:
        """Return the state ``steps`` positions faster, clamped at P0."""
        if steps < 0:
            raise PStateError(f"steps must be non-negative, got {steps}")
        idx = max(self.index_of(state) - steps, 0)
        return self._states[idx]

    def ascending(self) -> tuple[PState, ...]:
        """States sorted by ascending frequency (Pn first)."""
        return tuple(reversed(self._states))


#: The Pentium M 755 (Dothan) Enhanced SpeedStep operating points from the
#: paper's Table II.
PENTIUM_M_755_PSTATES: tuple[PState, ...] = (
    PState(600.0, 0.998),
    PState(800.0, 1.052),
    PState(1000.0, 1.100),
    PState(1200.0, 1.148),
    PState(1400.0, 1.196),
    PState(1600.0, 1.244),
    PState(1800.0, 1.292),
    PState(2000.0, 1.340),
)


def pentium_m_755_table() -> PStateTable:
    """A fresh :class:`PStateTable` with the Pentium M 755 states."""
    return PStateTable(PENTIUM_M_755_PSTATES)
