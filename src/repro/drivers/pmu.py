"""Simulated Pentium M performance-monitoring unit (PMU).

The Pentium M has exactly **two** programmable 40-bit counters, each
driven by an event-select register choosing among ~92 EMON events (paper
§III-B).  The two-counter budget is a real design constraint the paper
leans on: PerformanceMaximizer needs only ``INST_DECODED``;
PowerSave needs ``INST_RETIRED`` + ``DCU_MISS_OUTSTANDING`` -- both fit.
Policies that want more events must *multiplex* (rotate event sets across
sampling periods, as Isci et al. do on the Pentium 4); an
:class:`EventMultiplexer` is provided for such extensions.

The PMU advances when the machine calls :meth:`PMU.tick` with elapsed
cycles and the current event rates.  Counters wrap at 2^40 like the real
hardware; :class:`CounterSnapshot` handles wrap-aware deltas, and the
sampling layer is tested against wrap events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.drivers.msr import (
    IA32_PERFEVTSEL0,
    IA32_PERFEVTSEL1,
    IA32_PMC0,
    IA32_PMC1,
    IA32_TIME_STAMP_COUNTER,
    MSRFile,
)
from repro.errors import PMUError
from repro.platform.events import (
    COUNTER_WIDTH_BITS,
    Event,
    EventRates,
    NUM_PROGRAMMABLE_COUNTERS,
    REAL_PMU_EVENT_MENU_SIZE,
)

_COUNTER_MASK = (1 << COUNTER_WIDTH_BITS) - 1
_EVTSEL_ADDRESSES = (IA32_PERFEVTSEL0, IA32_PERFEVTSEL1)
_PMC_ADDRESSES = (IA32_PMC0, IA32_PMC1)

#: Enable bit in the event-select register (bit 22 on real hardware).
_EVTSEL_ENABLE = 1 << 22

_CODE_TO_EVENT = {event.code: event for event in Event}


@dataclass(frozen=True)
class CounterSnapshot:
    """A point-in-time read of the PMU state.

    Captures both programmable counters, the cycle count and the TSC so
    that rates can be formed from wrap-aware deltas.
    """

    events: tuple[Event | None, Event | None]
    values: tuple[int, int]
    cycles: int
    tsc: int

    def delta(self, later: "CounterSnapshot") -> tuple[float, float, float]:
        """(count0, count1, cycles) elapsed between self and ``later``.

        Handles single wrap-around of the 40-bit counters; raises if the
        configured events changed between the snapshots (the delta would
        be meaningless).
        """
        if self.events != later.events:
            raise PMUError(
                "counter events were reprogrammed between snapshots: "
                f"{self.events} -> {later.events}"
            )
        counts = []
        for before, after in zip(self.values, later.values):
            diff = (after - before) & _COUNTER_MASK
            counts.append(float(diff))
        cycles = (later.cycles - self.cycles) & _COUNTER_MASK
        return counts[0], counts[1], float(cycles)


class PMU:
    """The two-counter programmable performance monitoring unit."""

    #: Exposed for documentation parity with the real part.
    EVENT_MENU_SIZE = REAL_PMU_EVENT_MENU_SIZE
    NUM_COUNTERS = NUM_PROGRAMMABLE_COUNTERS

    def __init__(self, msr: MSRFile):
        self._msr = msr
        self._events: list[Event | None] = [None, None]
        self._cycles: int = 0
        self._cycle_residual: float = 0.0
        self._residuals: list[float] = [0.0, 0.0]
        for addr in (*_EVTSEL_ADDRESSES, *_PMC_ADDRESSES):
            msr.map_register(addr, 0)
        if not msr.is_mapped(IA32_TIME_STAMP_COUNTER):
            msr.map_register(IA32_TIME_STAMP_COUNTER, 0, writable=False)

    # -- driver-facing API ---------------------------------------------------

    def program(self, counter: int, event: Event) -> None:
        """Program ``counter`` (0 or 1) to count ``event``.

        Writing the event-select register clears the counter, as the
        paper's monitoring driver does on reconfiguration.
        """
        self._check_counter(counter)
        if not isinstance(event, Event):
            raise PMUError(f"unknown event {event!r}")
        self._msr.wrmsr(_EVTSEL_ADDRESSES[counter], event.code | _EVTSEL_ENABLE)
        self._msr.wrmsr(_PMC_ADDRESSES[counter], 0)
        self._residuals[counter] = 0.0
        self._events[counter] = event

    def program_events(self, events: Sequence[Event]) -> None:
        """Program both counters at once.

        Raises :class:`PMUError` when more events are requested than the
        hardware has counters -- the constraint that motivates the
        paper's "small number of counters" design point.
        """
        if len(events) > self.NUM_COUNTERS:
            raise PMUError(
                f"requested {len(events)} events but the Pentium M has "
                f"only {self.NUM_COUNTERS} programmable counters; "
                "use an EventMultiplexer"
            )
        for index, event in enumerate(events):
            self.program(index, event)
        for index in range(len(events), self.NUM_COUNTERS):
            self.disable(index)

    def disable(self, counter: int) -> None:
        """Stop counting on ``counter``."""
        self._check_counter(counter)
        self._msr.wrmsr(_EVTSEL_ADDRESSES[counter], 0)
        self._events[counter] = None

    def configured_event(self, counter: int) -> Event | None:
        """The event currently selected on ``counter`` (None if disabled)."""
        self._check_counter(counter)
        return self._events[counter]

    def read(self, counter: int) -> int:
        """Raw 40-bit counter value."""
        self._check_counter(counter)
        return self._msr.rdmsr(_PMC_ADDRESSES[counter])

    def snapshot(self) -> CounterSnapshot:
        """Atomically capture both counters, the cycle count and TSC."""
        return CounterSnapshot(
            events=(self._events[0], self._events[1]),
            values=(self.read(0), self.read(1)),
            cycles=self._cycles & _COUNTER_MASK,
            tsc=self._msr.rdmsr(IA32_TIME_STAMP_COUNTER),
        )

    # -- hardware-facing API ---------------------------------------------------

    def tick(self, cycles: float, rates: EventRates) -> None:
        """Advance the PMU by ``cycles`` of execution at ``rates``.

        Called by the machine, not by driver code.  Counter increments
        are the expected event counts (rate x cycles); fractional parts
        are carried across ticks in a residual so that long-run rates
        stay exact.
        """
        if cycles < 0:
            raise PMUError("cannot tick backwards")
        self._cycle_residual += cycles
        whole_cycles = int(self._cycle_residual)
        self._cycle_residual -= whole_cycles
        self._cycles += whole_cycles
        self._msr.poke(
            IA32_TIME_STAMP_COUNTER,
            (self._msr.rdmsr(IA32_TIME_STAMP_COUNTER) + whole_cycles)
            & ((1 << 64) - 1),
        )
        for counter, event in enumerate(self._events):
            if event is None:
                continue
            self._residuals[counter] += rates.rate(event) * cycles
            increment = int(self._residuals[counter])
            self._residuals[counter] -= increment
            raw = self._msr.rdmsr(_PMC_ADDRESSES[counter])
            self._msr.poke(
                _PMC_ADDRESSES[counter],
                (raw + increment) & _COUNTER_MASK,
            )

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _check_counter(counter: int) -> None:
        if counter not in (0, 1):
            raise PMUError(
                f"counter index {counter} out of range; the Pentium M has "
                f"counters 0 and 1 only"
            )

    @staticmethod
    def event_for_code(code: int) -> Event:
        """Resolve an EMON event-select code to an :class:`Event`."""
        try:
            return _CODE_TO_EVENT[code]
        except KeyError:
            raise PMUError(
                f"event code {code:#x} is not implemented in the simulated "
                f"menu (the real part documents {REAL_PMU_EVENT_MENU_SIZE} "
                "events; see repro.platform.events)"
            ) from None


class EventMultiplexer:
    """Rotates groups of events through the two physical counters.

    Extension utility (not used by PM/PS, which fit in two counters):
    policies needing more than two events program one *group* per
    sampling period and scale counts by the duty cycle, the standard
    counter-rotation technique (Isci et al., cited in the paper's related
    work).
    """

    def __init__(self, pmu: PMU, groups: Sequence[Sequence[Event]]):
        if not groups:
            raise PMUError("multiplexer needs at least one event group")
        for group in groups:
            if len(group) > PMU.NUM_COUNTERS:
                raise PMUError(
                    f"group {list(group)} exceeds the two-counter budget"
                )
        self._pmu = pmu
        self._groups = [tuple(g) for g in groups]
        self._index = -1

    @property
    def duty_cycle(self) -> float:
        """Fraction of time each group is actually counted."""
        return 1.0 / len(self._groups)

    @property
    def current_group(self) -> tuple[Event, ...]:
        """The group programmed by the last :meth:`rotate` call."""
        if self._index < 0:
            raise PMUError("multiplexer has not been rotated yet")
        return self._groups[self._index]

    def rotate(self) -> tuple[Event, ...]:
        """Program the next group and return it."""
        self._index = (self._index + 1) % len(self._groups)
        group = self._groups[self._index]
        self._pmu.program_events(group)
        return group

    def scale(self, count: float) -> float:
        """Extrapolate a counted value to the full interval."""
        return count / self.duty_cycle
