"""Simulated low-level driver path: MSRs, PMU, Enhanced SpeedStep.

The paper implements kernel drivers for Linux/Windows that (a) read the
two Pentium M performance counters every 10 ms and (b) write the
machine-specific registers controlling the PLL multiplier and the VID
pins of the voltage regulator (paper §III-B).  This subpackage recreates
that control path faithfully enough that the user-level power-management
software above it is structured like the paper's prototype:

* :mod:`repro.drivers.msr` -- a model-specific-register file,
* :mod:`repro.drivers.pmu` -- the two-counter PMU with event-select
  registers, 40-bit wrap-around and event multiplexing support,
* :mod:`repro.drivers.speedstep` -- PERF_CTL-style p-state actuation.
"""

from repro.drivers.msr import MSRFile
from repro.drivers.pmu import PMU, CounterSnapshot, EventMultiplexer
from repro.drivers.speedstep import SpeedStepDriver

__all__ = [
    "MSRFile",
    "PMU",
    "CounterSnapshot",
    "EventMultiplexer",
    "SpeedStepDriver",
]
