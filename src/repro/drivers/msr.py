"""A simulated model-specific register (MSR) file.

Both the PMU and the SpeedStep driver are register-programmed on real
hardware; routing their state through a shared MSR file keeps the
simulated control path shaped like the paper's kernel drivers (rdmsr /
wrmsr on a handful of architectural addresses).

Only the addresses that the drivers declare are mapped; stray accesses
raise :class:`~repro.errors.MSRError`, the way a real rdmsr of an
unimplemented address raises #GP.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import MSRError

# Architectural MSR addresses used by the simulated drivers.
IA32_PERF_STATUS = 0x198  #: current p-state (read-only status)
IA32_PERF_CTL = 0x199  #: requested p-state (write to transition)
IA32_PERFEVTSEL0 = 0x186  #: event select, counter 0
IA32_PERFEVTSEL1 = 0x187  #: event select, counter 1
IA32_PMC0 = 0xC1  #: programmable counter 0
IA32_PMC1 = 0xC2  #: programmable counter 1
IA32_TIME_STAMP_COUNTER = 0x10  #: TSC


class MSRFile:
    """Dictionary-backed MSR space with per-register access hooks.

    Drivers ``map_register`` their addresses, optionally supplying read
    and write hooks so that, e.g., a write to ``IA32_PERF_CTL`` triggers
    an actual p-state transition in the DVFS controller.
    """

    def __init__(self) -> None:
        self._values: Dict[int, int] = {}
        self._read_hooks: Dict[int, Callable[[], int]] = {}
        self._write_hooks: Dict[int, Callable[[int], None]] = {}
        self._writable: Dict[int, bool] = {}

    def map_register(
        self,
        address: int,
        initial: int = 0,
        writable: bool = True,
        read_hook: Callable[[], int] | None = None,
        write_hook: Callable[[int], None] | None = None,
    ) -> None:
        """Declare ``address`` as an implemented MSR."""
        if address in self._values:
            raise MSRError(f"MSR {address:#x} is already mapped")
        self._values[address] = initial
        self._writable[address] = writable
        if read_hook is not None:
            self._read_hooks[address] = read_hook
        if write_hook is not None:
            self._write_hooks[address] = write_hook

    def is_mapped(self, address: int) -> bool:
        """Whether ``address`` is an implemented register."""
        return address in self._values

    def rdmsr(self, address: int) -> int:
        """Read an MSR; raises :class:`MSRError` for unmapped addresses."""
        if address not in self._values:
            raise MSRError(f"rdmsr of unimplemented MSR {address:#x}")
        hook = self._read_hooks.get(address)
        if hook is not None:
            self._values[address] = hook()
        return self._values[address]

    def wrmsr(self, address: int, value: int) -> None:
        """Write an MSR; raises for unmapped or read-only addresses."""
        if address not in self._values:
            raise MSRError(f"wrmsr of unimplemented MSR {address:#x}")
        if not self._writable[address]:
            raise MSRError(f"MSR {address:#x} is read-only")
        if value < 0:
            raise MSRError("MSR values are unsigned")
        self._values[address] = value
        hook = self._write_hooks.get(address)
        if hook is not None:
            hook(value)

    def poke(self, address: int, value: int) -> None:
        """Hardware-side state update (bypasses the writable check).

        Used by the simulated hardware (PMU ticking, status updates), not
        by driver code.
        """
        if address not in self._values:
            raise MSRError(f"poke of unimplemented MSR {address:#x}")
        self._values[address] = value
