"""Enhanced SpeedStep driver: PERF_CTL-style p-state actuation.

The paper's prototype changes frequency/voltage "by configuring the
machine specific registers that control the internal PLL of the processor
and the external voltage identification signals" (§III-B).  This driver
reproduces that interface: policies write an encoded (frequency-ratio,
VID) word to ``IA32_PERF_CTL``; the write hook drives the
:class:`~repro.platform.dvfs.DvfsController`, and ``IA32_PERF_STATUS``
reads back the currently active p-state.

Encoding (matches the real Pentium M layout in spirit):
bits 15..8 = bus-ratio (frequency / 100 MHz), bits 7..0 = VID code
(voltage in 16 mV steps above 0.7 V).
"""

from __future__ import annotations

from repro.acpi.pstates import PState, PStateTable
from repro.drivers.msr import IA32_PERF_CTL, IA32_PERF_STATUS, MSRFile
from repro.errors import TransitionError
from repro.platform.dvfs import DvfsController, TransitionResult

_VID_STEP_V = 0.016
_VID_BASE_V = 0.700


def encode_pstate(pstate: PState) -> int:
    """Encode a p-state into a PERF_CTL word."""
    ratio = int(round(pstate.frequency_mhz / 100.0))
    vid = int(round((pstate.voltage - _VID_BASE_V) / _VID_STEP_V))
    if not 0 <= vid <= 0xFF:
        raise TransitionError(f"voltage {pstate.voltage} not VID-encodable")
    if not 0 <= ratio <= 0xFF:
        raise TransitionError(f"frequency {pstate.frequency_mhz} not encodable")
    return (ratio << 8) | vid


def decode_pstate(word: int, table: PStateTable) -> PState:
    """Decode a PERF_CTL word to the nearest table p-state.

    Real hardware clamps illegal requests to supported operating points;
    we resolve to the nearest table frequency and then verify the VID is
    consistent, raising on grossly inconsistent encodings.
    """
    ratio = (word >> 8) & 0xFF
    frequency_mhz = ratio * 100.0
    state = table.nearest(frequency_mhz)
    if abs(state.frequency_mhz - frequency_mhz) > 50.0:
        raise TransitionError(
            f"PERF_CTL requests {frequency_mhz} MHz, not a supported ratio"
        )
    return state


class SpeedStepDriver:
    """User-level-facing DVFS driver mirroring the paper's control path."""

    def __init__(self, msr: MSRFile, dvfs: DvfsController):
        self._msr = msr
        self._dvfs = dvfs
        self._last_transition: TransitionResult | None = None
        msr.map_register(
            IA32_PERF_STATUS,
            initial=encode_pstate(dvfs.current),
            writable=False,
            # Bound method, not a lambda: the hook must survive the
            # checkpoint pickle along with the rest of the machine graph.
            read_hook=self._read_perf_status,
        )
        msr.map_register(
            IA32_PERF_CTL,
            initial=encode_pstate(dvfs.current),
            write_hook=self._on_perf_ctl_write,
        )

    @property
    def table(self) -> PStateTable:
        """The processor's p-state table."""
        return self._dvfs.table

    @property
    def current_pstate(self) -> PState:
        """Active p-state, read back through IA32_PERF_STATUS."""
        return decode_pstate(self._msr.rdmsr(IA32_PERF_STATUS), self._dvfs.table)

    @property
    def last_transition(self) -> TransitionResult | None:
        """The most recent transition result (None before any request)."""
        return self._last_transition

    def set_pstate(self, pstate: PState) -> TransitionResult:
        """Request a p-state through the PERF_CTL register path."""
        self._msr.wrmsr(IA32_PERF_CTL, encode_pstate(pstate))
        assert self._last_transition is not None
        return self._last_transition

    def set_frequency(self, frequency_mhz: float) -> TransitionResult:
        """Request the table p-state at exactly ``frequency_mhz``."""
        return self.set_pstate(self._dvfs.table.by_frequency(frequency_mhz))

    def _read_perf_status(self) -> int:
        return encode_pstate(self._dvfs.current)

    def _on_perf_ctl_write(self, word: int) -> None:
        target = decode_pstate(word, self._dvfs.table)
        self._last_transition = self._dvfs.request(target)
