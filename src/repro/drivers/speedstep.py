"""Enhanced SpeedStep driver: PERF_CTL-style p-state actuation.

The paper's prototype changes frequency/voltage "by configuring the
machine specific registers that control the internal PLL of the processor
and the external voltage identification signals" (§III-B).  This driver
reproduces that interface: policies write an encoded (frequency-ratio,
VID) word to ``IA32_PERF_CTL``; the write hook drives the
:class:`~repro.platform.dvfs.DvfsController`, and ``IA32_PERF_STATUS``
reads back the currently active p-state.

Encoding (matches the real Pentium M layout in spirit):
bits 15..8 = bus-ratio (frequency / 100 MHz), bits 7..0 = VID code
(voltage in 16 mV steps above 0.7 V).
"""

from __future__ import annotations

from typing import Sequence

from repro.acpi.pstates import PState, PStateTable
from repro.drivers.msr import IA32_PERF_CTL, IA32_PERF_STATUS, MSRFile
from repro.errors import DriverError, TransitionError
from repro.platform.dvfs import DvfsController, TransitionResult

_VID_STEP_V = 0.016
_VID_BASE_V = 0.700


def encode_pstate(pstate: PState) -> int:
    """Encode a p-state into a PERF_CTL word."""
    ratio = int(round(pstate.frequency_mhz / 100.0))
    vid = int(round((pstate.voltage - _VID_BASE_V) / _VID_STEP_V))
    if not 0 <= vid <= 0xFF:
        raise TransitionError(f"voltage {pstate.voltage} not VID-encodable")
    if not 0 <= ratio <= 0xFF:
        raise TransitionError(f"frequency {pstate.frequency_mhz} not encodable")
    return (ratio << 8) | vid


def decode_pstate(word: int, table: PStateTable) -> PState:
    """Decode a PERF_CTL word to the nearest table p-state.

    Real hardware clamps illegal requests to supported operating points;
    we resolve to the nearest table frequency and then verify the VID is
    consistent, raising on grossly inconsistent encodings.
    """
    ratio = (word >> 8) & 0xFF
    frequency_mhz = ratio * 100.0
    state = table.nearest(frequency_mhz)
    if abs(state.frequency_mhz - frequency_mhz) > 50.0:
        raise TransitionError(
            f"PERF_CTL requests {frequency_mhz} MHz, not a supported ratio"
        )
    return state


class SpeedStepDriver:
    """User-level-facing DVFS driver mirroring the paper's control path."""

    def __init__(self, msr: MSRFile, dvfs: DvfsController):
        self._msr = msr
        self._dvfs = dvfs
        self._last_transition: TransitionResult | None = None
        msr.map_register(
            IA32_PERF_STATUS,
            initial=encode_pstate(dvfs.current),
            writable=False,
            # Bound method, not a lambda: the hook must survive the
            # checkpoint pickle along with the rest of the machine graph.
            read_hook=self._read_perf_status,
        )
        msr.map_register(
            IA32_PERF_CTL,
            initial=encode_pstate(dvfs.current),
            write_hook=self._on_perf_ctl_write,
        )

    @property
    def table(self) -> PStateTable:
        """The processor's p-state table."""
        return self._dvfs.table

    @property
    def current_pstate(self) -> PState:
        """Active p-state, read back through IA32_PERF_STATUS."""
        return decode_pstate(self._msr.rdmsr(IA32_PERF_STATUS), self._dvfs.table)

    @property
    def last_transition(self) -> TransitionResult | None:
        """The most recent transition result (None before any request)."""
        return self._last_transition

    def set_pstate(
        self, pstate: PState, domain: int | None = None
    ) -> TransitionResult:
        """Request a p-state through the PERF_CTL register path.

        A plain driver owns exactly one p-state domain (domain 0);
        ``domain`` exists so policy code can address single- and
        multicore drivers uniformly.  Anything other than ``None`` / 0
        is a caller bug and raises rather than silently actuating the
        wrong package.
        """
        if domain not in (None, 0):
            raise DriverError(
                f"single-domain SpeedStep driver has no domain {domain!r}; "
                "only domain 0 exists (use DomainSpeedStepDriver for "
                "multi-domain machines)"
            )
        self._msr.wrmsr(IA32_PERF_CTL, encode_pstate(pstate))
        assert self._last_transition is not None
        return self._last_transition

    def set_frequency(
        self, frequency_mhz: float, domain: int | None = None
    ) -> TransitionResult:
        """Request the table p-state at exactly ``frequency_mhz``."""
        return self.set_pstate(
            self._dvfs.table.by_frequency(frequency_mhz), domain=domain
        )

    def _read_perf_status(self) -> int:
        return encode_pstate(self._dvfs.current)

    def _on_perf_ctl_write(self, word: int) -> None:
        target = decode_pstate(word, self._dvfs.table)
        self._last_transition = self._dvfs.request(target)


class DomainSpeedStepDriver:
    """P-state actuation over explicit frequency domains.

    A multicore package exposes one or more p-state domains: on
    package-level DVFS (the Pentium M-era reality) all cores share one
    PLL/VRM and form a single domain; per-core DVFS gives each core its
    own.  Each domain groups the member cores' single-core
    :class:`SpeedStepDriver` instances and actuates them together.

    When more than one domain exists, a domain-less ``set_pstate`` call
    is ambiguous and raises a pointed :class:`~repro.errors.DriverError`
    instead of silently actuating every core -- the failure mode the
    single-core ``cpufreq`` layer used to have.  With exactly one
    domain, domain 0 is the backward-compatible default.
    """

    def __init__(self, domains: Sequence[Sequence[SpeedStepDriver]]):
        if not domains or any(not group for group in domains):
            raise DriverError("every p-state domain needs at least one core")
        self._domains = tuple(tuple(group) for group in domains)
        tables = {id(group[0].table): group[0].table for group in self._domains}
        if len(tables) > 1 and len({
            tuple(t.frequencies_mhz) for t in tables.values()
        }) > 1:
            raise DriverError("all domains must share one p-state table")

    @property
    def n_domains(self) -> int:
        """Number of independently actuatable frequency domains."""
        return len(self._domains)

    @property
    def table(self) -> PStateTable:
        """The shared p-state table."""
        return self._domains[0][0].table

    def drivers(self, domain: int = 0) -> tuple[SpeedStepDriver, ...]:
        """The member core drivers of ``domain``."""
        self._check_domain(domain)
        return self._domains[domain]

    def current_pstate(self, domain: int = 0) -> PState:
        """Active p-state of ``domain`` (its lead core's PERF_STATUS)."""
        self._check_domain(domain)
        return self._domains[domain][0].current_pstate

    def set_pstate(
        self, pstate: PState, domain: int | None = None
    ) -> TransitionResult:
        """Actuate every core in ``domain``; returns the lead transition."""
        domain = self._resolve_domain(domain)
        results = [
            driver.set_pstate(pstate) for driver in self._domains[domain]
        ]
        return results[0]

    def set_frequency(
        self, frequency_mhz: float, domain: int | None = None
    ) -> TransitionResult:
        """Actuate ``domain`` to the table p-state at ``frequency_mhz``."""
        return self.set_pstate(
            self.table.by_frequency(frequency_mhz), domain=domain
        )

    def _resolve_domain(self, domain: int | None) -> int:
        if domain is None:
            if len(self._domains) == 1:
                return 0
            raise DriverError(
                "p-state actuation on a multicore machine needs an explicit "
                f"domain id: this driver has {len(self._domains)} domains "
                f"(valid ids 0..{len(self._domains) - 1}); a domain-less "
                "call would silently retune every core"
            )
        self._check_domain(domain)
        return domain

    def _check_domain(self, domain: int) -> None:
        if not isinstance(domain, int) or not 0 <= domain < len(self._domains):
            raise DriverError(
                f"unknown p-state domain {domain!r}; valid ids are "
                f"0..{len(self._domains) - 1}"
            )
