"""Legacy setup shim.

The authoritative metadata lives in pyproject.toml; this file exists so
that environments without the `wheel` package (where PEP 660 editable
installs fail) can still do `pip install -e . --no-use-pep517`.
"""
from setuptools import setup

setup()
