#!/usr/bin/env python3
"""Walkthrough: deriving the paper's models from scratch (paper §III).

Reruns the full model-construction pipeline on the simulated platform:

1. characterize the 12 MS-Loops microbenchmarks at all 8 p-states
   through the two-counter PMU and the sense-resistor power rig;
2. fit the per-p-state linear power model (regenerating Table II);
3. optimize the Eq. 3 performance model's threshold/exponent and show
   the exponent error curve whose local minima (the paper found 0.81
   and 0.59) drive the art/mcf floor-violation story of §IV-B2.
"""

from repro.core.models.power import PAPER_TABLE_II
from repro.core.models.training import (
    collect_training_data,
    exponent_error_curve,
    fit_performance_model,
    fit_power_model,
    local_minima,
    summarize_points,
)


def main() -> None:
    print("characterizing MS-Loops (4 loops x 3 footprints x 8 p-states,"
          " two counter passes each)...")
    points = collect_training_data()
    spread = summarize_points(points)
    print(f"collected {len(points)} training points; "
          f"DPC spread at 2 GHz: {spread[2000.0][0]:.2f}..{spread[2000.0][1]:.2f}\n")

    model = fit_power_model(points)
    print("Table II -- fitted vs paper:")
    print(f"{'MHz':>6} {'alpha':>7} {'paper':>7} {'beta':>7} {'paper':>7}")
    for freq in model.frequencies_mhz:
        c = model.coefficients(freq)
        p = PAPER_TABLE_II[freq]
        print(f"{freq:6.0f} {c.alpha:7.2f} {p.alpha:7.2f} "
              f"{c.beta:7.2f} {p.beta:7.2f}")

    print("\noptimizing the Eq. 3 performance model...")
    perf = fit_performance_model(points)
    print(f"fitted: threshold={perf.dcu_threshold:.2f}, "
          f"exponent={perf.memory_exponent:.2f} "
          "(paper: threshold 1.21, exponent 0.81 / 0.59)")

    curve = exponent_error_curve(points)
    minima = local_minima(curve)
    print(f"exponent error-curve local minima at threshold 1.21: "
          f"{[round(m, 2) for m in minima]}")
    coarse = curve[::7]
    print("error curve (exponent: mean rel. error):")
    print("  " + "  ".join(f"{e:.2f}:{err:.3f}" for e, err in coarse))


if __name__ == "__main__":
    main()
