#!/usr/bin/env python3
"""Scenario: the power meter drifts out of calibration mid-run.

The paper's models are calibrated offline against a bench supply
(§IV-B2) and then trusted forever.  Real sense-resistor rigs are not so
polite: temperature and ageing walk the gain away from the calibration
point.  Here the meter starts reading high at t=1 s (+4%/s, saturating
at +35%), while PM enforces a 13.5 W limit on the FMA-256KB worst-case
stream.

Two runs of the same workload under the same drifting meter:

* a *frozen* PM trusts the offline model and keeps picking frequencies
  whose **estimated** power sits just under the limit -- but the meter
  now reports those same frequencies well above it;
* an *adaptive* PM watches the residual between estimated and measured
  power.  A Page-Hinkley detector confirms the drift, a recursive
  least-squares refit recalibrates the per-p-state coefficients, and
  the recalibrated model is hot-swapped in (with rollback protection)
  -- so PM backs off and holds the limit as measured.

Everything is seeded: run it twice, get the same story twice.
"""

from repro import AdaptationConfig, AdaptationManager, PerformanceMaximizer
from repro.exec import (
    ExperimentConfig,
    RunCell,
    as_governor_spec,
    execute_cell,
)
from repro.exec.cache import trained_power_model
from repro.faults.plan import FaultPlan, MeterFaults
from repro.workloads.microbenchmarks import worst_case_workload

LIMIT_W = 13.5
DRIFT = MeterFaults(drift_rate_per_s=0.04, drift_start_s=1.0,
                    drift_max_gain=0.35)


def violations_by_window(result, width_s=2.0):
    """Fraction of samples above the limit per ``width_s`` window."""
    windows = {}
    for sample in result.samples:
        key = int(sample.time_s // width_s)
        total, bad = windows.get(key, (0, 0))
        windows[key] = (total + 1, bad + (sample.watts > LIMIT_W))
    return {k: bad / total for k, (total, bad) in sorted(windows.items())}


def main() -> None:
    config = ExperimentConfig(scale=64.0, seed=0)
    model = trained_power_model(seed=config.seed)
    workload = worst_case_workload()
    plan = FaultPlan(seed=config.seed, meter=DRIFT)

    def pm(table):
        return PerformanceMaximizer(table, model, LIMIT_W)

    print(f"meter gain drifts +{100 * DRIFT.drift_rate_per_s:.0f}%/s from "
          f"t={DRIFT.drift_start_s:.0f}s (cap +{100 * DRIFT.drift_max_gain:.0f}%); "
          f"PM limit {LIMIT_W} W\n")

    cell = RunCell(workload=workload, governor=as_governor_spec(pm))
    frozen = execute_cell(cell, config, fault_plan=plan)

    manager = AdaptationManager(AdaptationConfig())
    adaptive = execute_cell(cell, config, fault_plan=plan,
                            adaptation=manager)

    print(f"{'window':>10} {'frozen viol%':>13} {'adaptive viol%':>15}")
    frozen_windows = violations_by_window(frozen)
    adaptive_windows = violations_by_window(adaptive)
    for key in sorted(frozen_windows):
        label = f"{2 * key}-{2 * key + 2}s"
        print(f"{label:>10} {100 * frozen_windows[key]:13.1f} "
              f"{100 * adaptive_windows.get(key, 0.0):15.1f}")

    summary = manager.summary()
    print(f"\nfrozen  : {frozen.violation_fraction(LIMIT_W):6.1%} of samples "
          f"above {LIMIT_W} W")
    print(f"adaptive: {adaptive.violation_fraction(LIMIT_W):6.1%} of samples "
          f"above {LIMIT_W} W")
    print(f"\nadaptation: {summary['drift_detections']} drift detections, "
          f"{summary['recalibrations']} recalibrations, "
          f"{summary['rollbacks']} rollbacks")

    print("\nmodel lineage (the registry keeps every refit auditable):")
    for version in manager.registry.versions:
        provenance = version.provenance
        source = provenance.get("source", "?")
        extra = ""
        if source == "rls_recalibration":
            refit = ", ".join(f"{float(f):.0f}"
                              for f in provenance.get("refit_mhz", []))
            extra = f" (refit {refit} MHz at t={version.created_at_s:.2f}s)"
        marker = " <- active" if version.version == (
            manager.registry.active_version) else ""
        print(f"  v{version.version}: {source}{extra}{marker}")


if __name__ == "__main__":
    main()
