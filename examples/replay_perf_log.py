#!/usr/bin/env python3
"""Scenario: replay a foreign ``perf stat`` log on the paper's platform.

An operator captured ``perf stat -I 100 -x,`` on a 2.4 GHz production
web server (the checked-in ``data/web_perf_stat.csv``) and wants to
know how the paper's governors would have handled that workload.  The
flow:

1. ingest the raw log into a CounterTrace (with a diagnostics report),
2. calibrate it to the Pentium M counter envelope -- the foreign
   2.4 GHz clock snaps to the nearest supported p-state,
3. characterize it through the Eq. 3 memory-/core-bound classifier,
4. replay it under candidate governors and compare.
"""

import os

from repro import (
    FixedFrequency,
    Machine,
    MachineConfig,
    PerformanceModel,
    PowerManagementController,
    PowerSave,
)
from repro.traces import (
    calibrate_trace,
    characterize_trace,
    ingest_file,
)
from repro.workloads.traces import workload_from_trace

LOG = os.path.join(os.path.dirname(__file__), "data", "web_perf_stat.csv")


def run(workload, make_governor, seed=0):
    machine = Machine(MachineConfig(seed=seed))
    controller = PowerManagementController(
        machine, make_governor(machine.config.table)
    )
    return controller.run(workload)


def main() -> None:
    # 1. ingest the raw perf-stat log.
    trace, report = ingest_file(LOG, name="web-prod")
    print(report.render())
    print()

    # 2. calibrate to the platform envelope (2400 -> 2000 MHz, etc.).
    calibrated, calibration = calibrate_trace(trace)
    print(calibration.render())
    print()

    # 3. classify: is last week's workload memory- or core-bound?
    character = characterize_trace(calibrated)
    kind = "memory-bound" if character.memory_bound else "core-bound"
    print(f"{character.name}: {kind} "
          f"(DCU/IPC {character.dcu_per_ipc:.2f}, "
          f"{character.memory_time_fraction:.0%} of time memory-bound)\n")

    # 4. replay under candidate governors.
    replay = workload_from_trace(calibrated)
    baseline = run(replay, lambda t: FixedFrequency(t, 2000.0))
    print(f"{'candidate':>12} {'time s':>8} {'energy J':>9} {'perf':>6}")
    for floor in (0.9, 0.8):
        candidate = run(
            replay,
            lambda t, f=floor: PowerSave(
                t, PerformanceModel.paper_primary(), f
            ),
        )
        perf = baseline.duration_s / candidate.duration_s
        print(f"{f'PS {floor:.0%}':>12} {candidate.duration_s:8.3f} "
              f"{candidate.measured_energy_j:9.2f} {perf:6.2f}")


if __name__ == "__main__":
    main()
