#!/usr/bin/env python3
"""Quickstart: application-aware power management in a dozen lines.

Runs the ammp benchmark (alternating compute/memory phases) three ways
on the simulated Pentium M 755:

* unconstrained at 2 GHz,
* under PerformanceMaximizer with a 14.5 W power limit,
* under PowerSave with an 80% performance floor,

and prints what each policy traded.
"""

from repro import (
    FixedFrequency,
    LinearPowerModel,
    Machine,
    MachineConfig,
    PerformanceMaximizer,
    PerformanceModel,
    PowerManagementController,
    PowerSave,
    get_workload,
)

WORKLOAD = get_workload("ammp").scaled(0.5)


def run(make_governor):
    machine = Machine(MachineConfig(seed=0))
    governor = make_governor(machine.config.table)
    controller = PowerManagementController(machine, governor)
    return controller.run(WORKLOAD)


def main() -> None:
    model = LinearPowerModel.paper_model()  # the paper's Table II
    runs = {
        "unconstrained 2 GHz": run(lambda t: FixedFrequency(t, 2000.0)),
        "PM @ 14.5 W": run(lambda t: PerformanceMaximizer(t, model, 14.5)),
        "PS @ 80% floor": run(
            lambda t: PowerSave(t, PerformanceModel.paper_primary(), 0.80)
        ),
    }
    baseline = runs["unconstrained 2 GHz"]
    print(f"workload: {WORKLOAD.name} "
          f"({WORKLOAD.total_instructions / 1e9:.1f}G instructions)\n")
    header = (
        f"{'policy':22} {'time s':>8} {'mean W':>8} {'energy J':>9} "
        f"{'perf':>6} {'savings':>8}"
    )
    print(header)
    print("-" * len(header))
    for label, result in runs.items():
        perf = baseline.duration_s / result.duration_s
        savings = 1.0 - result.measured_energy_j / baseline.measured_energy_j
        print(
            f"{label:22} {result.duration_s:8.2f} {result.mean_power_w:8.2f} "
            f"{result.measured_energy_j:9.2f} {perf:6.2f} {savings:8.1%}"
        )
    pm = runs["PM @ 14.5 W"]
    print(
        f"\nPM stayed under its limit for "
        f"{1 - pm.violation_fraction(14.5):.1%} of 100 ms windows "
        f"and used p-states: "
        + ", ".join(f"{f:.0f} MHz" for f in sorted(pm.residency_s))
    )


if __name__ == "__main__":
    main()
