#!/usr/bin/env python3
"""Scenario: record a counter trace in production, replay it in the lab.

A fleet operator wants to evaluate PowerSave against last week's
workload without re-running the application.  The flow:

1. record the counter signature of a live (here: simulated) run,
2. persist it as CSV,
3. reconstruct a replayable workload from the trace,
4. evaluate candidate governors against the replay.

The replay preserves the counter signature -- which is all the paper's
governors ever see -- so policy decisions transfer.
"""

from repro import (
    FixedFrequency,
    Machine,
    MachineConfig,
    PerformanceModel,
    PowerManagementController,
    PowerSave,
    get_workload,
)
from repro.workloads.traces import (
    CounterTrace,
    record_trace,
    workload_from_trace,
)


def run(workload, make_governor, seed=0):
    machine = Machine(MachineConfig(seed=seed))
    controller = PowerManagementController(
        machine, make_governor(machine.config.table), keep_trace=True
    )
    return controller.run(workload)


def main() -> None:
    # 1. "production": gcc under PS monitors IPC + DCU every 10 ms.
    production = run(
        get_workload("gcc").scaled(0.4),
        lambda t: PowerSave(t, PerformanceModel.paper_primary(), 0.8),
    )
    trace = record_trace(production, name="gcc-prod")
    print(f"recorded {len(trace)} intervals "
          f"({trace.total_instructions / 1e9:.2f}G instructions)")

    # 2. persist / reload as CSV.
    csv_text = trace.to_csv()
    reloaded = CounterTrace.from_csv("gcc-prod", csv_text)
    print(f"CSV round-trip: {len(csv_text.splitlines()) - 1} rows")

    # 3. reconstruct a replayable workload.
    replay = workload_from_trace(reloaded)
    print(f"reconstructed workload: {len(replay.phases)} phases, "
          f"{replay.total_instructions / 1e9:.2f}G instructions\n")

    # 4. evaluate candidate floors against the replay.
    baseline = run(replay, lambda t: FixedFrequency(t, 2000.0))
    print(f"{'candidate':>12} {'time s':>8} {'energy J':>9} {'perf':>6}")
    for floor in (0.9, 0.8, 0.6):
        candidate = run(
            replay,
            lambda t, f=floor: PowerSave(
                t, PerformanceModel.paper_primary(), f
            ),
        )
        perf = baseline.duration_s / candidate.duration_s
        print(f"{f'PS {floor:.0%}':>12} {candidate.duration_s:8.3f} "
              f"{candidate.measured_energy_j:9.2f} {perf:6.2f}")


if __name__ == "__main__":
    main()
