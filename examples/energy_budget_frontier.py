#!/usr/bin/env python3
"""Scenario: choosing a PowerSave floor from the energy/performance frontier.

A battery-constrained deployment must pick how much performance to
trade for runtime.  This example sweeps PS floors over three workloads
with very different characters -- swim (memory-bound), gap (in-between)
and sixtrack (core-bound) -- and prints the resulting frontier, plus
the Demand-Based Switching comparison that motivates PS in the paper
(§IV-B: utilization-based policies save nothing at full load).
"""

from repro import (
    DemandBasedSwitching,
    FixedFrequency,
    Machine,
    MachineConfig,
    PerformanceModel,
    PowerManagementController,
    PowerSave,
    get_workload,
)

WORKLOADS = ("swim", "gap", "sixtrack")
FLOORS = (0.9, 0.8, 0.6, 0.4)


def run(name, make_governor, scale=0.4):
    machine = Machine(MachineConfig(seed=0))
    governor = make_governor(machine.config.table)
    controller = PowerManagementController(machine, governor)
    return controller.run(get_workload(name).scaled(scale))


def main() -> None:
    model = PerformanceModel.paper_primary()
    print(f"{'workload':>9} {'policy':>12} {'perf kept':>10} {'energy saved':>13}")
    print("-" * 48)
    for name in WORKLOADS:
        baseline = run(name, lambda t: FixedFrequency(t, 2000.0))
        for floor in FLOORS:
            ps = run(name, lambda t, f=floor: PowerSave(t, model, f))
            perf = baseline.duration_s / ps.duration_s
            saved = 1 - ps.measured_energy_j / baseline.measured_energy_j
            print(f"{name:>9} {f'PS {floor:.0%}':>12} {perf:10.2f} {saved:13.1%}")
        dbs = run(name, lambda t: DemandBasedSwitching(t))
        perf = baseline.duration_s / dbs.duration_s
        saved = 1 - dbs.measured_energy_j / baseline.measured_energy_j
        print(f"{name:>9} {'DBS':>12} {perf:10.2f} {saved:13.1%}")
        print("-" * 48)
    print(
        "\ntakeaways: DBS saves ~nothing at full load; PS converts the\n"
        "performance allowance into savings, and memory-bound workloads\n"
        "(swim) give most of the energy back for almost no performance."
    )


if __name__ == "__main__":
    main()
