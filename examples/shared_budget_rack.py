#!/usr/bin/env python3
"""Scenario: four sockets, one 40 W supply rail.

The paper's PM motivation (i): "controlling multiple components with
shared power supply/cooling resources".  Four nodes with very different
appetites share one budget; a coordinator re-divides it every 100 ms
from each node's own counter-based demand estimate and delivers new
limits through PM's runtime-limit path.

Watch the allocation: the chess engine (crafty) and the particle
tracker (sixtrack) are granted what the memory-bound nodes (swim, mcf)
cannot use -- and when a node finishes, its share shifts to the
stragglers automatically.
"""

from repro.exec.cache import trained_power_model
from repro.fleet import DemandProportional, EqualShare, FleetController
from repro.workloads.registry import get_workload

BUDGET_W = 40.0
WORKLOADS = {
    "node-a": "crafty",
    "node-b": "swim",
    "node-c": "mcf",
    "node-d": "sixtrack",
}


def main() -> None:
    model = trained_power_model(seed=0)
    workloads = {
        node: get_workload(name).scaled(0.5)
        for node, name in WORKLOADS.items()
    }
    print(f"shared budget: {BUDGET_W} W across {len(workloads)} nodes\n")
    for label, allocator in (
        ("equal share", EqualShare()),
        ("demand-proportional", DemandProportional()),
    ):
        fleet = FleetController(
            workloads, model, total_budget_w=BUDGET_W, allocator=allocator
        )
        result = fleet.run()
        print(f"{label}:")
        for node, outcome in sorted(result.nodes.items()):
            print(
                f"  {node} ({outcome.workload:9}) finished in "
                f"{outcome.duration_s:5.2f}s  "
                f"(final limit {outcome.final_limit_w:5.1f} W)"
            )
        print(
            f"  fleet: makespan {result.makespan_s:.2f}s, "
            f"mean power {result.mean_fleet_power_w:.1f} W, "
            f"budget violations "
            f"{result.budget_violation_fraction():.1%}\n"
        )


if __name__ == "__main__":
    main()
