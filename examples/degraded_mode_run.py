#!/usr/bin/env python3
"""Degraded-mode operation: the control loop under injected faults.

Runs gzip under PerformanceMaximizer (14.5 W) three times on the
simulated Pentium M 755:

* a clean hardened run (resilience on, nothing injected),
* a hostile-but-survivable run (dropped samples, meter spikes and
  failed transitions) that the loop absorbs with holdover, filtering
  and retries,
* a dead-sampler run (every sample dropped) that trips the watchdog
  and pins the fail-safe p-state until the workload finishes,

and prints what each failure regime cost.
"""

from repro import (
    FaultInjector,
    FaultPlan,
    LinearPowerModel,
    Machine,
    MachineConfig,
    PerformanceMaximizer,
    PowerManagementController,
    ResilienceConfig,
    get_workload,
)
from repro.faults import MeterFaults, SampleFaults, TransitionFaults

WORKLOAD = get_workload("gzip").scaled(0.5)
LIMIT_W = 14.5

SURVIVABLE = FaultPlan(
    seed=0,
    sample=SampleFaults(drop_prob=0.10, garble_prob=0.05),
    meter=MeterFaults(spike_prob=0.10, spike_factor=6.0),
    transition=TransitionFaults(fail_prob=0.4),
)

DEAD_SAMPLER = FaultPlan(seed=0, sample=SampleFaults(drop_prob=1.0))


def run(plan=None):
    machine = Machine(MachineConfig(seed=0))
    model = LinearPowerModel.paper_model()
    governor = PerformanceMaximizer(machine.config.table, model, LIMIT_W)
    controller = PowerManagementController(
        machine,
        governor,
        resilience=ResilienceConfig(),
        injector=FaultInjector(plan) if plan is not None else None,
    )
    return controller.run(WORKLOAD)


def main() -> None:
    runs = {
        "clean (hardened)": run(),
        "survivable faults": run(SURVIVABLE),
        "dead sampler": run(DEAD_SAMPLER),
    }
    print(f"workload: {WORKLOAD.name} "
          f"({WORKLOAD.total_instructions / 1e9:.2f}G instructions), "
          f"limit {LIMIT_W} W\n")
    header = f"{'regime':20} {'time s':>8} {'mean W':>8} {'mode':>10}"
    print(header)
    print("-" * len(header))
    for label, result in runs.items():
        mode = "degraded" if result.degraded else "closed-loop"
        print(f"{label:20} {result.duration_s:8.3f} "
              f"{result.mean_power_w:8.2f} {mode:>10}")
    print()
    for label, result in runs.items():
        if not result.recoveries:
            continue
        actions = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(result.recoveries.items())
        )
        print(f"{label}: {actions}")
    # Every regime ran the workload to completion -- the whole point of
    # graceful degradation: lose efficiency, never lose the work.
    for result in runs.values():
        assert result.instructions == WORKLOAD.total_instructions


if __name__ == "__main__":
    main()
