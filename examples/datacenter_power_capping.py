#!/usr/bin/env python3
"""Scenario: riding through a partial cooling failure with PM.

The paper motivates PerformanceMaximizer with exactly this situation:
"continuing operation with maximal (but safe) performance in the event
of partial supply/cooling failures" (§IV-A).  A server is crunching a
compute-heavy job (crafty) when the facility loses half a CRAC unit:
the per-socket power budget drops from 17.5 W to 11.5 W for two
seconds, then partially recovers to 14.5 W.

In the paper's prototype the new limits arrive as Unix signals; here a
ConstraintSchedule delivers them at simulated timestamps.  A statically
clocked machine would have to run at 1400 MHz *all the time* to be safe
at 11.5 W (Table IV); PM only slows down while the emergency lasts.
"""

from repro import (
    LinearPowerModel,
    Machine,
    MachineConfig,
    PerformanceMaximizer,
    PowerManagementController,
    get_workload,
)
from repro.core.limits import ConstraintSchedule


def main() -> None:
    schedule = ConstraintSchedule()
    schedule.add_power_limit(1.0, 11.5)   # cooling failure
    schedule.add_power_limit(3.0, 14.5)   # partial recovery

    machine = Machine(MachineConfig(seed=0))
    governor = PerformanceMaximizer(
        machine.config.table, LinearPowerModel.paper_model(), 17.5
    )
    controller = PowerManagementController(machine, governor)
    result = controller.run(get_workload("crafty").scaled(2.2),
                            schedule=schedule)

    print("power-limit timeline: 17.5 W -> 11.5 W @1.0s -> 14.5 W @3.0s\n")
    print(f"{'window':>12} {'mean W':>8} {'mean MHz':>9} {'limit':>6}")
    windows = [
        ("0.0-1.0s", 0.0, 1.0, 17.5),
        ("1.0-3.0s", 1.0, 3.0, 11.5),
        ("3.0-end", 3.0, 1e9, 14.5),
    ]
    for label, start, end, limit in windows:
        rows = [r for r in result.trace if start < r.time_s <= end]
        if not rows:
            continue
        mean_w = sum(r.measured_power_w for r in rows) / len(rows)
        mean_f = sum(r.frequency_mhz for r in rows) / len(rows)
        print(f"{label:>12} {mean_w:8.2f} {mean_f:9.0f} {limit:6.1f}")

    print(
        f"\ncompleted {result.instructions / 1e9:.1f}G instructions in "
        f"{result.duration_s:.2f}s; "
        f"worst window violation fraction vs the *tightest* limit: "
        f"{result.violation_fraction(17.5):.1%}"
    )
    static_11_5 = 1400.0
    print(
        "a static design provisioned for the 11.5 W worst case would run "
        f"at {static_11_5:.0f} MHz permanently -- "
        f"{2000.0 / static_11_5 - 1:.0%} slower than PM outside the "
        "emergency window."
    )


if __name__ == "__main__":
    main()
