#!/usr/bin/env python3
"""Scenario: picking the energy-optimal (threads, frequency) pair.

A batch job on a 4-core machine can trade parallelism against clock
speed: more threads finish sooner but contend for the shared memory
bus, a slower clock burns less power but stretches the run.  This
example replays the ETL scan-heavy corpus scenario across every
(threads, p-state) configuration and prints the measured energy per
giga-instruction for each, flagging the optimum -- then compares it
with what :class:`EnergyOptimalSearch` predicts from single-core
counters alone.
"""

from repro import (
    EnergyOptimalSearch,
    FixedFrequency,
    LinearPowerModel,
    Machine,
    MachineConfig,
    MulticoreConfig,
    MulticoreController,
    MulticoreMachine,
    PerformanceModel,
    corpus_trace,
    workload_from_trace,
)
from repro.multicore.contention import ContentionModel

N_CORES = 4
FREQUENCIES_MHZ = (600.0, 1000.0, 1400.0, 2000.0)
SCALE = 0.05


def run_config(workload, table, threads, frequency_mhz):
    machine = MulticoreMachine(MulticoreConfig(
        n_cores=N_CORES, machine=MachineConfig(seed=0),
    ))
    controller = MulticoreController(
        machine, FixedFrequency(table, frequency_mhz), keep_trace=False,
    )
    return controller.run(
        workload,
        threads=threads,
        initial_pstate=table.by_frequency(frequency_mhz),
    )


def main() -> None:
    trace = corpus_trace("etl-scan-heavy", seed=0)
    workload = workload_from_trace(trace).scaled(SCALE)
    table = MachineConfig().table

    print(f"etl-scan-heavy on {N_CORES} cores "
          f"({workload.total_instructions / 1e9:.2f} Gi)\n")
    print(f"{'threads':>7} {'MHz':>6} {'J/Gi':>8} {'Gi/s':>7}")
    print("-" * 32)
    grid = []
    for threads in range(1, N_CORES + 1):
        for frequency in FREQUENCIES_MHZ:
            out = run_config(workload, table, threads, frequency)
            epgi = out.result.true_energy_j / (out.result.instructions / 1e9)
            gips = out.result.instructions / out.result.duration_s / 1e9
            grid.append((epgi, threads, frequency, gips))
            print(f"{threads:>7} {frequency:>6.0f} {epgi:>8.2f} {gips:>7.2f}")
        print("-" * 32)
    best = min(grid)
    print(f"measured optimum : {best[1]} threads @ {best[2]:.0f} MHz "
          f"({best[0]:.2f} J/Gi)")

    # What the governor would pick from one core's counters.
    machine = Machine(MachineConfig(seed=0))
    machine.load(workload)
    rates = machine.peek_rates()
    search = EnergyOptimalSearch(
        table,
        LinearPowerModel.paper_model(),
        PerformanceModel.paper_primary(),
        n_cores=N_CORES,
        bandwidth_ceiling_bytes_per_s=ContentionModel().ceiling(
            machine.config.timing
        ),
    )
    predicted = search.best_configuration(
        rates.ipc,
        rates.dpc,
        rates.dcu_per_ipc * rates.ipc,
        table.fastest,
        bytes_per_instruction=rates.bytes_per_s / rates.ips,
    )
    print(f"predicted optimum: {predicted.threads} threads @ "
          f"{predicted.pstate.frequency_mhz:.0f} MHz "
          f"({predicted.energy_per_giga_instruction_j:.2f} J/Gi)")


if __name__ == "__main__":
    main()
