"""Developer calibration report: per-workload behaviour vs paper targets.

Run: python scripts/calibration_report.py

Prints, for every workload, the counter signature at 2 GHz, ground-truth
power, the true throughput ratios at lower p-states, the paper's
performance-model classification, and the PS frequency the paper's model
(exponent 0.81 / 0.59) would choose at an 80% floor -- plus the implied
true performance reduction there.  Used to tune workload profiles so the
paper's stories hold (only art/mcf violate PS floors; crafty/perlbmk top
power; FMA-256KB worst-case microbenchmark, Table III crossovers).
"""

from repro.acpi import pentium_m_755_table
from repro.platform.pipeline import resolve_rates
from repro.platform.power import ground_truth_power
from repro.platform.caches import PENTIUM_M_755_TIMING as T
from repro.workloads.registry import default_registry

TABLE_III = {600: 3.86, 800: 5.21, 1000: 6.56, 1200: 8.16,
             1400: 10.16, 1600: 12.46, 1800: 15.29, 2000: 17.78}

reg = default_registry()
tbl = pentium_m_755_table()
freqs = [2000, 1800, 1600, 1400, 1200, 1000, 800, 600]
ps = {f: tbl.by_frequency(f) for f in freqs}


def workload_row(w):
    # instruction-weighted aggregate over phases
    total = sum(p.instructions for p in w.phases)
    out = {}
    for f in freqs:
        ips = dpc = ipc = dcu = pwr = 0.0
        t = 0.0
        for p in w.phases:
            r = resolve_rates(p, ps[f], T)
            wgt = p.instructions / total
            tw = p.instructions / r.ips
            t += tw
        # time-weighted means
        for p in w.phases:
            r = resolve_rates(p, ps[f], T)
            tw = (p.instructions / r.ips) / t
            dpc += r.dpc * tw
            ipc += r.ipc * tw
            dcu += r.events.dcu_miss_outstanding * tw
            pwr += ground_truth_power(ps[f], r.events) * tw
        out[f] = dict(time=t, dpc=dpc, ipc=ipc, dcu=dcu, pwr=pwr,
                      ips=total / t)
    return out


def ps_choice(dcu_ipc, exponent):
    """Frequency the paper's PS picks at an 80% floor from 2 GHz."""
    if dcu_ipc < 1.21:
        # core class: throughput ratio = f'/2000
        for f in reversed(freqs):
            if f / 2000 >= 0.8:
                return f
        return 2000
    for f in reversed(freqs):
        if (f / 2000) ** (1 - exponent) >= 0.8:
            return f
    return 2000


print(f"{'name':16} {'DPC':>5} {'IPC':>5} {'DCU/I':>6} {'cls':>4} "
      f"{'P@2G':>6} {'r18':>6} {'r16':>6} {'r12':>6} {'r08':>6} {'r06':>6} "
      f"{'PS81':>5} {'red%':>6} {'PS59':>5} {'red%':>6}")
for name in reg.names:
    w = reg.get(name)
    rows = workload_row(w)
    r20 = rows[2000]
    dcu_ipc = r20["dcu"] / r20["ipc"]
    cls = "mem" if dcu_ipc >= 1.21 else "core"
    ratios = {f: r20["time"] / rows[f]["time"] for f in freqs}
    f81 = ps_choice(dcu_ipc, 0.81)
    f59 = ps_choice(dcu_ipc, 0.59)
    red81 = (1 - ratios[f81]) * 100
    red59 = (1 - ratios[f59]) * 100
    flag = " *VIOL*" if red81 > 20.5 and w.category != "microbenchmark" else ""
    print(f"{name:16} {r20['dpc']:5.2f} {r20['ipc']:5.2f} {dcu_ipc:6.2f} "
          f"{cls:>4} {r20['pwr']:6.2f} "
          f"{ratios[1800]:6.3f} {ratios[1600]:6.3f} {ratios[1200]:6.3f} "
          f"{ratios[800]:6.3f} {ratios[600]:6.3f} "
          f"{f81:5d} {red81:6.1f} {f59:5d} {red59:6.1f}{flag}")

print("\nFMA-256KB vs paper Table III:")
w = reg.get("FMA-256KB")
rows = workload_row(w)
for f in freqs:
    print(f"  {f:5d} MHz: model {rows[f]['pwr']:6.2f} W   paper {TABLE_III[f]:6.2f} W")

print("\nStatic-frequency (Table IV) check using modelled FMA-256KB power:")
for limit in [17.5, 16.5, 15.5, 14.5, 13.5, 12.5, 11.5, 10.5]:
    static = max((f for f in freqs if rows[f]["pwr"] <= limit), default=600)
    print(f"  limit {limit:5.1f} W -> {static} MHz")
