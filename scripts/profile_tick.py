#!/usr/bin/env python3
"""Profile the monitor->estimate->control hot path.

Runs one governed cell under cProfile in both loop modes and prints the
top functions by cumulative time -- the evidence base for the batched
tick kernel (:mod:`repro.core.blockloop`).  The scalar profile shows
the per-tick overhead spread across ``Machine.step`` /
``CounterSampler.sample`` / ``governor.decide``; the fast profile shows
the same work fused into ``blockloop.run_fast``.

Usage::

    PYTHONPATH=src python scripts/profile_tick.py [--workload ammp]
        [--governor pm|ps|dbs|fixed] [--scale 16] [--top 20]
        [--out benchmarks/results/profile_tick.txt]

The archived reference run lives at
``benchmarks/results/profile_tick.txt``.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time

from repro.core import blockloop
from repro.exec import ExperimentConfig, GovernorSpec, RunCell, execute_cell

SPECS = {
    "pm": lambda: GovernorSpec.pm(14.5, power_model="paper"),
    "ps": lambda: GovernorSpec.ps(0.8),
    "dbs": lambda: GovernorSpec.dbs(),
    "fixed": lambda: GovernorSpec.fixed(1400.0),
}


def _profile_once(cell, config, fast, top):
    blockloop.FAST_LOOP = fast
    execute_cell(cell, config)  # warm caches: models, templates, registry
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = execute_cell(cell, config)
    profiler.disable()
    wall = time.perf_counter() - start
    ticks = round(result.duration_s / 0.01)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    mode = "fast (block kernel)" if fast else "scalar (per-tick loop)"
    header = (
        f"== {mode}: {ticks} ticks in {wall:.3f} s "
        f"({ticks / wall:,.0f} ticks/s) ==\n"
    )
    return header + buffer.getvalue(), ticks / wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="ammp")
    parser.add_argument("--governor", choices=sorted(SPECS), default="pm")
    parser.add_argument("--scale", type=float, default=16.0)
    parser.add_argument("--top", type=int, default=20)
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    config = ExperimentConfig(scale=args.scale, seed=0)
    cell = RunCell(
        workload=args.workload, governor=SPECS[args.governor]()
    )

    sections = [
        f"profile_tick: workload={args.workload} governor={args.governor} "
        f"scale={args.scale}\n"
    ]
    rates = {}
    for fast in (False, True):
        text, rate = _profile_once(cell, config, fast, args.top)
        sections.append(text)
        rates[fast] = rate
    sections.append(
        f"speedup: {rates[True] / rates[False]:.1f}x "
        f"({rates[False]:,.0f} -> {rates[True]:,.0f} ticks/s)\n"
    )
    report = "\n".join(sections)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
